"""Bytecode generation from the type-annotated Jx AST.

Runs after :mod:`repro.lang.semantic`; reads only the annotations that
pass left behind (``jx_type``, ``binding``, ``dispatch``/``target``,
``local_index``, ctor-chaining info) and fills each
:class:`~repro.bytecode.classfile.MethodInfo` with its code array.

Notable lowering decisions:

* ``&&``/``||`` short-circuit through labels (no boolean AND/OR opcodes);
* compound assignments evaluate their target location exactly once
  (receivers are DUPed, array/index operands are spilled to temps);
* instance field initializers are inlined after the super-constructor
  call in every constructor that does not chain to ``this(...)``;
* static field initializers become a synthesized ``<clinit>`` method,
  executed by the VM at class-initialization time;
* non-void methods get an unreachable default-value return appended so
  the structural verifier's fall-off-the-end rule is satisfied.
"""

from __future__ import annotations

from repro.bytecode.classfile import (
    CONSTRUCTOR_NAME,
    DOUBLE,
    INT,
    STATIC_INIT_NAME,
    STRING,
    VOID,
    ClassInfo,
    JxType,
    MethodInfo,
    ProgramUnit,
)
from repro.bytecode.builder import CodeBuilder, Label
from repro.bytecode.opcodes import Op
from repro.lang import ast
from repro.lang.errors import SemanticError

_CMP_OPS = {
    "<": Op.CMP_LT,
    "<=": Op.CMP_LE,
    ">": Op.CMP_GT,
    ">=": Op.CMP_GE,
    "==": Op.CMP_EQ,
    "!=": Op.CMP_NE,
}
_BIT_OPS = {
    "<<": Op.SHL,
    ">>": Op.SHR,
    "&": Op.BAND,
    "|": Op.BOR,
    "^": Op.BXOR,
}


class CodeGenerator:
    """Generates bytecode for every method of an analyzed program."""

    def __init__(self, program_ast: ast.Program, unit: ProgramUnit) -> None:
        self.program_ast = program_ast
        self.unit = unit
        # (break label, continue label) stack for the current method.
        self._loops: list[tuple[Label, Label]] = []
        self._builder: CodeBuilder | None = None

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def generate(self) -> ProgramUnit:
        for decl in self.program_ast.classes:
            if decl.is_interface:
                continue
            cls = self.unit.classes[decl.name]
            for mdecl in decl.methods:
                self._gen_method(cls, decl, mdecl)
            self._gen_clinit(cls, decl)
        return self.unit

    @property
    def cb(self) -> CodeBuilder:
        assert self._builder is not None
        return self._builder

    def _method_info(self, cls: ClassInfo, mdecl: ast.MethodDecl) -> MethodInfo:
        key = (
            f"{CONSTRUCTOR_NAME}/{len(mdecl.params)}"
            if mdecl.is_constructor
            else mdecl.name
        )
        return cls.methods[key]

    def _gen_method(
        self, cls: ClassInfo, decl: ast.ClassDecl, mdecl: ast.MethodDecl
    ) -> None:
        if mdecl.body is None:
            return
        info = self._method_info(cls, mdecl)
        env_locals = getattr(mdecl, "env_max_locals", info.num_args)
        self._builder = CodeBuilder(num_params=max(env_locals, info.num_args))
        self._loops = []

        if mdecl.is_constructor:
            self._gen_ctor_prologue(cls, decl, mdecl)
        for stmt in mdecl.body.stmts:
            self._gen_stmt(stmt)
        self._append_fallback_return(info)

        code, max_locals = self.cb.finish()
        info.code = code
        info.max_locals = max_locals
        self._builder = None

    def _gen_ctor_prologue(
        self, cls: ClassInfo, decl: ast.ClassDecl, mdecl: ast.MethodDecl
    ) -> None:
        first = mdecl.body.stmts[0] if mdecl.body.stmts else None
        chains_to_this = bool(getattr(mdecl, "chains_to_this", False))
        if isinstance(first, ast.CtorCall):
            self.cb.load(0)
            for arg in first.args:
                self._gen_expr(arg)
            target = first.target
            self.cb.invokespecial(
                target.declaring_class, target.key, target.num_args
            )
            mdecl.body.stmts = mdecl.body.stmts[1:]
        else:
            implicit = getattr(mdecl, "implicit_super", None)
            if implicit is not None:
                self.cb.load(0)
                self.cb.invokespecial(
                    implicit.declaring_class, implicit.key, 1
                )
        if not chains_to_this:
            for fdecl in decl.fields:
                if fdecl.is_static or fdecl.init is None:
                    continue
                self.cb.load(0)
                self._gen_expr(fdecl.init)
                self.cb.putfield(cls.name, fdecl.name)

    def _gen_clinit(self, cls: ClassInfo, decl: ast.ClassDecl) -> None:
        static_inits = [
            f for f in decl.fields if f.is_static and f.init is not None
        ]
        if not static_inits:
            return
        self._builder = CodeBuilder()
        for fdecl in static_inits:
            self._gen_expr(fdecl.init)
            self.cb.putstatic(cls.name, fdecl.name)
        self.cb.emit(Op.RETURN_VOID)
        code, max_locals = self.cb.finish()
        info = MethodInfo(
            name=STATIC_INIT_NAME,
            param_types=[],
            return_type=VOID,
            declaring_class=cls.name,
            is_static=True,
            access="private",
            code=code,
            max_locals=max_locals,
        )
        cls.add_method(info)
        self._builder = None

    def _append_fallback_return(self, info: MethodInfo) -> None:
        code = self.cb.code
        if code and code[-1].op in (Op.RETURN, Op.RETURN_VOID):
            # Even after a trailing return, a control construct whose
            # arms all return leaves its join label dangling one past
            # the end; such (unreachable) branch targets still need a
            # landing instruction.
            n = len(code)
            dangling = any(
                instr.is_branch
                and isinstance(instr.arg, int)
                and instr.arg >= n
                for instr in code
            )
            if not dangling:
                return
        if info.return_type == VOID or info.is_constructor:
            self.cb.emit(Op.RETURN_VOID)
        else:
            # Unreachable if the program returns on all paths; keeps the
            # verifier's fall-off-the-end rule satisfied.
            self.cb.const(info.return_type.default_value())
            self.cb.emit(Op.RETURN)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        self.cb.set_line(stmt.line)
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._gen_stmt(s)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._gen_expr(stmt.init)
            else:
                self.cb.const(stmt.type.default_value())
            self.cb.store(stmt.local_index)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
                self.cb.emit(Op.RETURN)
            else:
                self.cb.emit(Op.RETURN_VOID)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr)
            if stmt.expr.jx_type != VOID:
                self.cb.emit(Op.POP)
        elif isinstance(stmt, ast.Break):
            self.cb.jump(self._loops[-1][0])
        elif isinstance(stmt, ast.Continue):
            self.cb.jump(self._loops[-1][1])
        else:  # pragma: no cover
            raise SemanticError(f"cannot generate {stmt!r}", stmt.line)

    def _binop_opcode(self, op: str, operand_type: JxType) -> Op:
        if op == "+":
            return Op.ADD
        if op == "-":
            return Op.SUB
        if op == "*":
            return Op.MUL
        if op == "/":
            return Op.IDIV if operand_type == INT else Op.FDIV
        if op == "%":
            return Op.IREM
        if op in _BIT_OPS:
            return _BIT_OPS[op]
        raise SemanticError(f"no opcode for operator '{op}'")

    def _gen_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        op = getattr(stmt, "compound_op", None)
        if op is None:
            self._gen_plain_assign(target, stmt.value)
        else:
            self._gen_compound_assign(target, op, stmt.value)

    def _gen_plain_assign(self, target: ast.Expr, value: ast.Expr) -> None:
        if isinstance(target, ast.Name):
            kind, payload = target.binding
            if kind == "local":
                self._gen_expr(value)
                self.cb.store(payload)
            elif kind == "field":
                self.cb.load(0)
                self._gen_expr(value)
                self.cb.putfield(payload.declaring_class, payload.name)
            else:  # static_field
                self._gen_expr(value)
                self.cb.putstatic(payload.declaring_class, payload.name)
        elif isinstance(target, ast.FieldAccess):
            finfo = target.field_info
            if target.is_static:
                self._gen_expr(value)
                self.cb.putstatic(finfo.declaring_class, finfo.name)
            else:
                self._gen_expr(target.receiver)
                self._gen_expr(value)
                self.cb.putfield(finfo.declaring_class, finfo.name)
        elif isinstance(target, ast.Index):
            self._gen_expr(target.array)
            self._gen_expr(target.index)
            self._gen_expr(value)
            self.cb.emit(Op.ASTORE)
        else:  # pragma: no cover - parser validated lvalues
            raise SemanticError("invalid assignment target", target.line)

    def _emit_compound_op(
        self, op: str, target_type: JxType, value: ast.Expr
    ) -> None:
        """With the current value on the stack, apply ``op`` with ``value``."""
        self._gen_expr(value)
        if target_type == STRING and op == "+":
            self.cb.emit(Op.CONCAT)
        else:
            self.cb.emit(self._binop_opcode(op, target_type))

    def _gen_compound_assign(
        self, target: ast.Expr, op: str, value: ast.Expr
    ) -> None:
        if isinstance(target, ast.Name):
            kind, payload = target.binding
            if kind == "local":
                self.cb.load(payload)
                self._emit_compound_op(op, target.jx_type, value)
                self.cb.store(payload)
            elif kind == "field":
                self.cb.load(0)
                self.cb.emit(Op.DUP)
                self.cb.getfield(payload.declaring_class, payload.name)
                self._emit_compound_op(op, target.jx_type, value)
                self.cb.putfield(payload.declaring_class, payload.name)
            else:  # static_field
                self.cb.getstatic(payload.declaring_class, payload.name)
                self._emit_compound_op(op, target.jx_type, value)
                self.cb.putstatic(payload.declaring_class, payload.name)
        elif isinstance(target, ast.FieldAccess):
            finfo = target.field_info
            if target.is_static:
                self.cb.getstatic(finfo.declaring_class, finfo.name)
                self._emit_compound_op(op, target.jx_type, value)
                self.cb.putstatic(finfo.declaring_class, finfo.name)
            else:
                self._gen_expr(target.receiver)
                self.cb.emit(Op.DUP)
                self.cb.getfield(finfo.declaring_class, finfo.name)
                self._emit_compound_op(op, target.jx_type, value)
                self.cb.putfield(finfo.declaring_class, finfo.name)
        elif isinstance(target, ast.Index):
            arr_tmp = self.cb.alloc_local()
            idx_tmp = self.cb.alloc_local()
            self._gen_expr(target.array)
            self.cb.store(arr_tmp)
            self._gen_expr(target.index)
            self.cb.store(idx_tmp)
            self.cb.load(arr_tmp)
            self.cb.load(idx_tmp)
            self.cb.load(arr_tmp)
            self.cb.load(idx_tmp)
            self.cb.emit(Op.ALOAD)
            self._emit_compound_op(op, target.jx_type, value)
            self.cb.emit(Op.ASTORE)
        else:  # pragma: no cover
            raise SemanticError("invalid assignment target", target.line)

    def _gen_if(self, stmt: ast.If) -> None:
        else_label = self.cb.new_label("else")
        end_label = self.cb.new_label("endif")
        self._gen_expr(stmt.cond)
        self.cb.jump_if_false(else_label)
        self._gen_stmt(stmt.then)
        if stmt.otherwise is not None:
            self.cb.jump(end_label)
            self.cb.place(else_label)
            self._gen_stmt(stmt.otherwise)
            self.cb.place(end_label)
        else:
            self.cb.place(else_label)

    def _gen_while(self, stmt: ast.While) -> None:
        cond_label = self.cb.new_label("while.cond")
        end_label = self.cb.new_label("while.end")
        self.cb.place(cond_label)
        self._gen_expr(stmt.cond)
        self.cb.jump_if_false(end_label)
        self._loops.append((end_label, cond_label))
        self._gen_stmt(stmt.body)
        self._loops.pop()
        self.cb.jump(cond_label)
        self.cb.place(end_label)

    def _gen_for(self, stmt: ast.For) -> None:
        cond_label = self.cb.new_label("for.cond")
        update_label = self.cb.new_label("for.update")
        end_label = self.cb.new_label("for.end")
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        self.cb.place(cond_label)
        if stmt.cond is not None:
            self._gen_expr(stmt.cond)
            self.cb.jump_if_false(end_label)
        self._loops.append((end_label, update_label))
        self._gen_stmt(stmt.body)
        self._loops.pop()
        self.cb.place(update_label)
        if stmt.update is not None:
            self._gen_stmt(stmt.update)
        self.cb.jump(cond_label)
        self.cb.place(end_label)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.DoubleLit, ast.StringLit,
                             ast.BoolLit)):
            self.cb.const(expr.value)
        elif isinstance(expr, ast.NullLit):
            self.cb.const(None)
        elif isinstance(expr, ast.This):
            self.cb.load(0)
        elif isinstance(expr, ast.Name):
            self._gen_name(expr)
        elif isinstance(expr, ast.BinOp):
            self._gen_binop(expr)
        elif isinstance(expr, ast.UnOp):
            self._gen_expr(expr.operand)
            self.cb.emit(Op.NEG if expr.op == "-" else Op.NOT)
        elif isinstance(expr, ast.Ternary):
            self._gen_ternary(expr)
        elif isinstance(expr, ast.FieldAccess):
            self._gen_field_access(expr)
        elif isinstance(expr, ast.Index):
            self._gen_expr(expr.array)
            self._gen_expr(expr.index)
            self.cb.emit(Op.ALOAD)
        elif isinstance(expr, ast.MethodCall):
            self._gen_call(expr)
        elif isinstance(expr, ast.New):
            self._gen_new(expr)
        elif isinstance(expr, ast.NewArray):
            self._gen_expr(expr.length)
            self.cb.emit(Op.NEWARRAY, str(expr.elem_type))
        elif isinstance(expr, ast.Cast):
            self._gen_cast(expr)
        elif isinstance(expr, ast.InstanceOf):
            self._gen_expr(expr.expr)
            self.cb.emit(Op.INSTANCEOF, expr.type.name)
        else:  # pragma: no cover
            raise SemanticError(f"cannot generate {expr!r}", expr.line)

    def _gen_name(self, expr: ast.Name) -> None:
        kind, payload = expr.binding
        if kind == "local":
            self.cb.load(payload)
        elif kind == "field":
            self.cb.load(0)
            self.cb.getfield(payload.declaring_class, payload.name)
        else:  # static_field
            self.cb.getstatic(payload.declaring_class, payload.name)

    def _gen_binop(self, expr: ast.BinOp) -> None:
        if expr.op in ("&&", "||"):
            self._gen_shortcircuit(expr)
            return
        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        if getattr(expr, "is_concat", False):
            self.cb.emit(Op.CONCAT)
        elif expr.op in _CMP_OPS:
            self.cb.emit(_CMP_OPS[expr.op])
        else:
            operand_type = expr.left.jx_type
            self.cb.emit(self._binop_opcode(expr.op, operand_type))

    def _gen_shortcircuit(self, expr: ast.BinOp) -> None:
        short_label = self.cb.new_label("sc.short")
        end_label = self.cb.new_label("sc.end")
        self._gen_expr(expr.left)
        if expr.op == "&&":
            self.cb.jump_if_false(short_label)
        else:
            self.cb.jump_if_true(short_label)
        self._gen_expr(expr.right)
        self.cb.jump(end_label)
        self.cb.place(short_label)
        self.cb.const(expr.op == "||")
        self.cb.place(end_label)

    def _gen_ternary(self, expr: ast.Ternary) -> None:
        else_label = self.cb.new_label("tern.else")
        end_label = self.cb.new_label("tern.end")
        self._gen_expr(expr.cond)
        self.cb.jump_if_false(else_label)
        self._gen_expr(expr.then)
        self.cb.jump(end_label)
        self.cb.place(else_label)
        self._gen_expr(expr.otherwise)
        self.cb.place(end_label)

    def _gen_field_access(self, expr: ast.FieldAccess) -> None:
        if getattr(expr, "is_arraylen", False):
            self._gen_expr(expr.receiver)
            self.cb.emit(Op.ARRAYLEN)
            return
        finfo = expr.field_info
        if expr.is_static:
            self.cb.getstatic(finfo.declaring_class, finfo.name)
        else:
            self._gen_expr(expr.receiver)
            self.cb.getfield(finfo.declaring_class, finfo.name)

    def _gen_call(self, expr: ast.MethodCall) -> None:
        target = expr.target
        if expr.dispatch == "static":
            for arg in expr.args:
                self._gen_expr(arg)
            self.cb.invokestatic(
                target.declaring_class, target.key, target.num_args
            )
            return
        # Instance dispatch: push the receiver first.
        if expr.receiver is not None:
            self._gen_expr(expr.receiver)
        else:
            self.cb.load(0)
        for arg in expr.args:
            self._gen_expr(arg)
        nargs = target.num_args
        if expr.dispatch == "virtual":
            self.cb.invokevirtual(target.declaring_class, target.key, nargs)
        elif expr.dispatch == "special":
            self.cb.invokespecial(target.declaring_class, target.key, nargs)
        elif expr.dispatch == "interface":
            self.cb.invokeinterface(
                target.declaring_class, target.key, nargs
            )
        else:  # pragma: no cover
            raise SemanticError(
                f"unknown dispatch kind {expr.dispatch!r}", expr.line
            )

    def _gen_new(self, expr: ast.New) -> None:
        self.cb.emit(Op.NEW, expr.class_name)
        self.cb.emit(Op.DUP)
        for arg in expr.args:
            self._gen_expr(arg)
        ctor = expr.target
        self.cb.invokespecial(expr.class_name, ctor.key, ctor.num_args)

    def _gen_cast(self, expr: ast.Cast) -> None:
        self._gen_expr(expr.expr)
        kind = getattr(expr, "kind", "noop")
        if kind == "widen":
            self.cb.emit(Op.I2D)
        elif kind == "narrow":
            self.cb.emit(Op.D2I)
        elif kind == "ref":
            self.cb.emit(Op.CHECKCAST, expr.type.name)


def generate(program_ast: ast.Program, unit: ProgramUnit) -> ProgramUnit:
    """Generate bytecode for every method of an analyzed program."""
    return CodeGenerator(program_ast, unit).generate()
