"""The Jx standard library.

Two layers:

* **Prebuilt classes** — ``Object`` (the implicit root of every class
  hierarchy) and ``Sys`` (static methods whose bodies are single
  ``INTRINSIC`` instructions), assembled programmatically with
  :class:`~repro.bytecode.builder.CodeBuilder`.
* **Self-hosted classes** — ``StringBuilder``, ``Vector``, ``IntVector``,
  ``DoubleVector``, and ``StrMap``, written *in Jx* (see
  :data:`STDLIB_SOURCE`) and compiled with the same frontend as user
  code.  This doubles as a permanent integration test of the compiler.
"""

from __future__ import annotations

from repro.bytecode.builder import CodeBuilder, make_method
from repro.bytecode.classfile import (
    BOOLEAN,
    CONSTRUCTOR_NAME,
    DOUBLE,
    INT,
    STRING,
    VOID,
    ClassInfo,
    JxType,
    MethodInfo,
)
from repro.bytecode.opcodes import Op
from repro.vm.intrinsics import INTRINSICS

STRING_ARRAY = STRING.array_of()

#: (Jx method name, intrinsic name, param types, return type)
_SYS_METHODS: list[tuple[str, str, list[JxType], JxType]] = [
    ("print", "print", [STRING], VOID),
    ("printRaw", "printRaw", [STRING], VOID),
    ("len", "str_len", [STRING], INT),
    ("charAt", "str_charAt", [STRING, INT], STRING),
    ("ordAt", "str_ord", [STRING, INT], INT),
    ("chr", "str_chr", [INT], STRING),
    ("substr", "str_substr", [STRING, INT, INT], STRING),
    ("indexOf", "str_indexOf", [STRING, STRING], INT),
    ("split", "str_split", [STRING, STRING], STRING_ARRAY),
    ("trim", "str_trim", [STRING], STRING),
    ("replace", "str_replace", [STRING, STRING, STRING], STRING),
    ("lower", "str_lower", [STRING], STRING),
    ("upper", "str_upper", [STRING], STRING),
    ("startsWith", "str_startsWith", [STRING, STRING], BOOLEAN),
    ("endsWith", "str_endsWith", [STRING, STRING], BOOLEAN),
    ("contains", "str_contains", [STRING, STRING], BOOLEAN),
    ("strJoin", "str_join", [STRING_ARRAY, INT], STRING),
    ("repeat", "str_repeat", [STRING, INT], STRING),
    ("strCompare", "str_compare", [STRING, STRING], INT),
    ("strHash", "str_hash", [STRING], INT),
    ("parseInt", "parse_int", [STRING], INT),
    ("parseDouble", "parse_double", [STRING], DOUBLE),
    ("itos", "itos", [INT], STRING),
    ("dtos", "dtos", [DOUBLE], STRING),
    ("sqrt", "math_sqrt", [DOUBLE], DOUBLE),
    ("log", "math_log", [DOUBLE], DOUBLE),
    ("exp", "math_exp", [DOUBLE], DOUBLE),
    ("pow", "math_pow", [DOUBLE, DOUBLE], DOUBLE),
    ("floorToInt", "math_floor", [DOUBLE], INT),
    ("ceilToInt", "math_ceil", [DOUBLE], INT),
    ("abs", "math_abs", [DOUBLE], DOUBLE),
    ("iabs", "math_iabs", [INT], INT),
    ("imin", "math_imin", [INT, INT], INT),
    ("imax", "math_imax", [INT, INT], INT),
    ("dmin", "math_dmin", [DOUBLE, DOUBLE], DOUBLE),
    ("dmax", "math_dmax", [DOUBLE, DOUBLE], DOUBLE),
    ("round", "math_round", [DOUBLE], INT),
    ("randSeed", "rand_seed", [INT], VOID),
    ("randInt", "rand_int", [INT], INT),
    ("randDouble", "rand_double", [], DOUBLE),
]


def build_object_class() -> ClassInfo:
    """The implicit root class with its empty no-arg constructor."""
    cls = ClassInfo(name="Object", source_name="<stdlib>")
    cb = CodeBuilder(num_params=1)
    cb.emit(Op.RETURN_VOID)
    cls.add_method(
        make_method(
            CONSTRUCTOR_NAME, "Object", [], VOID, cb,
            local_names=[],
        )
    )
    return cls


def build_sys_class() -> ClassInfo:
    """The ``Sys`` class: one static intrinsic-wrapping method per entry."""
    cls = ClassInfo(name="Sys", source_name="<stdlib>")
    for jx_name, intrinsic_name, params, ret in _SYS_METHODS:
        intrinsic = INTRINSICS[intrinsic_name]
        if intrinsic.nargs != len(params):
            raise AssertionError(
                f"Sys.{jx_name}: intrinsic {intrinsic_name} arity mismatch"
            )
        if intrinsic.returns != (ret != VOID):
            raise AssertionError(
                f"Sys.{jx_name}: intrinsic {intrinsic_name} return mismatch"
            )
        cb = CodeBuilder(num_params=len(params))
        for i in range(len(params)):
            cb.load(i)
        cb.intrinsic(intrinsic_name, len(params))
        cb.emit(Op.RETURN if ret != VOID else Op.RETURN_VOID)
        method = make_method(
            jx_name, "Sys", params, ret, cb,
            is_static=True,
            local_names=[f"a{i}" for i in range(len(params))],
        )
        cls.add_method(method)
    return cls


STDLIB_SOURCE = """
class StringBuilder {
    private string[] parts;
    private int count;
    private int chars;

    StringBuilder() {
        parts = new string[8];
        count = 0;
        chars = 0;
    }

    private void grow(int needed) {
        if (needed <= parts.length) { return; }
        int cap = parts.length;
        while (cap < needed) { cap = cap * 2; }
        string[] bigger = new string[cap];
        for (int i = 0; i < count; i++) { bigger[i] = parts[i]; }
        parts = bigger;
    }

    public StringBuilder append(string s) {
        grow(count + 1);
        parts[count] = s;
        count++;
        chars += Sys.len(s);
        return this;
    }

    public StringBuilder appendInt(int v) { return append(Sys.itos(v)); }

    public StringBuilder appendDouble(double v) { return append(Sys.dtos(v)); }

    public StringBuilder appendLine(string s) {
        append(s);
        return append("\\n");
    }

    public int length() { return chars; }

    public boolean isEmpty() { return chars == 0; }

    public void clear() {
        count = 0;
        chars = 0;
    }

    public string toString() { return Sys.strJoin(parts, count); }
}

class Vector {
    private Object[] items;
    private int count;

    Vector() {
        items = new Object[8];
        count = 0;
    }

    Vector(int capacity) {
        items = new Object[Sys.imax(capacity, 1)];
        count = 0;
    }

    private void grow(int needed) {
        if (needed <= items.length) { return; }
        int cap = items.length;
        while (cap < needed) { cap = cap * 2; }
        Object[] bigger = new Object[cap];
        for (int i = 0; i < count; i++) { bigger[i] = items[i]; }
        items = bigger;
    }

    public void add(Object item) {
        grow(count + 1);
        items[count] = item;
        count++;
    }

    public Object get(int index) { return items[index]; }

    public void set(int index, Object item) { items[index] = item; }

    public Object removeLast() {
        count--;
        Object last = items[count];
        items[count] = null;
        return last;
    }

    public int size() { return count; }

    public boolean isEmpty() { return count == 0; }

    public void clear() {
        for (int i = 0; i < count; i++) { items[i] = null; }
        count = 0;
    }
}

class IntVector {
    private int[] data;
    private int count;

    IntVector() {
        data = new int[8];
        count = 0;
    }

    private void grow(int needed) {
        if (needed <= data.length) { return; }
        int cap = data.length;
        while (cap < needed) { cap = cap * 2; }
        int[] bigger = new int[cap];
        for (int i = 0; i < count; i++) { bigger[i] = data[i]; }
        data = bigger;
    }

    public void push(int v) {
        grow(count + 1);
        data[count] = v;
        count++;
    }

    public int get(int index) { return data[index]; }

    public void set(int index, int v) { data[index] = v; }

    public int size() { return count; }

    public int sum() {
        int total = 0;
        for (int i = 0; i < count; i++) { total += data[i]; }
        return total;
    }
}

class DoubleVector {
    private double[] data;
    private int count;

    DoubleVector() {
        data = new double[8];
        count = 0;
    }

    private void grow(int needed) {
        if (needed <= data.length) { return; }
        int cap = data.length;
        while (cap < needed) { cap = cap * 2; }
        double[] bigger = new double[cap];
        for (int i = 0; i < count; i++) { bigger[i] = data[i]; }
        data = bigger;
    }

    public void push(double v) {
        grow(count + 1);
        data[count] = v;
        count++;
    }

    public double get(int index) { return data[index]; }

    public void set(int index, double v) { data[index] = v; }

    public int size() { return count; }

    public double sum() {
        double total = 0.0;
        for (int i = 0; i < count; i++) { total += data[i]; }
        return total;
    }
}

// Open-addressing hash map from string keys to Object values.
class StrMap {
    private string[] keys;
    private Object[] vals;
    private int count;

    StrMap() {
        keys = new string[16];
        vals = new Object[16];
        count = 0;
    }

    private int slotFor(string key) {
        int mask = keys.length - 1;
        int i = Sys.iabs(Sys.strHash(key)) & mask;
        while (keys[i] != null && !(keys[i] == key)) {
            i = (i + 1) & mask;
        }
        return i;
    }

    private void rehash() {
        string[] oldKeys = keys;
        Object[] oldVals = vals;
        keys = new string[oldKeys.length * 2];
        vals = new Object[oldVals.length * 2];
        for (int i = 0; i < oldKeys.length; i++) {
            if (oldKeys[i] != null) {
                int j = slotFor(oldKeys[i]);
                keys[j] = oldKeys[i];
                vals[j] = oldVals[i];
            }
        }
    }

    public void put(string key, Object value) {
        if (count * 4 >= keys.length * 3) { rehash(); }
        int i = slotFor(key);
        if (keys[i] == null) {
            keys[i] = key;
            count++;
        }
        vals[i] = value;
    }

    public Object get(string key) {
        int i = slotFor(key);
        return vals[i];
    }

    public boolean containsKey(string key) {
        int i = slotFor(key);
        return keys[i] != null;
    }

    public int size() { return count; }
}
"""


def build_prebuilt_classes() -> list[ClassInfo]:
    """The programmatically-assembled stdlib layer: ``Object`` and ``Sys``."""
    return [build_object_class(), build_sys_class()]
