"""Token definitions for the Jx language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokKind(enum.Enum):
    # literals / identifiers
    INT_LIT = "int literal"
    DOUBLE_LIT = "double literal"
    STRING_LIT = "string literal"
    IDENT = "identifier"
    # keywords
    KEYWORD = "keyword"
    # punctuation / operators (kind stores the lexeme itself)
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "class",
        "interface",
        "extends",
        "implements",
        "static",
        "public",
        "private",
        "void",
        "int",
        "double",
        "boolean",
        "string",
        "if",
        "else",
        "while",
        "for",
        "return",
        "new",
        "this",
        "super",
        "true",
        "false",
        "null",
        "instanceof",
        "break",
        "continue",
    }
)

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: TokKind
    value: Any
    line: int
    col: int

    def is_punct(self, lexeme: str) -> bool:
        return self.kind is TokKind.PUNCT and self.value == lexeme

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.value == word

    def __str__(self) -> str:
        if self.kind in (TokKind.PUNCT, TokKind.KEYWORD):
            return f"'{self.value}'"
        if self.kind is TokKind.EOF:
            return "end of input"
        return f"{self.kind.value} {self.value!r}"
