"""Semantic analysis for Jx: name resolution and type checking.

Runs in two passes:

1. **Collection** — build skeleton :class:`~repro.bytecode.classfile.ClassInfo`
   records (fields + method signatures, no code) for every declared class,
   merge them with prebuilt classes (the stdlib's ``Sys``), and validate
   the class graph (unknown supers, inheritance cycles, interface
   implementation completeness, override signature compatibility).
2. **Body checking** — type check every method body, annotating the AST
   with resolved bindings, dispatch kinds, and implicit numeric widenings
   (inserted as synthetic ``Cast`` nodes) so code generation is a pure
   tree walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.classfile import (
    BOOLEAN,
    CONSTRUCTOR_NAME,
    DOUBLE,
    INT,
    NULL_T,
    STRING,
    VOID,
    ClassInfo,
    FieldInfo,
    JxType,
    MethodInfo,
    ProgramUnit,
)
from repro.lang import ast
from repro.lang.errors import SemanticError

_ARITH_OPS = ("+", "-", "*", "/", "%")
_BIT_OPS = ("<<", ">>", "&", "|", "^")
_REL_OPS = ("<", "<=", ">", ">=")
_EQ_OPS = ("==", "!=")
_LOGIC_OPS = ("&&", "||")


@dataclass
class _Scope:
    """One lexical block's local variables."""

    names: dict[str, tuple[int, JxType]] = field(default_factory=dict)


class _MethodEnv:
    """Name environment while checking one method body."""

    def __init__(self, cls: ClassInfo, method: MethodInfo) -> None:
        self.cls = cls
        self.method = method
        self.scopes: list[_Scope] = [_Scope()]
        self.next_local = 0
        self.max_locals = 0
        self.loop_depth = 0
        if not method.is_static:
            self.next_local = 1  # slot 0 is `this`
        for ptype, pname in zip(method.param_types, method.local_names):
            self.declare(pname, ptype, line=0)

    def push(self) -> None:
        self.scopes.append(_Scope())

    def pop(self) -> None:
        scope = self.scopes.pop()
        self.next_local -= len(scope.names)

    def declare(self, name: str, jx_type: JxType, line: int) -> int:
        for scope in self.scopes:
            if name in scope.names:
                raise SemanticError(
                    f"variable '{name}' already declared", line
                )
        index = self.next_local
        self.scopes[-1].names[name] = (index, jx_type)
        self.next_local += 1
        self.max_locals = max(self.max_locals, self.next_local)
        return index

    def lookup(self, name: str) -> tuple[int, JxType] | None:
        for scope in reversed(self.scopes):
            if name in scope.names:
                return scope.names[name]
        return None


class SemanticAnalyzer:
    """Checks one parsed program against prebuilt (stdlib) classes."""

    def __init__(
        self,
        program_ast: ast.Program,
        prebuilt: list[ClassInfo] | None = None,
        entry_class: str = "Main",
        entry_method: str = "main",
    ) -> None:
        self.program_ast = program_ast
        self.prebuilt = list(prebuilt or [])
        self.unit = ProgramUnit(
            entry_class=entry_class, entry_method=entry_method
        )
        self.decls: dict[str, ast.ClassDecl] = {}

    # ------------------------------------------------------------------
    # Pass 1: collection
    # ------------------------------------------------------------------

    def collect(self) -> ProgramUnit:
        for cls in self.prebuilt:
            self.unit.add_class(cls)
        for decl in self.program_ast.classes:
            if decl.name in self.unit.classes:
                raise SemanticError(
                    f"duplicate class '{decl.name}'", decl.line
                )
            self.decls[decl.name] = decl
            self.unit.add_class(self._collect_class(decl))
        self._validate_hierarchy()
        return self.unit

    def _collect_class(self, decl: ast.ClassDecl) -> ClassInfo:
        super_name = decl.super_name
        if (
            super_name is None
            and not decl.is_interface
            and decl.name != "Object"
            and "Object" in self.unit.classes
        ):
            super_name = "Object"
        cls = ClassInfo(
            name=decl.name,
            super_name=super_name,
            interface_names=list(decl.interfaces),
            is_interface=decl.is_interface,
            source_name=self.program_ast.source_name,
        )
        for fdecl in decl.fields:
            if decl.is_interface:
                raise SemanticError(
                    "interfaces cannot declare fields", fdecl.line
                )
            cls.add_field(
                FieldInfo(
                    name=fdecl.name,
                    type=fdecl.type,
                    declaring_class=decl.name,
                    is_static=fdecl.is_static,
                    access=fdecl.access,
                )
            )
        has_ctor = False
        for mdecl in decl.methods:
            info = MethodInfo(
                name=mdecl.name,
                param_types=[p.type for p in mdecl.params],
                return_type=mdecl.return_type,
                declaring_class=decl.name,
                is_static=mdecl.is_static,
                access=mdecl.access,
                local_names=[p.name for p in mdecl.params],
                is_abstract=decl.is_interface,
            )
            try:
                cls.add_method(info)
            except ValueError as exc:
                raise SemanticError(str(exc), mdecl.line) from None
            has_ctor = has_ctor or mdecl.is_constructor
        if not decl.is_interface and not has_ctor:
            # Synthesize a public no-arg constructor.
            default = MethodInfo(
                name=CONSTRUCTOR_NAME,
                param_types=[],
                return_type=VOID,
                declaring_class=decl.name,
            )
            cls.add_method(default)
            decl.methods.append(
                ast.MethodDecl(
                    name=CONSTRUCTOR_NAME,
                    params=[],
                    return_type=VOID,
                    body=ast.Block(stmts=[], line=decl.line),
                    is_constructor=True,
                    line=decl.line,
                )
            )
        return cls

    def _validate_hierarchy(self) -> None:
        for cls in self.unit.classes.values():
            if cls.super_name:
                sup = self.unit.classes.get(cls.super_name)
                if sup is None:
                    raise SemanticError(
                        f"class '{cls.name}' extends unknown class "
                        f"'{cls.super_name}'"
                    )
                if sup.is_interface:
                    raise SemanticError(
                        f"class '{cls.name}' cannot extend interface "
                        f"'{cls.super_name}'"
                    )
            for iname in cls.interface_names:
                iface = self.unit.classes.get(iname)
                if iface is None:
                    raise SemanticError(
                        f"'{cls.name}' references unknown interface '{iname}'"
                    )
                if not iface.is_interface and not cls.is_interface:
                    raise SemanticError(
                        f"'{cls.name}' implements non-interface '{iname}'"
                    )
            self._check_cycle(cls)
        for cls in self.unit.classes.values():
            if not cls.is_interface:
                self._check_overrides(cls)
                self._check_interface_impl(cls)

    def _check_cycle(self, cls: ClassInfo) -> None:
        seen = {cls.name}
        cur = cls
        while cur.super_name:
            if cur.super_name in seen:
                raise SemanticError(
                    f"inheritance cycle through '{cls.name}'"
                )
            seen.add(cur.super_name)
            cur = self.unit.classes[cur.super_name]

    def _check_overrides(self, cls: ClassInfo) -> None:
        if not cls.super_name:
            return
        for m in cls.instance_methods():
            inherited = self.unit.lookup_method(cls.super_name, m.key)
            if inherited is None:
                continue
            if inherited.is_static != m.is_static:
                raise SemanticError(
                    f"'{m.qualified_name}' changes staticness of inherited "
                    f"method"
                )
            if (
                inherited.param_types != m.param_types
                or inherited.return_type != m.return_type
            ):
                raise SemanticError(
                    f"'{m.qualified_name}' overrides "
                    f"'{inherited.qualified_name}' with a different signature"
                )
            if inherited.is_private:
                # Private methods don't participate in overriding; but our
                # no-overload rule makes same-name redefinition confusing.
                raise SemanticError(
                    f"'{m.qualified_name}' has the same name as private "
                    f"inherited method '{inherited.qualified_name}'"
                )

    def _iface_methods(self, iface_name: str) -> list[MethodInfo]:
        """All abstract methods of an interface incl. superinterfaces."""
        iface = self.unit.classes[iface_name]
        out = list(iface.methods.values())
        for sup in iface.interface_names:
            out.extend(self._iface_methods(sup))
        return out

    def _all_interfaces(self, cls: ClassInfo) -> set[str]:
        out: set[str] = set()
        cur: ClassInfo | None = cls
        while cur is not None:
            work = list(cur.interface_names)
            while work:
                name = work.pop()
                if name in out:
                    continue
                out.add(name)
                work.extend(self.unit.classes[name].interface_names)
            cur = (
                self.unit.classes.get(cur.super_name)
                if cur.super_name
                else None
            )
        return out

    def _check_interface_impl(self, cls: ClassInfo) -> None:
        for iname in self._all_interfaces(cls):
            for im in self._iface_methods(iname):
                impl = self.unit.lookup_method(cls.name, im.key)
                if impl is None or impl.is_abstract:
                    raise SemanticError(
                        f"class '{cls.name}' does not implement "
                        f"'{im.qualified_name}'"
                    )
                if (
                    impl.param_types != im.param_types
                    or impl.return_type != im.return_type
                    or impl.is_static
                    or impl.is_private
                ):
                    raise SemanticError(
                        f"'{impl.qualified_name}' does not match interface "
                        f"method '{im.qualified_name}'"
                    )

    # ------------------------------------------------------------------
    # Pass 2: body checking
    # ------------------------------------------------------------------

    def check(self) -> ProgramUnit:
        """Run both passes and return the annotated, typed ProgramUnit."""
        self.collect()
        for decl in self.program_ast.classes:
            if decl.is_interface:
                continue
            cls = self.unit.classes[decl.name]
            for fdecl in decl.fields:
                self._check_type_exists(fdecl.type, fdecl.line)
                if fdecl.init is not None:
                    env = self._field_init_env(cls, fdecl)
                    self._check_expr(fdecl.init, env)
                    fdecl.init = self._coerce(
                        fdecl.init, fdecl.type, fdecl.line
                    )
            for mdecl in decl.methods:
                self._check_method(cls, mdecl)
        return self.unit

    def _field_init_env(self, cls: ClassInfo, fdecl: ast.FieldDecl) -> _MethodEnv:
        holder = MethodInfo(
            name="<fieldinit>",
            param_types=[],
            return_type=VOID,
            declaring_class=cls.name,
            is_static=fdecl.is_static,
        )
        return _MethodEnv(cls, holder)

    def _check_type_exists(self, jx_type: JxType, line: int) -> None:
        if jx_type.name in JxType.PRIMITIVES or jx_type.name == "<null>":
            return
        if jx_type.name not in self.unit.classes:
            raise SemanticError(f"unknown type '{jx_type.name}'", line)

    def _check_method(self, cls: ClassInfo, mdecl: ast.MethodDecl) -> None:
        info = cls.methods[
            f"{CONSTRUCTOR_NAME}/{len(mdecl.params)}"
            if mdecl.is_constructor
            else mdecl.name
        ]
        for p in mdecl.params:
            self._check_type_exists(p.type, p.line)
        self._check_type_exists(mdecl.return_type, mdecl.line)
        if mdecl.body is None:
            return
        env = _MethodEnv(cls, info)
        self._resolve_ctor_chaining(cls, mdecl, env)
        self._check_block(mdecl.body, env)
        info.max_locals = max(env.max_locals, info.num_args)
        mdecl.env_max_locals = env.max_locals  # type: ignore[attr-defined]

    def _resolve_ctor_chaining(
        self, cls: ClassInfo, mdecl: ast.MethodDecl, env: _MethodEnv
    ) -> None:
        """Resolve explicit super()/this() and the implicit super() call."""
        mdecl.implicit_super = None  # type: ignore[attr-defined]
        mdecl.chains_to_this = False  # type: ignore[attr-defined]
        if not mdecl.is_constructor:
            return
        body = mdecl.body
        first = body.stmts[0] if body and body.stmts else None
        if isinstance(first, ast.CtorCall):
            target_class = (
                cls.super_name if first.kind == "super" else cls.name
            )
            if first.kind == "super" and cls.super_name is None:
                raise SemanticError(
                    f"'{cls.name}' has no superclass for super() call",
                    first.line,
                )
            ctor = self.unit.lookup_method(
                target_class, f"{CONSTRUCTOR_NAME}/{len(first.args)}"
            )
            if ctor is None or ctor.declaring_class != target_class:
                raise SemanticError(
                    f"no {len(first.args)}-argument constructor in "
                    f"'{target_class}'",
                    first.line,
                )
            self._check_args(first.args, ctor, env, first.line)
            first.target = ctor
            mdecl.chains_to_this = first.kind == "this"  # type: ignore[attr-defined]
        elif cls.super_name is not None:
            ctor = self.unit.lookup_method(
                cls.super_name, f"{CONSTRUCTOR_NAME}/0"
            )
            if ctor is None or ctor.declaring_class != cls.super_name:
                raise SemanticError(
                    f"constructor of '{cls.name}' must explicitly call a "
                    f"superclass constructor ('{cls.super_name}' has no "
                    f"no-arg constructor)",
                    mdecl.line,
                )
            mdecl.implicit_super = ctor  # type: ignore[attr-defined]

    # -- statements -----------------------------------------------------

    def _check_block(self, block: ast.Block, env: _MethodEnv) -> None:
        env.push()
        for stmt in block.stmts:
            self._check_stmt(stmt, env)
        env.pop()

    def _check_stmt(self, stmt: ast.Stmt, env: _MethodEnv) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, env)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, env)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, env)
        elif isinstance(stmt, ast.If):
            cond_t = self._check_expr(stmt.cond, env)
            self._require(cond_t, BOOLEAN, stmt.line, "if condition")
            self._check_stmt(stmt.then, env)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, env)
        elif isinstance(stmt, ast.While):
            cond_t = self._check_expr(stmt.cond, env)
            self._require(cond_t, BOOLEAN, stmt.line, "while condition")
            env.loop_depth += 1
            self._check_stmt(stmt.body, env)
            env.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            env.push()
            if stmt.init is not None:
                self._check_stmt(stmt.init, env)
            if stmt.cond is not None:
                cond_t = self._check_expr(stmt.cond, env)
                self._require(cond_t, BOOLEAN, stmt.line, "for condition")
            env.loop_depth += 1
            self._check_stmt(stmt.body, env)
            env.loop_depth -= 1
            if stmt.update is not None:
                self._check_stmt(stmt.update, env)
            env.pop()
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, env)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, env)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if env.loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemanticError(f"'{kind}' outside of loop", stmt.line)
        elif isinstance(stmt, ast.CtorCall):
            if stmt.target is None:
                raise SemanticError(
                    "super()/this() is only allowed as the first statement "
                    "of a constructor",
                    stmt.line,
                )
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unhandled statement {stmt!r}", stmt.line)

    def _check_var_decl(self, stmt: ast.VarDecl, env: _MethodEnv) -> None:
        self._check_type_exists(stmt.type, stmt.line)
        if stmt.type == VOID:
            raise SemanticError("variable cannot have type void", stmt.line)
        if stmt.init is not None:
            self._check_expr(stmt.init, env)
            stmt.init = self._coerce(stmt.init, stmt.type, stmt.line)
        stmt.local_index = env.declare(stmt.name, stmt.type, stmt.line)

    def _check_assign(self, stmt: ast.Assign, env: _MethodEnv) -> None:
        target_t = self._check_expr(stmt.target, env, as_lvalue=True)
        value_t = self._check_expr(stmt.value, env)
        op = getattr(stmt, "compound_op", None)
        if op is None:
            stmt.value = self._coerce(stmt.value, target_t, stmt.line)
            return
        # Compound assignment: target op= value.
        if op == "+" and target_t == STRING:
            return  # string concatenation accepts any RHS via CONCAT
        if op in ("<<", ">>", "%", "&", "|", "^"):
            self._require(target_t, INT, stmt.line, f"'{op}=' target")
            self._require(value_t, INT, stmt.line, f"'{op}=' operand")
            return
        if not target_t.is_numeric:
            raise SemanticError(
                f"'{op}=' requires a numeric target, got {target_t}",
                stmt.line,
            )
        if not value_t.is_numeric:
            raise SemanticError(
                f"'{op}=' requires a numeric operand, got {value_t}",
                stmt.line,
            )
        if target_t == INT and value_t == DOUBLE:
            raise SemanticError(
                "possible lossy conversion from double to int", stmt.line
            )
        if target_t == DOUBLE and value_t == INT:
            stmt.value = self._coerce(stmt.value, DOUBLE, stmt.line)

    def _check_return(self, stmt: ast.Return, env: _MethodEnv) -> None:
        ret = env.method.return_type
        if env.method.is_constructor:
            ret = VOID
        if stmt.value is None:
            if ret != VOID:
                raise SemanticError(
                    f"missing return value (expected {ret})", stmt.line
                )
            return
        if ret == VOID:
            raise SemanticError("void method cannot return a value", stmt.line)
        self._check_expr(stmt.value, env)
        stmt.value = self._coerce(stmt.value, ret, stmt.line)

    # -- expressions ----------------------------------------------------

    def _require(
        self, actual: JxType, expected: JxType, line: int, what: str
    ) -> None:
        if actual != expected:
            raise SemanticError(
                f"{what} must be {expected}, got {actual}", line
            )

    def _assignable(self, src: JxType, dst: JxType) -> str | None:
        """Return None (no), "exact", or "widen" (int->double)."""
        if src == dst:
            return "exact"
        if src == INT and dst == DOUBLE:
            return "widen"
        if src == NULL_T and dst.is_reference and dst != STRING:
            return "exact"
        if src == NULL_T and dst == STRING:
            return "exact"
        if (
            not src.is_array
            and not dst.is_array
            and not src.is_primitive
            and not dst.is_primitive
            and src.name != "<null>"
            and self.unit.is_subtype(src.name, dst.name)
        ):
            return "exact"
        return None

    def _coerce(self, expr: ast.Expr, target: JxType, line: int) -> ast.Expr:
        kind = self._assignable(expr.jx_type, target)
        if kind is None:
            raise SemanticError(
                f"cannot convert {expr.jx_type} to {target}", line
            )
        if kind == "widen":
            cast = ast.Cast(type=DOUBLE, expr=expr, line=line)
            cast.jx_type = DOUBLE
            cast.kind = "widen"  # type: ignore[attr-defined]
            return cast
        return expr

    def _check_expr(
        self, expr: ast.Expr, env: _MethodEnv, as_lvalue: bool = False
    ) -> JxType:
        handler = {
            ast.IntLit: lambda: INT,
            ast.DoubleLit: lambda: DOUBLE,
            ast.StringLit: lambda: STRING,
            ast.BoolLit: lambda: BOOLEAN,
            ast.NullLit: lambda: NULL_T,
        }.get(type(expr))
        if handler is not None:
            expr.jx_type = handler()
            return expr.jx_type
        if isinstance(expr, ast.This):
            if env.method.is_static:
                raise SemanticError("'this' in static context", expr.line)
            expr.jx_type = JxType(env.cls.name)
        elif isinstance(expr, ast.Name):
            expr.jx_type = self._check_name(expr, env, as_lvalue)
        elif isinstance(expr, ast.BinOp):
            expr.jx_type = self._check_binop(expr, env)
        elif isinstance(expr, ast.UnOp):
            expr.jx_type = self._check_unop(expr, env)
        elif isinstance(expr, ast.Ternary):
            expr.jx_type = self._check_ternary(expr, env)
        elif isinstance(expr, ast.FieldAccess):
            expr.jx_type = self._check_field_access(expr, env, as_lvalue)
        elif isinstance(expr, ast.Index):
            arr_t = self._check_expr(expr.array, env)
            if not arr_t.is_array:
                raise SemanticError(
                    f"cannot index non-array type {arr_t}", expr.line
                )
            idx_t = self._check_expr(expr.index, env)
            self._require(idx_t, INT, expr.line, "array index")
            expr.jx_type = arr_t.element_type()
        elif isinstance(expr, ast.MethodCall):
            expr.jx_type = self._check_call(expr, env)
        elif isinstance(expr, ast.New):
            expr.jx_type = self._check_new(expr, env)
        elif isinstance(expr, ast.NewArray):
            self._check_type_exists(expr.elem_type, expr.line)
            len_t = self._check_expr(expr.length, env)
            self._require(len_t, INT, expr.line, "array length")
            expr.jx_type = expr.elem_type.array_of()
        elif isinstance(expr, ast.Cast):
            expr.jx_type = self._check_cast(expr, env)
        elif isinstance(expr, ast.InstanceOf):
            self._check_type_exists(expr.type, expr.line)
            src_t = self._check_expr(expr.expr, env)
            if not src_t.is_reference and src_t != NULL_T:
                raise SemanticError(
                    f"instanceof on non-reference type {src_t}", expr.line
                )
            if expr.type.is_array or expr.type.is_primitive:
                raise SemanticError(
                    "instanceof target must be a class or interface",
                    expr.line,
                )
            expr.jx_type = BOOLEAN
        else:  # pragma: no cover
            raise SemanticError(f"unhandled expression {expr!r}", expr.line)
        return expr.jx_type

    def _check_name(
        self, expr: ast.Name, env: _MethodEnv, as_lvalue: bool
    ) -> JxType:
        local = env.lookup(expr.ident)
        if local is not None:
            expr.binding = ("local", local[0])
            return local[1]
        finfo = self.unit.lookup_field(env.cls.name, expr.ident)
        if finfo is not None:
            if finfo.is_static:
                expr.binding = ("static_field", finfo)
            else:
                if env.method.is_static:
                    raise SemanticError(
                        f"instance field '{expr.ident}' referenced from "
                        f"static context",
                        expr.line,
                    )
                expr.binding = ("field", finfo)
            return finfo.type
        if expr.ident in self.unit.classes and not as_lvalue:
            raise SemanticError(
                f"class name '{expr.ident}' used as a value", expr.line
            )
        raise SemanticError(f"unknown identifier '{expr.ident}'", expr.line)

    def _check_binop(self, expr: ast.BinOp, env: _MethodEnv) -> JxType:
        op = expr.op
        lt = self._check_expr(expr.left, env)
        rt = self._check_expr(expr.right, env)
        expr.is_concat = False  # type: ignore[attr-defined]
        if op == "+" and (lt == STRING or rt == STRING):
            expr.is_concat = True  # type: ignore[attr-defined]
            return STRING
        if op in _ARITH_OPS:
            if op == "%":
                self._require(lt, INT, expr.line, "'%' left operand")
                self._require(rt, INT, expr.line, "'%' right operand")
                return INT
            if not lt.is_numeric or not rt.is_numeric:
                raise SemanticError(
                    f"operator '{op}' requires numeric operands, got "
                    f"{lt} and {rt}",
                    expr.line,
                )
            if lt == INT and rt == INT:
                return INT
            if lt == INT:
                expr.left = self._coerce(expr.left, DOUBLE, expr.line)
            if rt == INT:
                expr.right = self._coerce(expr.right, DOUBLE, expr.line)
            return DOUBLE
        if op in _BIT_OPS:
            self._require(lt, INT, expr.line, f"'{op}' left operand")
            self._require(rt, INT, expr.line, f"'{op}' right operand")
            return INT
        if op in _REL_OPS:
            if not lt.is_numeric or not rt.is_numeric:
                raise SemanticError(
                    f"operator '{op}' requires numeric operands, got "
                    f"{lt} and {rt}",
                    expr.line,
                )
            if lt == INT and rt == DOUBLE:
                expr.left = self._coerce(expr.left, DOUBLE, expr.line)
            if rt == INT and lt == DOUBLE:
                expr.right = self._coerce(expr.right, DOUBLE, expr.line)
            return BOOLEAN
        if op in _EQ_OPS:
            if lt.is_numeric and rt.is_numeric:
                if lt == INT and rt == DOUBLE:
                    expr.left = self._coerce(expr.left, DOUBLE, expr.line)
                if rt == INT and lt == DOUBLE:
                    expr.right = self._coerce(expr.right, DOUBLE, expr.line)
                return BOOLEAN
            if lt == BOOLEAN and rt == BOOLEAN:
                return BOOLEAN
            if lt == STRING and rt in (STRING, NULL_T):
                return BOOLEAN
            if rt == STRING and lt in (STRING, NULL_T):
                return BOOLEAN
            ok = (
                (lt.is_reference or lt == NULL_T)
                and (rt.is_reference or rt == NULL_T)
            )
            if ok:
                return BOOLEAN
            raise SemanticError(
                f"cannot compare {lt} with {rt}", expr.line
            )
        if op in _LOGIC_OPS:
            self._require(lt, BOOLEAN, expr.line, f"'{op}' left operand")
            self._require(rt, BOOLEAN, expr.line, f"'{op}' right operand")
            return BOOLEAN
        raise SemanticError(f"unknown operator '{op}'", expr.line)

    def _check_unop(self, expr: ast.UnOp, env: _MethodEnv) -> JxType:
        t = self._check_expr(expr.operand, env)
        if expr.op == "-":
            if not t.is_numeric:
                raise SemanticError(
                    f"unary '-' requires a numeric operand, got {t}",
                    expr.line,
                )
            return t
        if expr.op == "!":
            self._require(t, BOOLEAN, expr.line, "'!' operand")
            return BOOLEAN
        raise SemanticError(f"unknown unary operator '{expr.op}'", expr.line)

    def _check_ternary(self, expr: ast.Ternary, env: _MethodEnv) -> JxType:
        cond_t = self._check_expr(expr.cond, env)
        self._require(cond_t, BOOLEAN, expr.line, "ternary condition")
        tt = self._check_expr(expr.then, env)
        ot = self._check_expr(expr.otherwise, env)
        if tt == ot:
            return tt
        if tt.is_numeric and ot.is_numeric:
            if tt == INT:
                expr.then = self._coerce(expr.then, DOUBLE, expr.line)
            if ot == INT:
                expr.otherwise = self._coerce(expr.otherwise, DOUBLE, expr.line)
            return DOUBLE
        if self._assignable(tt, ot):
            return ot
        if self._assignable(ot, tt):
            return tt
        raise SemanticError(
            f"incompatible ternary branch types {tt} and {ot}", expr.line
        )

    def _class_receiver(self, expr: ast.Expr, env: _MethodEnv) -> str | None:
        """If ``expr`` names a class (not a value), return the class name."""
        if isinstance(expr, ast.Name) and env.lookup(expr.ident) is None:
            if self.unit.lookup_field(env.cls.name, expr.ident) is not None:
                return None
            if expr.ident in self.unit.classes:
                return expr.ident
        return None

    def _check_field_access(
        self, expr: ast.FieldAccess, env: _MethodEnv, as_lvalue: bool
    ) -> JxType:
        cls_name = self._class_receiver(expr.receiver, env)
        if cls_name is not None:
            finfo = self.unit.lookup_field(cls_name, expr.name)
            if finfo is None or not finfo.is_static:
                raise SemanticError(
                    f"no static field '{expr.name}' in class '{cls_name}'",
                    expr.line,
                )
            self._check_field_visibility(finfo, env, expr.line)
            expr.field_info = finfo
            expr.is_static = True
            return finfo.type
        recv_t = self._check_expr(expr.receiver, env)
        if recv_t.is_array:
            if expr.name != "length":
                raise SemanticError(
                    f"arrays have no field '{expr.name}'", expr.line
                )
            if as_lvalue:
                raise SemanticError(
                    "array length is not assignable", expr.line
                )
            expr.is_arraylen = True  # type: ignore[attr-defined]
            return INT
        if recv_t.is_primitive or recv_t == NULL_T:
            raise SemanticError(
                f"cannot access field '{expr.name}' on {recv_t}", expr.line
            )
        finfo = self.unit.lookup_field(recv_t.name, expr.name)
        if finfo is None or finfo.is_static:
            raise SemanticError(
                f"no instance field '{expr.name}' in class '{recv_t.name}'",
                expr.line,
            )
        self._check_field_visibility(finfo, env, expr.line)
        expr.field_info = finfo
        return finfo.type

    def _check_field_visibility(
        self, finfo: FieldInfo, env: _MethodEnv, line: int
    ) -> None:
        if finfo.access == "private" and finfo.declaring_class != env.cls.name:
            raise SemanticError(
                f"field '{finfo.declaring_class}.{finfo.name}' is private",
                line,
            )

    def _check_args(
        self,
        args: list[ast.Expr],
        target: MethodInfo,
        env: _MethodEnv,
        line: int,
    ) -> None:
        if len(args) != len(target.param_types):
            raise SemanticError(
                f"'{target.qualified_name}' expects {len(target.param_types)} "
                f"argument(s), got {len(args)}",
                line,
            )
        for i, (arg, ptype) in enumerate(zip(args, target.param_types)):
            self._check_expr(arg, env)
            args[i] = self._coerce(arg, ptype, line)

    def _check_call(self, expr: ast.MethodCall, env: _MethodEnv) -> JxType:
        if expr.is_super:
            if env.method.is_static:
                raise SemanticError("'super' in static context", expr.line)
            if env.cls.super_name is None:
                raise SemanticError(
                    f"'{env.cls.name}' has no superclass", expr.line
                )
            target = self.unit.lookup_method(env.cls.super_name, expr.name)
            if target is None or target.is_static:
                raise SemanticError(
                    f"no instance method '{expr.name}' in superclass of "
                    f"'{env.cls.name}'",
                    expr.line,
                )
            expr.dispatch = "special"
            expr.target = target
            self._check_args(expr.args, target, env, expr.line)
            return target.return_type

        if expr.receiver is None:
            target = self.unit.lookup_method(env.cls.name, expr.name)
            if target is None:
                raise SemanticError(
                    f"unknown method '{expr.name}' in class "
                    f"'{env.cls.name}'",
                    expr.line,
                )
            if target.is_static:
                expr.dispatch = "static"
            else:
                if env.method.is_static:
                    raise SemanticError(
                        f"instance method '{expr.name}' called from static "
                        f"context",
                        expr.line,
                    )
                expr.dispatch = "special" if target.is_private else "virtual"
            expr.target = target
            self._check_args(expr.args, target, env, expr.line)
            return target.return_type

        cls_name = self._class_receiver(expr.receiver, env)
        if cls_name is not None:
            target = self.unit.lookup_method(cls_name, expr.name)
            if target is None or not target.is_static:
                raise SemanticError(
                    f"no static method '{expr.name}' in class '{cls_name}'",
                    expr.line,
                )
            if target.is_private and target.declaring_class != env.cls.name:
                raise SemanticError(
                    f"method '{target.qualified_name}' is private", expr.line
                )
            expr.dispatch = "static"
            expr.target = target
            self._check_args(expr.args, target, env, expr.line)
            return target.return_type

        recv_t = self._check_expr(expr.receiver, env)
        if recv_t.is_primitive or recv_t.is_array or recv_t == NULL_T:
            raise SemanticError(
                f"cannot call method '{expr.name}' on {recv_t}", expr.line
            )
        recv_cls = self.unit.classes[recv_t.name]
        if recv_cls.is_interface:
            target = self._lookup_iface_method(recv_t.name, expr.name)
            if target is None:
                raise SemanticError(
                    f"no method '{expr.name}' in interface '{recv_t.name}'",
                    expr.line,
                )
            expr.dispatch = "interface"
        else:
            target = self.unit.lookup_method(recv_t.name, expr.name)
            if target is None or target.is_static:
                raise SemanticError(
                    f"no instance method '{expr.name}' in class "
                    f"'{recv_t.name}'",
                    expr.line,
                )
            if target.is_private:
                if target.declaring_class != env.cls.name:
                    raise SemanticError(
                        f"method '{target.qualified_name}' is private",
                        expr.line,
                    )
                expr.dispatch = "special"
            else:
                expr.dispatch = "virtual"
        expr.target = target
        self._check_args(expr.args, target, env, expr.line)
        return target.return_type

    def _lookup_iface_method(
        self, iface_name: str, method_name: str
    ) -> MethodInfo | None:
        iface = self.unit.classes[iface_name]
        if method_name in iface.methods:
            return iface.methods[method_name]
        for sup in iface.interface_names:
            found = self._lookup_iface_method(sup, method_name)
            if found is not None:
                return found
        return None

    def _check_new(self, expr: ast.New, env: _MethodEnv) -> JxType:
        cls = self.unit.classes.get(expr.class_name)
        if cls is None:
            raise SemanticError(
                f"unknown class '{expr.class_name}'", expr.line
            )
        if cls.is_interface:
            raise SemanticError(
                f"cannot instantiate interface '{expr.class_name}'",
                expr.line,
            )
        key = f"{CONSTRUCTOR_NAME}/{len(expr.args)}"
        ctor = cls.methods.get(key)
        if ctor is None:
            raise SemanticError(
                f"no {len(expr.args)}-argument constructor in "
                f"'{expr.class_name}'",
                expr.line,
            )
        if ctor.is_private and ctor.declaring_class != env.cls.name:
            raise SemanticError(
                f"constructor of '{expr.class_name}' is private", expr.line
            )
        expr.target = ctor
        self._check_args(expr.args, ctor, env, expr.line)
        return JxType(expr.class_name)

    def _check_cast(self, expr: ast.Cast, env: _MethodEnv) -> JxType:
        self._check_type_exists(expr.type, expr.line)
        src_t = self._check_expr(expr.expr, env)
        dst = expr.type
        if src_t == dst:
            expr.kind = "noop"  # type: ignore[attr-defined]
            return dst
        if src_t == INT and dst == DOUBLE:
            expr.kind = "widen"  # type: ignore[attr-defined]
            return dst
        if src_t == DOUBLE and dst == INT:
            expr.kind = "narrow"  # type: ignore[attr-defined]
            return dst
        src_ref = src_t.is_reference or src_t == NULL_T
        if src_ref and dst.is_reference and not dst.is_array:
            if dst.name == "string" or dst.is_primitive:
                raise SemanticError(
                    f"cannot cast {src_t} to {dst}", expr.line
                )
            expr.kind = "ref"  # type: ignore[attr-defined]
            return dst
        raise SemanticError(f"cannot cast {src_t} to {dst}", expr.line)


def analyze(
    program_ast: ast.Program,
    prebuilt: list[ClassInfo] | None = None,
    entry_class: str = "Main",
    entry_method: str = "main",
) -> ProgramUnit:
    """Run semantic analysis; returns the typed unit, AST gets annotated."""
    return SemanticAnalyzer(
        program_ast, prebuilt, entry_class, entry_method
    ).check()
