"""The Jx language frontend: lexer, parser, semantic analysis, codegen.

The one-call entry point is :func:`compile_source`, which turns Jx source
text into a verified, linkable
:class:`~repro.bytecode.classfile.ProgramUnit` (including the standard
library).
"""

from __future__ import annotations

from repro.bytecode.classfile import ClassInfo, ProgramUnit
from repro.bytecode.verify import verify_program
from repro.lang.codegen import generate
from repro.lang.errors import JxError, LexError, ParseError, SemanticError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_source
from repro.lang.semantic import analyze
from repro.lang.stdlib import STDLIB_SOURCE, build_prebuilt_classes
from repro.vm.intrinsics import intrinsic_returns

__all__ = [
    "JxError",
    "LexError",
    "ParseError",
    "SemanticError",
    "compile_source",
    "compile_stdlib",
    "parse_source",
    "tokenize",
]


def compile_stdlib() -> list[ClassInfo]:
    """Compile the full standard library (prebuilt + self-hosted layers).

    Returns a fresh list of ClassInfo objects each call: linked programs
    carry resolution state inside their instructions, so class objects
    must never be shared between two VMs.
    """
    prebuilt = build_prebuilt_classes()
    stdlib_ast = parse_source(STDLIB_SOURCE, "<stdlib>")
    unit = analyze(stdlib_ast, prebuilt)
    generate(stdlib_ast, unit)
    return list(unit.classes.values())


def compile_source(
    source: str,
    filename: str = "<source>",
    entry_class: str = "Main",
    entry_method: str = "main",
    include_stdlib: bool = True,
    verify: bool = True,
) -> ProgramUnit:
    """Compile Jx source text to a verified :class:`ProgramUnit`.

    Args:
        source: Jx source (any number of class/interface declarations).
        filename: Name used in diagnostics.
        entry_class: Class holding the program entry point.
        entry_method: Static void no-arg entry method name.
        include_stdlib: Link against the standard library (``Sys``,
            ``Object``, ``StringBuilder``, ...).  Disable only for
            compiler-internals tests.
        verify: Run the structural bytecode verifier over the result.

    Raises:
        JxError: On any lexical, syntactic, or semantic error.
    """
    prebuilt = compile_stdlib() if include_stdlib else []
    program_ast = parse_source(source, filename)
    unit = analyze(program_ast, prebuilt, entry_class, entry_method)
    generate(program_ast, unit)
    if verify:
        verify_program_with_intrinsics(unit)
    return unit


def verify_program_with_intrinsics(unit: ProgramUnit) -> None:
    """Verify all method bodies, resolving call/intrinsic result arity.

    Builds the exact per-call ``pushes a value?`` map from resolved method
    signatures and the intrinsic registry, then delegates to the
    structural verifier.
    """
    from repro.bytecode.opcodes import CALL_OPS, Op
    from repro.bytecode.verify import verify_method

    returns = intrinsic_returns()
    for method in unit.all_methods():
        if method.is_abstract:
            continue
        call_returns: dict[int, bool] = {}
        for i, instr in enumerate(method.code):
            if instr.op in CALL_OPS:
                cls_name, key, _ = instr.arg
                target = unit.lookup_method(cls_name, key)
                if target is None:
                    target = _lookup_iface(unit, cls_name, key)
                if target is None:
                    raise SemanticError(
                        f"{method.qualified_name}: unresolvable call target "
                        f"{cls_name}.{key}"
                    )
                call_returns[i] = target.return_type.name != "void"
            elif instr.op is Op.INTRINSIC:
                name, _ = instr.arg
                if name not in returns:
                    raise SemanticError(
                        f"{method.qualified_name}: unknown intrinsic {name!r}"
                    )
                call_returns[i] = returns[name]
        verify_method(method, call_returns)


def _lookup_iface(unit: ProgramUnit, iface_name: str, key: str):
    cls = unit.classes.get(iface_name)
    if cls is None:
        return None
    if key in cls.methods:
        return cls.methods[key]
    for sup in cls.interface_names:
        found = _lookup_iface(unit, sup, key)
        if found is not None:
            return found
    return None
