"""Hand-written lexer for the Jx language.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
int and double literals, and double-quoted string literals with the
escape set ``\\n \\t \\" \\\\ \\r \\0``.
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, OPERATORS, TokKind, Token

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "r": "\r", "0": "\0"}


class Lexer:
    """Converts Jx source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- character helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    # -- skipping ---------------------------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance()
                self._advance()
                while True:
                    if self.pos >= len(self.source):
                        raise LexError(
                            "unterminated block comment", start_line, start_col
                        )
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    # -- token scanners ------------------------------------------------------------

    def _scan_number(self) -> Token:
        line, col = self.line, self.col
        digits = []
        while self._peek().isdigit():
            digits.append(self._advance())
        is_double = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_double = True
            digits.append(self._advance())
            while self._peek().isdigit():
                digits.append(self._advance())
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_double = True
            digits.append(self._advance())
            if self._peek() in "+-":
                digits.append(self._advance())
            while self._peek().isdigit():
                digits.append(self._advance())
        text = "".join(digits)
        if is_double:
            return Token(TokKind.DOUBLE_LIT, float(text), line, col)
        return Token(TokKind.INT_LIT, int(text), line, col)

    def _scan_string(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", line, col)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\n":
                raise LexError("newline in string literal", line, col)
            if ch == "\\":
                esc = self._advance() if self.pos < len(self.source) else ""
                if esc not in _ESCAPES:
                    raise self._error(f"bad escape sequence '\\{esc}'")
                chars.append(_ESCAPES[esc])
            else:
                chars.append(ch)
        return Token(TokKind.STRING_LIT, "".join(chars), line, col)

    def _scan_word(self) -> Token:
        line, col = self.line, self.col
        chars = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        word = "".join(chars)
        kind = TokKind.KEYWORD if word in KEYWORDS else TokKind.IDENT
        return Token(kind, word, line, col)

    # -- main loop ----------------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokKind.EOF, None, self.line, self.col)
        ch = self._peek()
        if ch.isdigit():
            return self._scan_number()
        if ch == '"':
            return self._scan_string()
        if ch.isalpha() or ch == "_":
            return self._scan_word()
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                line, col = self.line, self.col
                for _ in op:
                    self._advance()
                return Token(TokKind.PUNCT, op, line, col)
        raise self._error(f"unexpected character {ch!r}")

    def tokenize(self) -> list[Token]:
        """Return the full token list, terminated by a single EOF token."""
        tokens = []
        while True:
            tok = self.next_token()
            tokens.append(tok)
            if tok.kind is TokKind.EOF:
                return tokens


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Tokenize ``source`` and return the token list (EOF-terminated)."""
    return Lexer(source, filename).tokenize()
