"""Abstract syntax tree for the Jx language.

The semantic pass (:mod:`repro.lang.semantic`) decorates expression nodes
with a ``jx_type`` attribute and name/call nodes with resolved bindings;
the code generator reads only those annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.bytecode.classfile import JxType


class Node:
    """Base class for all AST nodes."""

    line: int = 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    """Base class for expressions; ``jx_type`` is set by semantic analysis."""

    jx_type: JxType


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass
class DoubleLit(Expr):
    value: float
    line: int = 0


@dataclass
class StringLit(Expr):
    value: str
    line: int = 0


@dataclass
class BoolLit(Expr):
    value: bool
    line: int = 0


@dataclass
class NullLit(Expr):
    line: int = 0


@dataclass
class This(Expr):
    line: int = 0


@dataclass
class Name(Expr):
    """An identifier; resolution fills ``binding``.

    ``binding`` becomes one of:

    * ``("local", index)``
    * ``("field", FieldInfo)`` — implicit ``this`` instance field
    * ``("static_field", FieldInfo)``
    * ``("class", class_name)`` — only as a call/field receiver
    """

    ident: str
    line: int = 0
    binding: Any = None


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class UnOp(Expr):
    op: str
    operand: Expr
    line: int = 0


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr
    line: int = 0


@dataclass
class FieldAccess(Expr):
    """``receiver.name``; resolution fills ``field_info`` (FieldInfo)."""

    receiver: Expr
    name: str
    line: int = 0
    field_info: Any = None
    #: True when the receiver is a class name (static field access).
    is_static: bool = False


@dataclass
class Index(Expr):
    array: Expr
    index: Expr
    line: int = 0


@dataclass
class MethodCall(Expr):
    """``receiver.name(args)`` or implicit-receiver ``name(args)``.

    Resolution fills ``dispatch`` with one of ``"virtual"``, ``"special"``,
    ``"static"``, ``"interface"`` and ``target`` with the resolved
    :class:`~repro.bytecode.classfile.MethodInfo`.
    """

    receiver: Optional[Expr]
    name: str
    args: list[Expr]
    line: int = 0
    dispatch: str = ""
    target: Any = None
    #: For super.m(...) calls.
    is_super: bool = False


@dataclass
class New(Expr):
    class_name: str
    args: list[Expr]
    line: int = 0
    target: Any = None  # resolved constructor MethodInfo


@dataclass
class NewArray(Expr):
    elem_type: JxType
    length: Expr
    line: int = 0


@dataclass
class Cast(Expr):
    type: JxType
    expr: Expr
    line: int = 0


@dataclass
class InstanceOf(Expr):
    expr: Expr
    type: JxType
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt]
    line: int = 0


@dataclass
class VarDecl(Stmt):
    type: JxType
    name: str
    init: Optional[Expr]
    line: int = 0
    local_index: int = -1  # set by semantic analysis


@dataclass
class Assign(Stmt):
    """``target = value`` where target is Name, FieldAccess, or Index."""

    target: Expr
    value: Expr
    line: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt]
    line: int = 0


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt
    line: int = 0


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    update: Optional[Stmt]
    body: Stmt
    line: int = 0


@dataclass
class Return(Stmt):
    value: Optional[Expr]
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: int = 0


@dataclass
class Break(Stmt):
    line: int = 0


@dataclass
class Continue(Stmt):
    line: int = 0


@dataclass
class CtorCall(Stmt):
    """Explicit ``super(args);`` or ``this(args);`` as a ctor's first stmt."""

    kind: str  # "super" or "this"
    args: list[Expr]
    line: int = 0
    target: Any = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    type: JxType
    name: str
    line: int = 0


@dataclass
class FieldDecl(Node):
    name: str
    type: JxType
    is_static: bool = False
    access: str = "default"
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class MethodDecl(Node):
    name: str
    params: list[Param] = field(default_factory=list)
    return_type: JxType = JxType("void")
    body: Optional[Block] = None
    is_static: bool = False
    access: str = "public"
    is_constructor: bool = False
    line: int = 0


@dataclass
class ClassDecl(Node):
    name: str
    super_name: Optional[str] = None
    interfaces: list[str] = field(default_factory=list)
    is_interface: bool = False
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[MethodDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class Program(Node):
    classes: list[ClassDecl] = field(default_factory=list)
    source_name: str = "<source>"
