"""Recursive-descent parser for the Jx language.

Jx is a Java-like subset: classes with single inheritance, interfaces,
static and instance fields/methods, constructors (arity-overloaded),
arrays, and the usual statement/expression forms.  Method overloading is
not supported (one method per name per class), which keeps resolution —
and the paper's per-method specialization bookkeeping — simple.
"""

from __future__ import annotations

from repro.bytecode.classfile import JxType
from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind, Token

_PRIMITIVE_TYPES = ("int", "double", "boolean", "string")
_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                 "<<=": "<<", ">>=": ">>", "&=": "&", "|=": "|", "^=": "^"}


class Parser:
    """Parses one Jx compilation unit (any number of class declarations)."""

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.tokens = tokenize(source, filename)
        self.filename = filename
        self.pos = 0

    # -- token stream helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def _error(self, message: str, tok: Token | None = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(message, tok.line, tok.col)

    def _expect_punct(self, lexeme: str) -> Token:
        tok = self._next()
        if not tok.is_punct(lexeme):
            raise self._error(f"expected '{lexeme}', found {tok}", tok)
        return tok

    def _expect_keyword(self, word: str) -> Token:
        tok = self._next()
        if not tok.is_keyword(word):
            raise self._error(f"expected '{word}', found {tok}", tok)
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind is not TokKind.IDENT:
            raise self._error(f"expected identifier, found {tok}", tok)
        return tok

    def _accept_punct(self, lexeme: str) -> bool:
        if self._peek().is_punct(lexeme):
            self._next()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._next()
            return True
        return False

    # -- types --------------------------------------------------------------------

    def _at_type_start(self) -> bool:
        tok = self._peek()
        return tok.kind is TokKind.KEYWORD and tok.value in _PRIMITIVE_TYPES

    def _parse_type(self) -> JxType:
        tok = self._next()
        if tok.kind is TokKind.KEYWORD and tok.value in (
            *_PRIMITIVE_TYPES,
            "void",
        ):
            name = tok.value
        elif tok.kind is TokKind.IDENT:
            name = tok.value
        else:
            raise self._error(f"expected type, found {tok}", tok)
        dims = 0
        while self._peek().is_punct("[") and self._peek(1).is_punct("]"):
            self._next()
            self._next()
            dims += 1
        return JxType(name, dims)

    # -- program / declarations ------------------------------------------------------

    def parse_program(self) -> ast.Program:
        classes = []
        while self._peek().kind is not TokKind.EOF:
            classes.append(self._parse_class())
        return ast.Program(classes=classes, source_name=self.filename)

    def _parse_class(self) -> ast.ClassDecl:
        tok = self._peek()
        if tok.is_keyword("interface"):
            return self._parse_interface()
        self._expect_keyword("class")
        name_tok = self._expect_ident()
        decl = ast.ClassDecl(name=name_tok.value, line=name_tok.line)
        if self._accept_keyword("extends"):
            decl.super_name = self._expect_ident().value
        if self._accept_keyword("implements"):
            decl.interfaces.append(self._expect_ident().value)
            while self._accept_punct(","):
                decl.interfaces.append(self._expect_ident().value)
        self._expect_punct("{")
        while not self._accept_punct("}"):
            self._parse_member(decl)
        return decl

    def _parse_interface(self) -> ast.ClassDecl:
        self._expect_keyword("interface")
        name_tok = self._expect_ident()
        decl = ast.ClassDecl(
            name=name_tok.value, is_interface=True, line=name_tok.line
        )
        if self._accept_keyword("extends"):
            decl.interfaces.append(self._expect_ident().value)
            while self._accept_punct(","):
                decl.interfaces.append(self._expect_ident().value)
        self._expect_punct("{")
        while not self._accept_punct("}"):
            ret = self._parse_type()
            mname = self._expect_ident()
            params = self._parse_params()
            self._expect_punct(";")
            decl.methods.append(
                ast.MethodDecl(
                    name=mname.value,
                    params=params,
                    return_type=ret,
                    body=None,
                    line=mname.line,
                )
            )
        return decl

    def _parse_member(self, decl: ast.ClassDecl) -> None:
        access = "default"
        is_static = False
        while True:
            tok = self._peek()
            if tok.is_keyword("public"):
                access = "public"
                self._next()
            elif tok.is_keyword("private"):
                access = "private"
                self._next()
            elif tok.is_keyword("static"):
                is_static = True
                self._next()
            else:
                break
        # Constructor: ClassName "(" ...
        tok = self._peek()
        if (
            tok.kind is TokKind.IDENT
            and tok.value == decl.name
            and self._peek(1).is_punct("(")
        ):
            self._next()
            params = self._parse_params()
            body = self._parse_block()
            decl.methods.append(
                ast.MethodDecl(
                    name="<init>",
                    params=params,
                    return_type=JxType("void"),
                    body=body,
                    is_constructor=True,
                    access=access if access != "default" else "public",
                    line=tok.line,
                )
            )
            return
        member_type = self._parse_type()
        name_tok = self._expect_ident()
        if self._peek().is_punct("("):
            params = self._parse_params()
            body = self._parse_block()
            decl.methods.append(
                ast.MethodDecl(
                    name=name_tok.value,
                    params=params,
                    return_type=member_type,
                    body=body,
                    is_static=is_static,
                    access=access if access != "default" else "public",
                    line=name_tok.line,
                )
            )
            return
        # Field declaration (possibly a comma-separated list).
        if member_type.name == "void":
            raise self._error("field cannot have type void", name_tok)
        while True:
            init = self._parse_expr() if self._accept_punct("=") else None
            decl.fields.append(
                ast.FieldDecl(
                    name=name_tok.value,
                    type=member_type,
                    is_static=is_static,
                    access=access,
                    init=init,
                    line=name_tok.line,
                )
            )
            if self._accept_punct(","):
                name_tok = self._expect_ident()
                continue
            self._expect_punct(";")
            return

    def _parse_params(self) -> list[ast.Param]:
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._accept_punct(")"):
            while True:
                ptype = self._parse_type()
                pname = self._expect_ident()
                params.append(
                    ast.Param(type=ptype, name=pname.value, line=pname.line)
                )
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        return params

    # -- statements -----------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_tok = self._expect_punct("{")
        stmts = []
        while not self._accept_punct("}"):
            stmts.append(self._parse_stmt())
        return ast.Block(stmts=stmts, line=open_tok.line)

    def _at_local_decl(self) -> bool:
        """True if the next tokens begin a local variable declaration."""
        tok = self._peek()
        if self._at_type_start():
            return True
        if tok.kind is not TokKind.IDENT:
            return False
        # "Foo x" or "Foo[] x" or "Foo[][] x"
        i = 1
        while self._peek(i).is_punct("[") and self._peek(i + 1).is_punct("]"):
            i += 2
        return self._peek(i).kind is TokKind.IDENT

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expr()
            self._expect_punct(";")
            return ast.Return(value=value, line=tok.line)
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(line=tok.line)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(line=tok.line)
        if tok.is_keyword("super") and self._peek(1).is_punct("("):
            self._next()
            args = self._parse_args()
            self._expect_punct(";")
            return ast.CtorCall(kind="super", args=args, line=tok.line)
        if tok.is_keyword("this") and self._peek(1).is_punct("("):
            self._next()
            args = self._parse_args()
            self._expect_punct(";")
            return ast.CtorCall(kind="this", args=args, line=tok.line)
        if self._at_local_decl():
            stmt = self._parse_var_decl()
            self._expect_punct(";")
            return stmt
        stmt = self._parse_simple_stmt()
        self._expect_punct(";")
        return stmt

    def _parse_var_decl(self) -> ast.Stmt:
        vtype = self._parse_type()
        name_tok = self._expect_ident()
        init = self._parse_expr() if self._accept_punct("=") else None
        decls: list[ast.Stmt] = [
            ast.VarDecl(
                type=vtype, name=name_tok.value, init=init, line=name_tok.line
            )
        ]
        while self._accept_punct(","):
            name_tok = self._expect_ident()
            init = self._parse_expr() if self._accept_punct("=") else None
            decls.append(
                ast.VarDecl(
                    type=vtype,
                    name=name_tok.value,
                    init=init,
                    line=name_tok.line,
                )
            )
        if len(decls) == 1:
            return decls[0]
        return ast.Block(stmts=decls, line=decls[0].line)

    def _parse_simple_stmt(self) -> ast.Stmt:
        """Assignment, increment/decrement, or expression statement."""
        start = self._peek()
        expr = self._parse_expr()
        tok = self._peek()
        if tok.is_punct("="):
            self._next()
            value = self._parse_expr()
            self._check_lvalue(expr, start)
            return ast.Assign(target=expr, value=value, line=start.line)
        for lexeme, op in _COMPOUND_OPS.items():
            if tok.is_punct(lexeme):
                self._next()
                value = self._parse_expr()
                self._check_lvalue(expr, start)
                stmt = ast.Assign(target=expr, value=value, line=start.line)
                stmt.compound_op = op  # type: ignore[attr-defined]
                return stmt
        if tok.is_punct("++") or tok.is_punct("--"):
            self._next()
            self._check_lvalue(expr, start)
            stmt = ast.Assign(
                target=expr, value=ast.IntLit(value=1, line=tok.line),
                line=start.line,
            )
            stmt.compound_op = "+" if tok.value == "++" else "-"  # type: ignore[attr-defined]
            return stmt
        if not isinstance(expr, (ast.MethodCall, ast.New)):
            raise self._error("expression is not a statement", start)
        return ast.ExprStmt(expr=expr, line=start.line)

    def _check_lvalue(self, expr: ast.Expr, tok: Token) -> None:
        if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
            raise self._error("invalid assignment target", tok)

    def _parse_if(self) -> ast.If:
        tok = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_stmt()
        otherwise = self._parse_stmt() if self._accept_keyword("else") else None
        return ast.If(cond=cond, then=then, otherwise=otherwise, line=tok.line)

    def _parse_while(self) -> ast.While:
        tok = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.While(cond=cond, body=body, line=tok.line)

    def _parse_for(self) -> ast.For:
        tok = self._expect_keyword("for")
        self._expect_punct("(")
        init: ast.Stmt | None = None
        if not self._peek().is_punct(";"):
            if self._at_local_decl():
                init = self._parse_var_decl()
            else:
                init = self._parse_simple_stmt()
        self._expect_punct(";")
        cond = None if self._peek().is_punct(";") else self._parse_expr()
        self._expect_punct(";")
        update: ast.Stmt | None = None
        if not self._peek().is_punct(")"):
            update = self._parse_simple_stmt()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.For(
            init=init, cond=cond, update=update, body=body, line=tok.line
        )

    # -- expressions --------------------------------------------------------------

    def _parse_args(self) -> list[ast.Expr]:
        self._expect_punct("(")
        args: list[ast.Expr] = []
        if not self._accept_punct(")"):
            args.append(self._parse_expr())
            while self._accept_punct(","):
                args.append(self._parse_expr())
            self._expect_punct(")")
        return args

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_or()
        if self._accept_punct("?"):
            then = self._parse_expr()
            self._expect_punct(":")
            otherwise = self._parse_ternary()
            return ast.Ternary(
                cond=cond, then=then, otherwise=otherwise, line=cond.line
            )
        return cond

    def _binop_level(self, sub, lexemes: tuple[str, ...]) -> ast.Expr:
        left = sub()
        while True:
            tok = self._peek()
            if tok.kind is TokKind.PUNCT and tok.value in lexemes:
                self._next()
                right = sub()
                left = ast.BinOp(
                    op=tok.value, left=left, right=right, line=tok.line
                )
            else:
                return left

    def _parse_or(self) -> ast.Expr:
        return self._binop_level(self._parse_and, ("||",))

    def _parse_and(self) -> ast.Expr:
        return self._binop_level(self._parse_bitor, ("&&",))

    def _parse_bitor(self) -> ast.Expr:
        return self._binop_level(self._parse_bitxor, ("|",))

    def _parse_bitxor(self) -> ast.Expr:
        return self._binop_level(self._parse_bitand, ("^",))

    def _parse_bitand(self) -> ast.Expr:
        return self._binop_level(self._parse_equality, ("&",))

    def _parse_equality(self) -> ast.Expr:
        return self._binop_level(self._parse_relational, ("==", "!="))

    def _parse_relational(self) -> ast.Expr:
        left = self._binop_level(self._parse_shift, ("<", "<=", ">", ">="))
        if self._accept_keyword("instanceof"):
            rtype = self._parse_type()
            return ast.InstanceOf(expr=left, type=rtype, line=left.line)
        return left

    def _parse_shift(self) -> ast.Expr:
        return self._binop_level(self._parse_additive, ("<<", ">>"))

    def _parse_additive(self) -> ast.Expr:
        return self._binop_level(self._parse_multiplicative, ("+", "-"))

    def _parse_multiplicative(self) -> ast.Expr:
        return self._binop_level(self._parse_unary, ("*", "/", "%"))

    def _looks_like_cast(self) -> bool:
        """Disambiguate ``(Type) expr`` from parenthesized expressions."""
        if not self._peek().is_punct("("):
            return False
        inner = self._peek(1)
        i = 2
        if inner.kind is TokKind.KEYWORD and inner.value in _PRIMITIVE_TYPES:
            pass
        elif inner.kind is TokKind.IDENT:
            pass
        else:
            return False
        while self._peek(i).is_punct("[") and self._peek(i + 1).is_punct("]"):
            i += 2
        if not self._peek(i).is_punct(")"):
            return False
        nxt = self._peek(i + 1)
        if inner.kind is TokKind.KEYWORD:
            return True  # primitive cast is unambiguous
        return (
            nxt.kind in (TokKind.IDENT, TokKind.INT_LIT, TokKind.DOUBLE_LIT,
                         TokKind.STRING_LIT)
            or nxt.is_punct("(")
            or nxt.is_keyword("this")
            or nxt.is_keyword("new")
            or nxt.is_keyword("true")
            or nxt.is_keyword("false")
            or nxt.is_keyword("null")
        )

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_punct("-"):
            self._next()
            operand = self._parse_unary()
            return ast.UnOp(op="-", operand=operand, line=tok.line)
        if tok.is_punct("!"):
            self._next()
            operand = self._parse_unary()
            return ast.UnOp(op="!", operand=operand, line=tok.line)
        if self._looks_like_cast():
            self._next()  # "("
            ctype = self._parse_type()
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(type=ctype, expr=operand, line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("."):
                self._next()
                name = self._expect_ident()
                if self._peek().is_punct("("):
                    args = self._parse_args()
                    expr = ast.MethodCall(
                        receiver=expr,
                        name=name.value,
                        args=args,
                        line=name.line,
                    )
                else:
                    expr = ast.FieldAccess(
                        receiver=expr, name=name.value, line=name.line
                    )
            elif tok.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = ast.Index(array=expr, index=index, line=tok.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokKind.INT_LIT:
            self._next()
            return ast.IntLit(value=tok.value, line=tok.line)
        if tok.kind is TokKind.DOUBLE_LIT:
            self._next()
            return ast.DoubleLit(value=tok.value, line=tok.line)
        if tok.kind is TokKind.STRING_LIT:
            self._next()
            return ast.StringLit(value=tok.value, line=tok.line)
        if tok.is_keyword("true") or tok.is_keyword("false"):
            self._next()
            return ast.BoolLit(value=tok.value == "true", line=tok.line)
        if tok.is_keyword("null"):
            self._next()
            return ast.NullLit(line=tok.line)
        if tok.is_keyword("this"):
            self._next()
            return ast.This(line=tok.line)
        if tok.is_keyword("super"):
            self._next()
            self._expect_punct(".")
            name = self._expect_ident()
            args = self._parse_args()
            return ast.MethodCall(
                receiver=None,
                name=name.value,
                args=args,
                is_super=True,
                line=name.line,
            )
        if tok.is_keyword("new"):
            return self._parse_new()
        if tok.kind is TokKind.IDENT:
            self._next()
            if self._peek().is_punct("("):
                args = self._parse_args()
                return ast.MethodCall(
                    receiver=None, name=tok.value, args=args, line=tok.line
                )
            return ast.Name(ident=tok.value, line=tok.line)
        if tok.is_punct("("):
            self._next()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise self._error(f"unexpected token {tok} in expression", tok)

    def _parse_new(self) -> ast.Expr:
        tok = self._expect_keyword("new")
        type_tok = self._next()
        if type_tok.kind is TokKind.KEYWORD and type_tok.value in _PRIMITIVE_TYPES:
            base = type_tok.value
            is_class = False
        elif type_tok.kind is TokKind.IDENT:
            base = type_tok.value
            is_class = True
        else:
            raise self._error(f"expected type after 'new', found {type_tok}")
        if self._peek().is_punct("("):
            if not is_class:
                raise self._error("cannot construct a primitive", type_tok)
            args = self._parse_args()
            return ast.New(class_name=base, args=args, line=tok.line)
        self._expect_punct("[")
        length = self._parse_expr()
        self._expect_punct("]")
        extra_dims = 0
        while self._peek().is_punct("[") and self._peek(1).is_punct("]"):
            self._next()
            self._next()
            extra_dims += 1
        return ast.NewArray(
            elem_type=JxType(base, extra_dims), length=length, line=tok.line
        )


def parse_source(source: str, filename: str = "<source>") -> ast.Program:
    """Parse Jx source text into an AST :class:`~repro.lang.ast.Program`."""
    return Parser(source, filename).parse_program()
