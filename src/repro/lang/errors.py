"""Diagnostics for the Jx frontend."""

from __future__ import annotations


class JxError(Exception):
    """Base class for all Jx frontend errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        location = f" at {line}:{col}" if line else ""
        super().__init__(f"{message}{location}")


class LexError(JxError):
    """Raised on malformed input characters or literals."""


class ParseError(JxError):
    """Raised on syntax errors."""


class SemanticError(JxError):
    """Raised on name-resolution or type errors."""
