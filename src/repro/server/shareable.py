"""The shareability gate: which mutation plans may enter a shared
code space.

Instance-field state is per-object: a TIB-pointer swap touches only the
object's own header word, so any number of sessions can mutate their own
objects against shared TIBs and shared specialized code.  *Static*-field
state is different in kind — re-evaluating a static state change patches
the **shared dispatch structures themselves** (class TIB entries and
JTOC method cells, :meth:`MutationManager.apply_static_state`), which
would publish one tenant's state to every other tenant.

A multi-tenant code space therefore admits only mutable-class plans with
no static state fields.  Excluded classes simply run unmutated (their
objects keep the class TIB) — the same safe fallback the
specialization-safety audit uses for downgrades; correctness never
depends on mutation being on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.mutation.plan import MutationPlan
from repro.telemetry.core import maybe as _tel_maybe


@dataclass
class ShareabilityFinding:
    """One mutable-class plan rejected from a shared code space."""

    class_name: str
    reason: str

    def __str__(self) -> str:
        return f"{self.class_name}: {self.reason}"


def filter_shareable_plan(
    plan: MutationPlan | None, telemetry: Any = None
) -> tuple[MutationPlan | None, list[ShareabilityFinding]]:
    """Split ``plan`` into its session-shareable part.

    Returns ``(shared_plan, findings)``: a plan containing only the
    mutable classes safe to attach to a multi-session code space, plus
    one finding per excluded class.  ``None`` passes through (no plan,
    nothing to gate); a plan whose every class is excluded comes back as
    ``None`` so the code space skips manager attachment entirely.
    """
    if plan is None:
        return None, []
    findings: list[ShareabilityFinding] = []
    kept: dict[str, Any] = {}
    for name, class_plan in plan.classes.items():
        if class_plan.static_fields:
            keys = [spec.key for spec in class_plan.static_fields]
            findings.append(ShareabilityFinding(
                class_name=name,
                reason=(
                    "static state field(s) "
                    + ", ".join(sorted(keys))
                    + " — re-evaluation patches shared dispatch"
                    " structures (TIB entries / JTOC cells)"
                ),
            ))
        else:
            kept[name] = class_plan
    tel = _tel_maybe(telemetry)
    if tel is not None and findings:
        tel.count("server.plans_excluded", len(findings))
    if not findings:
        return plan, []
    if not kept:
        return None, findings
    shared = MutationPlan(
        classes=kept,
        lifetime_constants=dict(plan.lifetime_constants),
        config=plan.config,
        hot_methods=list(plan.hot_methods),
    )
    return shared, findings
