"""Result records for multi-session serving."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any


def output_digest(output: str) -> str:
    """Stable digest of a session's program output, used by the serve
    harness (and CI smoke) to prove cross-tenant isolation: sessions
    started from the same seed must produce identical digests."""
    return hashlib.sha256(output.encode("utf-8")).hexdigest()


@dataclass
class SessionResult:
    """One session's complete run, as observed by the serve driver."""

    session_id: int
    seed: int
    value: Any
    output: str
    digest: str
    wall_seconds: float
    #: Per-session mutation accounting (no other session's swaps bleed
    #: into these — see tests/test_server.py).
    tib_swaps: int
    swaps_coalesced: int
    special_tibs_created: int
    objects_allocated: int
    #: Seconds this session's compiles spent waiting on cache key locks
    #: (0.0 when the code space is warm, which is the steady state).
    error: str | None = None


@dataclass
class ServeReport:
    """Aggregate outcome of serving N sessions over one code space."""

    workload: str
    sessions: int
    workers: int
    results: list[SessionResult] = field(default_factory=list)
    #: Wall time from first session start to last session end.
    wall_seconds: float = 0.0
    #: Sessions completed per second of aggregate wall time.
    throughput: float = 0.0
    #: Per-session latency statistics (seconds).
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_max: float = 0.0
    #: Sessions created from the shared (already-built) code space —
    #: every one after the first avoids a full link+compile+quicken.
    codespace_hits: int = 0
    #: Warmup + freeze cost paid once to build the shared space.
    codespace_build_seconds: float = 0.0
    #: Mutable-class plans excluded from the shared space by the
    #: shareability gate (repro.server.shareable).
    plans_excluded: int = 0

    @property
    def digests(self) -> list[str]:
        return [r.digest for r in self.results]

    @property
    def digests_identical(self) -> bool:
        """True when every session produced byte-identical output — the
        zero-cross-tenant-leakage invariant for same-seed sessions."""
        digests = self.digests
        return len(set(digests)) <= 1

    @property
    def errors(self) -> list[str]:
        return [r.error for r in self.results if r.error]

    def describe(self) -> str:
        lines = [
            f"serve {self.workload}: {self.sessions} sessions / "
            f"{self.workers} workers",
            f"  wall {self.wall_seconds:.3f}s  "
            f"throughput {self.throughput:.2f} sessions/s",
            f"  latency mean {self.latency_mean:.3f}s  "
            f"p50 {self.latency_p50:.3f}s  max {self.latency_max:.3f}s",
            f"  codespace: build {self.codespace_build_seconds:.3f}s, "
            f"{self.codespace_hits} session(s) shared it"
            + (f", {self.plans_excluded} plan(s) excluded"
               if self.plans_excluded else ""),
            f"  digests identical: {self.digests_identical}",
        ]
        if self.errors:
            lines.append(f"  ERRORS: {self.errors}")
        return "\n".join(lines)
