"""The serve harness: N concurrent workload sessions, one code space.

This is the ROADMAP's "millions of users" scenario scaled to a test
bench: build the program world once, then drive many tenants over it
from a thread pool.  Each session gets a private heap/statics/stats
layer (:class:`repro.server.Session`), runs the workload entry point,
and reports its output digest; the driver aggregates throughput and
latency and asserts nothing leaked between tenants (same-seed sessions
must produce byte-identical digests).

Telemetry (attached to the code space):

* ``server.sessions`` — sessions completed;
* ``server.session_seconds`` — per-session latency distribution;
* ``server.codespace_hits`` — sessions served from the shared space;
* ``cache.lock_wait_seconds`` — compile-cache key-lock contention
  (emitted by the opt pipeline during warmup; zero once frozen).
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.lang import compile_source
from repro.server.codespace import CodeSpace
from repro.server.results import ServeReport, SessionResult, output_digest
from repro.telemetry.core import maybe as _tel_maybe


def serve(
    space: CodeSpace,
    sessions: int = 4,
    workers: int = 4,
    seed: int = 42,
    workload: str = "<unit>",
) -> ServeReport:
    """Run ``sessions`` concurrent tenants over ``space``.

    All sessions use the same ``seed``, so byte-identical outputs are
    the expected (and checked) result; any digest divergence is
    cross-tenant leakage.  Session construction happens inside the
    worker, so creation cost is measured as part of latency.
    """
    workers = max(1, min(workers, sessions))
    tel = _tel_maybe(space.telemetry)

    def _run_one(session_id: int) -> SessionResult:
        start = time.perf_counter()
        session = space.create_session(seed=seed)
        try:
            result = session.run()
            wall = time.perf_counter() - start
            sr = SessionResult(
                session_id=session_id,
                seed=seed,
                value=result.value,
                output=result.output,
                digest=output_digest(result.output),
                wall_seconds=wall,
                tib_swaps=session.mutation_stats.tib_swaps,
                swaps_coalesced=session.mutation_stats.swaps_coalesced,
                special_tibs_created=(
                    session.mutation_stats.special_tibs_created
                ),
                objects_allocated=session.heap.objects_allocated,
            )
        except Exception as exc:  # a tenant failing must not kill the pool
            sr = SessionResult(
                session_id=session_id,
                seed=seed,
                value=None,
                output="",
                digest="",
                wall_seconds=time.perf_counter() - start,
                tib_swaps=0,
                swaps_coalesced=0,
                special_tibs_created=0,
                objects_allocated=0,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            session.close()
        if tel is not None:
            tel.count("server.sessions")
            tel.observe("server.session_seconds", sr.wall_seconds)
        return sr

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_run_one, range(sessions)))
    wall = time.perf_counter() - start
    latencies = [r.wall_seconds for r in results] or [0.0]
    return ServeReport(
        workload=workload,
        sessions=sessions,
        workers=workers,
        results=results,
        wall_seconds=wall,
        throughput=(sessions / wall) if wall > 0 else 0.0,
        latency_mean=statistics.fmean(latencies),
        latency_p50=statistics.median(latencies),
        latency_max=max(latencies),
        codespace_hits=space.codespace_hits,
        codespace_build_seconds=space.build_seconds,
        plans_excluded=len(space.shareability_findings),
    )


def serve_workload(
    name: str,
    sessions: int = 4,
    workers: int = 4,
    seed: int = 42,
    scale: float | None = None,
    mutate: bool = True,
    cache: Any = None,
    telemetry: Any = None,
) -> ServeReport:
    """Build a code space for a registered workload and serve it."""
    from repro.mutation import build_mutation_plan
    from repro.workloads.registry import get_workload

    spec = get_workload(name)
    source = spec.source(scale if scale is not None else spec.bench_scale)
    unit = compile_source(
        source,
        filename=f"<{spec.name}>",
        entry_class=spec.entry_class,
        entry_method=spec.entry_method,
    )
    plan = None
    if mutate:
        plan = build_mutation_plan(
            spec.profile_source(), entry_class=spec.entry_class
        )
    space = CodeSpace(
        unit,
        mutation_plan=plan,
        compile_cache=cache,
        telemetry=telemetry,
        warmup_seed=seed,
    )
    return serve(
        space, sessions=sessions, workers=workers, seed=seed,
        workload=spec.name,
    )
