"""Multi-session VM serving over a shared code space.

The CGO'06 mutation machinery (TIB swaps, specialized code, quickened
dispatch) lives in per-program structures that are expensive to build
and — once frozen — never written.  This package splits the VM along
exactly that line: a :class:`CodeSpace` owns the immutable program
world (built once, warmed to final tiers, frozen), and each
:class:`Session` owns one tenant's mutable layer (heap, static-field
values, object TIB pointers, stats, output).  :func:`serve` drives N
concurrent sessions from a thread pool and proves isolation by digest.
"""

from repro.server.codespace import CodeSpace
from repro.server.driver import serve, serve_workload
from repro.server.results import ServeReport, SessionResult, output_digest
from repro.server.session import Session
from repro.server.shareable import (
    ShareabilityFinding,
    filter_shareable_plan,
)

__all__ = [
    "CodeSpace",
    "ServeReport",
    "Session",
    "SessionResult",
    "ShareabilityFinding",
    "filter_shareable_plan",
    "output_digest",
    "serve",
    "serve_workload",
]
