"""The shared code space: one program world, many sessions.

A :class:`CodeSpace` builds a complete program world **once** — link,
mutation-manager attach (shareable plans only), adaptive warmup to the
final compiled tiers, quickening — then *freezes* it by retiring every
method's promotion threshold.  After the freeze nothing in the world is
ever written again:

* class/TIB/IMT dispatch tables — patched only by the installer and by
  static-state re-evaluation, and neither runs post-freeze (adaptive
  promotion is retired; static-state plans are excluded by
  :mod:`repro.server.shareable`);
* compiled code, quickened bodies, opt IR — produced by compiles, which
  the retired thresholds make unreachable;
* special TIBs and the value→TIB swap tables — created exclusively at
  manager attach time;
* JTOC *method cells* — patched only by the installer.

What remains mutable is exactly the per-session layer (heap accounting,
static field *values*, object TIB pointers, mutation stats, the output
buffer), and :class:`repro.server.Session` gives each tenant a private
copy.  The only shared writes sessions perform are the benign ones:
inline-cache publication (serialized, values-before-key —
:mod:`repro.bytecode.quicken`), sampling counters (advisory), and the
compile cache (per-key locked).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Any

from repro.bytecode.classfile import ProgramUnit
from repro.server.shareable import ShareabilityFinding, filter_shareable_plan
from repro.telemetry.core import maybe as _tel_maybe
from repro.vm.adaptive import AdaptiveConfig
from repro.vm.compiled import NEVER
from repro.vm.runtime import VM, VMConfig


def _warmup_config() -> AdaptiveConfig:
    """Aggressive promotion for the warmup run: the template should
    reach the final tiers in one pass so sessions never want for
    compiled code."""
    return AdaptiveConfig(opt1_ticks=16, opt2_ticks=32)


class CodeSpace:
    """An immutable-once-frozen program world shared by sessions.

    Build cost (link + warmup compiles + quickening) is paid once in
    ``__init__``; :meth:`create_session` afterwards costs one
    static-field list copy plus a handful of counter objects.
    """

    def __init__(
        self,
        program: ProgramUnit,
        mutation_plan: Any = None,
        adaptive_config: AdaptiveConfig | None = None,
        compile_cache: Any = None,
        config: VMConfig | None = None,
        telemetry: Any = None,
        warmup_runs: int = 1,
        warmup_seed: int = 42,
    ) -> None:
        start = time.perf_counter()
        self.telemetry = telemetry
        plan, findings = filter_shareable_plan(mutation_plan, telemetry)
        self.shareability_findings: list[ShareabilityFinding] = findings
        #: The template VM *is* the program world; its session-state
        #: layer is consumed by warmup and never read again.
        self.vm = VM(
            program,
            mutation_plan=plan,
            adaptive_config=adaptive_config or _warmup_config(),
            seed=warmup_seed,
            telemetry=telemetry,
            compile_cache=compile_cache,
            config=config,
        )
        self.warmup_output = ""
        for _ in range(max(0, warmup_runs)):
            self.warmup_output = self.vm.run().output
        self._freeze()
        self.frozen = True
        self.build_seconds = time.perf_counter() - start
        self._lock = threading.Lock()
        self.sessions_created = 0
        #: Sessions served from the already-built space — each one is a
        #: full link+warmup+quicken avoided (``server.codespace_hits``).
        self.codespace_hits = 0

    def _freeze(self) -> None:
        """Retire every promotion threshold so no session-time path can
        ever reach the compiler or the installer."""
        for rm in self.vm.all_runtime_methods():
            rm.samples.threshold = NEVER
        # Swap in a disabled *copy*: the caller's AdaptiveConfig may be
        # shared with other VMs and must not be mutated.
        self.vm.adaptive.config = replace(
            self.vm.adaptive.config, enabled=False
        )

    # ------------------------------------------------------------------

    def create_session(self, seed: int = 42, telemetry: Any = None):
        """A new isolated tenant over this frozen world."""
        from repro.server.session import Session

        with self._lock:
            session_id = self.sessions_created
            self.sessions_created += 1
            self.codespace_hits += 1
        tel = _tel_maybe(self.telemetry)
        if tel is not None:
            tel.count("server.codespace_hits")
        return Session(
            self, session_id=session_id, seed=seed, telemetry=telemetry
        )

    # ------------------------------------------------------------------

    def describe(self) -> str:
        lines = [
            f"CodeSpace: {len(self.vm.classes)} classes, "
            f"built in {self.build_seconds:.3f}s, "
            f"{self.sessions_created} sessions created",
        ]
        for finding in self.shareability_findings:
            lines.append(f"  excluded plan {finding}")
        return "\n".join(lines)
