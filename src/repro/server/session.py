"""One tenant's session over a shared :class:`CodeSpace`.

A Session *is a* VM for everything the runtime touches — the
interpreter, the IR interpreter, generated opt2 code, the mutation
hooks, and the quickened dispatch all take ``vm`` parameters and find
the same attribute surface here.  The difference is in what the
attributes point at:

=====================  ==================================================
owned (private)        ``heap``, ``intrinsic_ctx`` (output + RNG),
                       ``mutation_stats``, ``compile_stats``,
                       ``telemetry``, the ``<clinit>``-ran flag, and
                       ``jtoc`` — a :class:`~repro.vm.jtoc.JTOCView`
                       whose field storage starts from the pristine
                       (pre-``<clinit>``) snapshot
borrowed (shared)      ``unit``, ``classes``, ``tib_space``, compiled
                       code + quickened bodies, ``mutation_manager``,
                       ``quickener``, ``compile_cache``, ``config``
=====================  ==================================================

Objects a session allocates are reachable only from its own frames and
its own static-field view, so TIB-pointer swaps — the paper's mutation
mechanism — are automatically session-local.  The session's adaptive
system is *disabled* (the space froze every threshold to NEVER at build
time), so no session-time path can reach the compiler or the code
installer, which are the only writers of shared dispatch structures.
"""

from __future__ import annotations

from typing import Any

from repro.vm.adaptive import AdaptiveConfig, AdaptiveSystem
from repro.vm.jtoc import JTOCView
from repro.vm.runtime import VM


class Session(VM):
    """A per-tenant VM facade borrowing a CodeSpace's program world."""

    def __init__(
        self,
        space: Any,
        session_id: int = 0,
        seed: int = 42,
        telemetry: Any = None,
    ) -> None:
        if telemetry is True:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.telemetry = telemetry
        self.space = space
        self.session_id = session_id
        self.seed = seed
        # The private layer (exactly what VM._init_session_state names).
        self._init_session_state(seed)
        # The borrowed world: every attribute _build_program_world would
        # have built, aliased from the frozen template instead.
        template = space.vm
        self.unit = template.unit
        self.compile_cache = template.compile_cache
        self.linker = template.linker
        self.classes = template.classes
        self.tib_space = template.tib_space
        self.pristine_statics = template.pristine_statics
        #: Private static-field *values* over shared method cells.
        self.jtoc = JTOCView(template.jtoc, template.pristine_statics)
        self.installer = template.installer
        self.mutation_manager = template.mutation_manager
        self.config = template.config
        self.quickener = template.quickener
        self._opt_compiler = template._opt_compiler
        # Sessions never OSR-enter (frozen thresholds are NEVER), but
        # deopt guards baked into shared specialized code call
        # osr-machinery through the invoking vm, and diagnostics read
        # vm.osr uniformly.
        self.osr = template.osr
        # Published by the manager at attach time; plain dict reads.
        self.lifetime_constants = getattr(
            template, "lifetime_constants", {}
        )
        # The interpreter reads ``vm.adaptive`` unconditionally; give it
        # a disabled one (ticks never cross the frozen NEVER thresholds,
        # so ``on_hot`` is unreachable anyway).
        self.adaptive = AdaptiveSystem(self, AdaptiveConfig(enabled=False))

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop every reference into the session's private layer so a
        finished tenant pins no heap; the shared world is untouched.
        The session is unusable afterwards."""
        self._init_session_state(self.seed)
        self.jtoc = JTOCView(self.space.vm.jtoc, self.pristine_statics)

    def __repr__(self) -> str:
        return (
            f"<Session #{self.session_id} seed={self.seed} "
            f"of {self.space!r}>"
        )
