"""Symbolic lockstep states for translation validation.

The translation validator (:mod:`repro.analysis.tv`) proves a
transformed method body observationally equivalent to its pristine
bytecode by *symbolic abstract interpretation in lockstep*: both bodies
are executed over the same generic entry state (fresh symbols for every
local and every operand-stack slot) and their **outcomes** — successor
pc, branch-condition terms, final stack/locals projection, and the
ordered stream of observable effects — must agree exactly.

The machinery here is deliberately local.  Quickening and fusion are
slot- and pc-preserving, so one superinstruction at slot ``i`` covering
``w`` slots must behave exactly like the pristine region
``code[i : i+w]`` *from any state that can reach slot* ``i``.  Running
both sides from a fully generic state therefore proves a per-slot
simulation that composes by induction over execution — no global
fixpoint, no loop invariants, and termination is trivial (a region is
at most six instructions, the widest idiom ``FIELD_INC``).

Terms are nested hashable tuples:

``("l", i)``
    the value local ``i`` held at entry;
``("s", k)``
    the ``k``-th operand-stack slot at entry (0 = bottom);
``("c", v)``
    the literal ``v``;
``("bin", name, a, b)`` / ``("un", name, a)``
    pure operators (the interpreter's arithmetic, comparisons, string
    concat, conversions — their raise behavior is position-identical on
    both sides because they are never transformed);
``("fld", key, obj, ver)`` / ``("st", slot, ver)`` / ``("el", arr, i, ver)``
    heap reads, versioned by the number of preceding heap-mutating
    effects on the path so a transformation that moved a read across a
    write cannot produce an accidentally-equal term;
``("res", k)``
    the ``k``-th fresh result (call return values and allocations) —
    equal effect streams imply aligned numbering.

Field keys discriminate the *access path*, which is exactly where shape
bugs live: a plain packed index accesses ``obj.fields[slot]`` directly
and models as ``("slot", int)``, while a shape-managed slot
(:class:`~repro.vm.shapes.ShapeField` / ``UnboxedField``) routes
through ``slot.read``/``slot.store`` and models as
``("shape", id(slot))``.  A fused form that direct-indexes a
shape-managed slot (or a ``GETFIELD_SHAPE`` carrying a plain int)
produces a mismatched key and fails validation.

Observable effects (ordered, compared as streams):

* ``("null", obj)`` — a null check, deduplicated per path through the
  proven-nonnull set (the fused ``FIELD_INC`` checks its receiver once
  where the pristine region checks twice; both prove the same set);
* ``("putf", key, obj, value, hook_id)`` / ``("putst", slot, value,
  hook_id)`` — state writes.  ``hook_id`` is the identity of the
  :class:`~repro.bytecode.instructions.Instr` whose ``state_hook`` is
  read **live** at the write, so a quickened body that copied a hooked
  instruction (instead of carrying the shared object) is rejected —
  this subsumes the hook-liveness lint;
* ``("callv", offset, returns, args)`` and friends — the call sequence
  modulo devirtualization: an inline-cached virtual call is equivalent
  to the pristine ``INVOKEVIRTUAL`` iff it dispatches through the same
  vtable offset with the same arity and return arity;
* ``("cast", cls, obj)``, ``("alloc", term)``, ``("intr", id, args)``,
  ``("bound", arr, idx)``, ``("aset", arr, idx, v)`` — the remaining
  observable operations, kept in stream order.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.opcodes import (
    CALL_OPS,
    Op,
    branch_target,
    op_width,
)

__all__ = [
    "TVUnprovable",
    "SymState",
    "entry_depths",
    "entry_state",
    "step_outcomes",
    "region_outcomes",
]


class TVUnprovable(Exception):
    """The validator cannot establish equivalence for a slot — not
    necessarily a miscompile, but the body must not be trusted."""

    def __init__(self, pc: int, message: str) -> None:
        self.pc = pc
        self.reason = message
        super().__init__(f"@{pc}: {message}")


# ---------------------------------------------------------------------------
# Field-key discrimination.

def managed_key(resolved: Any, pc: int) -> tuple:
    """The access-path key of a discriminating field site (pristine
    GETFIELD/PUTFIELD and GETFIELD_SHAPE route on ``type(slot)``)."""
    if resolved is None:
        raise TVUnprovable(pc, "unresolved field access")
    if type(resolved) is int:
        return ("slot", resolved)
    return ("shape", id(resolved))


def direct_key(resolved: Any, pc: int) -> tuple:
    """The access-path key of a direct-indexing site (``GETFIELD_QUICK``
    and the fused forms index ``obj.fields`` with ``int(slot)``)."""
    if resolved is None:
        raise TVUnprovable(pc, "unresolved field access")
    try:
        return ("slot", int(resolved))
    except (TypeError, ValueError):
        raise TVUnprovable(
            pc, f"direct field index is not an int: {resolved!r}"
        ) from None


_BIN_OPS = {
    Op.ADD: "add", Op.SUB: "sub", Op.MUL: "mul", Op.IDIV: "idiv",
    Op.FDIV: "fdiv", Op.IREM: "irem", Op.SHL: "shl", Op.SHR: "shr",
    Op.BAND: "band", Op.BOR: "bor", Op.BXOR: "bxor",
    Op.CMP_LT: "cmp_lt", Op.CMP_LE: "cmp_le", Op.CMP_GT: "cmp_gt",
    Op.CMP_GE: "cmp_ge", Op.CMP_EQ: "cmp_eq", Op.CMP_NE: "cmp_ne",
    Op.CONCAT: "concat",
}

_UN_OPS = {
    Op.NEG: "neg", Op.NOT: "not", Op.I2D: "i2d", Op.D2I: "d2i",
}


class SymState:
    """One symbolic path through a slot's execution."""

    __slots__ = ("pc", "stack", "locals", "nonnull", "heapver",
                 "fresh", "effects", "conds", "ret", "via_fall")

    def __init__(self, pc: int, stack: list, locals_: list) -> None:
        self.pc = pc
        self.stack = stack
        self.locals = locals_
        #: Terms proven non-null on this path (null checks dedup here).
        self.nonnull: set = set()
        #: Count of heap-mutating effects so far — versions heap reads.
        self.heapver = 0
        #: Fresh-result counter (call returns, allocations).
        self.fresh = 0
        self.effects: list = []
        #: Ordered (term, taken) branch decisions on this path.
        self.conds: list = []
        #: ("v", term) / ("void",) once a return executed, else None.
        self.ret: Any = None
        #: Whether the last transition was sequential fall-through.
        self.via_fall = True

    def fork(self) -> "SymState":
        c = SymState(self.pc, list(self.stack), list(self.locals))
        c.nonnull = set(self.nonnull)
        c.heapver = self.heapver
        c.fresh = self.fresh
        c.effects = list(self.effects)
        c.conds = list(self.conds)
        c.ret = self.ret
        return c

    # -- helpers -------------------------------------------------------

    def pop(self) -> Any:
        if not self.stack:
            raise TVUnprovable(self.pc, "symbolic stack underflow")
        return self.stack.pop()

    def null_check(self, obj: Any) -> None:
        if obj not in self.nonnull:
            self.effects.append(("null", obj))
            self.nonnull.add(obj)

    def result(self) -> tuple:
        t = ("res", self.fresh)
        self.fresh += 1
        return t

    def write_heap(self, effect: tuple) -> None:
        self.effects.append(effect)
        self.heapver += 1

    def outcome(self) -> tuple:
        """The canonical observable summary of this finished path."""
        head = self.ret if self.ret is not None else ("pc", self.pc)
        return (
            head,
            tuple(self.conds),
            tuple(self.stack),
            tuple(self.locals),
            frozenset(self.nonnull),
            tuple(self.effects),
        )


def entry_state(pc: int, depth: int, max_locals: int) -> SymState:
    """The fully generic state at a slot: every stack slot and local is
    a fresh symbol, nothing is proven non-null, no effects ran."""
    return SymState(
        pc,
        [("s", k) for k in range(depth)],
        [("l", k) for k in range(max_locals)],
    )


# ---------------------------------------------------------------------------
# One symbolic step.

def _call_args(st: SymState, argc: int) -> tuple:
    if argc < 0:
        raise TVUnprovable(st.pc, f"negative arg count {argc}")
    args = [st.pop() for _ in range(argc)]
    args.reverse()
    return tuple(args)


def _do_call(st: SymState, effect_head: tuple, argc: int,
             returns: bool, *, receiver_checked: bool) -> None:
    args = _call_args(st, argc)
    if receiver_checked:
        if not args:
            raise TVUnprovable(st.pc, "receiver call with no arguments")
        st.null_check(args[0])
    st.write_heap(effect_head + (bool(returns), args))
    if returns:
        st.stack.append(st.result())


def _putfield(st: SymState, key: tuple, obj: Any, value: Any,
              hook_instr: Any) -> None:
    st.null_check(obj)
    st.write_heap(("putf", key, obj, value, id(hook_instr)))


def step(code: list, st: SymState) -> list[SymState]:
    """Execute ``code[st.pc]`` symbolically; return successor paths.

    Handles the full ISA — pristine ops, standalone quickened ops, and
    every superinstruction — mirroring ``interpret``/``interpret_quick``
    exactly (including fused null-check placement, live hook reads, and
    the direct-vs-shape slot discrimination).
    """
    pc = st.pc
    instr = code[pc]
    op = instr.op
    arg = instr.arg
    width = op_width(op)
    nxt = pc + width
    st.via_fall = True

    # -- pure data movement / arithmetic -------------------------------
    if op is Op.CONST:
        st.stack.append(("c", arg))
    elif op is Op.LOAD:
        st.stack.append(st.locals[arg])
    elif op is Op.STORE:
        st.locals[arg] = st.pop()
    elif op is Op.POP:
        st.pop()
    elif op is Op.DUP:
        st.stack.append(st.stack[-1] if st.stack else st.pop())
    elif op is Op.SWAP:
        b, a = st.pop(), st.pop()
        st.stack += [b, a]
    elif op in _BIN_OPS:
        b, a = st.pop(), st.pop()
        st.stack.append(("bin", _BIN_OPS[op], a, b))
    elif op in _UN_OPS:
        st.stack.append(("un", _UN_OPS[op], st.pop()))
    elif op is Op.NOP:
        pass

    # -- control flow ---------------------------------------------------
    elif op is Op.JUMP:
        st.pc = arg
        st.via_fall = False
        return [st]
    elif op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
        cond = st.pop()
        on_taken = op is Op.JUMP_IF_TRUE
        taken, fall = st.fork(), st
        taken.conds.append((cond, on_taken))
        taken.pc = arg
        taken.via_fall = False
        fall.conds.append((cond, not on_taken))
        fall.pc = nxt
        return [taken, fall]
    elif op is Op.RETURN:
        st.ret = ("v", st.pop())
        return [st]
    elif op is Op.RETURN_VOID:
        st.ret = ("void",)
        return [st]

    # -- objects and fields ---------------------------------------------
    elif op in (Op.GETFIELD, Op.GETFIELD_SHAPE):
        key = managed_key(instr.resolved, pc)
        if op is Op.GETFIELD_SHAPE and key[0] != "shape":
            raise TVUnprovable(
                pc, "GETFIELD_SHAPE carries a plain int slot"
            )
        obj = st.pop()
        st.null_check(obj)
        st.stack.append(("fld", key, obj, st.heapver))
    elif op is Op.GETFIELD_QUICK:
        obj = st.pop()
        st.null_check(obj)
        st.stack.append(
            ("fld", direct_key(instr.resolved, pc), obj, st.heapver)
        )
    elif op is Op.PUTFIELD:
        value, obj = st.pop(), st.pop()
        _putfield(st, managed_key(instr.resolved, pc), obj, value, instr)
    elif op is Op.GETSTATIC:
        if instr.resolved is None:
            raise TVUnprovable(pc, "unresolved static access")
        st.stack.append(("st", instr.resolved, st.heapver))
    elif op is Op.PUTSTATIC:
        if instr.resolved is None:
            raise TVUnprovable(pc, "unresolved static access")
        value = st.pop()
        st.write_heap(("putst", instr.resolved, value, id(instr)))
    elif op is Op.NEW:
        st.effects.append(("alloc", ("obj", arg)))
        obj = st.result()
        st.nonnull.add(obj)
        st.stack.append(obj)
    elif op is Op.INSTANCEOF:
        st.stack.append(("un", ("instanceof", arg), st.pop()))
    elif op is Op.CHECKCAST:
        if not st.stack:
            raise TVUnprovable(pc, "symbolic stack underflow")
        st.effects.append(("cast", arg, st.stack[-1]))

    # -- arrays ----------------------------------------------------------
    elif op is Op.NEWARRAY:
        length = st.pop()
        st.effects.append(("alloc", ("arr", arg, length)))
        ref = st.result()
        st.nonnull.add(ref)
        st.stack.append(ref)
    elif op is Op.ALOAD:
        idx, ref = st.pop(), st.pop()
        st.null_check(ref)
        st.effects.append(("bound", ref, idx))
        st.stack.append(("el", ref, idx, st.heapver))
    elif op is Op.ASTORE:
        value, idx, ref = st.pop(), st.pop(), st.pop()
        st.null_check(ref)
        st.effects.append(("bound", ref, idx))
        st.write_heap(("aset", ref, idx, value))
    elif op is Op.ARRAYLEN:
        ref = st.pop()
        st.null_check(ref)
        st.stack.append(("un", "arraylen", ref))

    # -- calls -----------------------------------------------------------
    elif op is Op.INVOKEVIRTUAL:
        if instr.resolved is None:
            raise TVUnprovable(pc, "unresolved virtual call")
        offset, returns = instr.resolved
        _do_call(st, ("callv", offset), arg[2], returns,
                 receiver_checked=True)
    elif op is Op.INVOKEVIRTUAL_QUICK:
        ic = instr.resolved
        if ic is None:
            raise TVUnprovable(pc, "virtual IC site with no cache cell")
        _do_call(st, ("callv", ic.offset), ic.argc, ic.returns,
                 receiver_checked=True)
    elif op is Op.INVOKEINTERFACE:
        if instr.resolved is None:
            raise TVUnprovable(pc, "unresolved interface call")
        slot, key, returns = instr.resolved
        _do_call(st, ("calli", slot, key), arg[2], returns,
                 receiver_checked=True)
    elif op is Op.INVOKEINTERFACE_QUICK:
        ic = instr.resolved
        if ic is None:
            raise TVUnprovable(pc, "interface IC site with no cache cell")
        _do_call(st, ("calli", ic.slot, ic.key), ic.argc, ic.returns,
                 receiver_checked=True)
    elif op is Op.INVOKESPECIAL:
        if instr.resolved is None:
            raise TVUnprovable(pc, "unresolved special call")
        target_rm, returns = instr.resolved
        _do_call(st, ("calls", id(target_rm)), arg[2], returns,
                 receiver_checked=True)
    elif op is Op.INVOKESTATIC:
        if instr.resolved is None:
            raise TVUnprovable(pc, "unresolved static call")
        cell, returns = instr.resolved
        _do_call(st, ("callst", id(cell)), arg[2], returns,
                 receiver_checked=False)
    elif op is Op.INTRINSIC:
        intr = instr.resolved
        if intr is None:
            raise TVUnprovable(pc, "unresolved intrinsic")
        _do_call(st, ("intr", id(intr)), intr.nargs, intr.returns,
                 receiver_checked=False)

    # -- superinstructions ----------------------------------------------
    elif op is Op.LOAD_GETFIELD:
        obj = st.locals[arg[0]]
        st.null_check(obj)
        st.stack.append(("fld", direct_key(arg[1], pc), obj, st.heapver))
    elif op is Op.LOAD_LOAD:
        st.stack += [st.locals[arg[0]], st.locals[arg[1]]]
    elif op is Op.LOAD_CONST:
        st.stack += [st.locals[arg[0]], ("c", arg[1])]
    elif op in (Op.CMP_LT_JF, Op.CMP_EQ_JF):
        b, a = st.pop(), st.pop()
        name = "cmp_lt" if op is Op.CMP_LT_JF else "cmp_eq"
        cond = ("bin", name, a, b)
        taken, fall = st.fork(), st
        taken.conds.append((cond, False))
        taken.pc = arg
        taken.via_fall = False
        fall.conds.append((cond, True))
        fall.pc = nxt
        return [taken, fall]
    elif op is Op.INC:
        i, c = arg
        st.locals[i] = ("bin", "add", st.locals[i], ("c", c))
    elif op is Op.ITER_LT_JF:
        i, limit, target = arg
        cond = ("bin", "cmp_lt", st.locals[i], ("c", limit))
        taken, fall = st.fork(), st
        taken.conds.append((cond, False))
        taken.pc = target
        taken.via_fall = False
        fall.conds.append((cond, True))
        fall.pc = nxt
        return [taken, fall]
    elif op is Op.ADD_STORE:
        b, a = st.pop(), st.pop()
        st.locals[arg] = ("bin", "add", a, b)
    elif op is Op.ADD_PUTFIELD:
        # ``arg`` is the shared pristine PUTFIELD Instr; the interpreter
        # direct-indexes ``obj.fields[arg.resolved]`` and reads the hook
        # live off it.
        b = st.pop()
        value = ("bin", "add", st.pop(), b)
        obj = st.pop()
        _putfield(st, direct_key(arg.resolved, pc), obj, value, arg)
    elif op is Op.ADD_RETURN:
        b, a = st.pop(), st.pop()
        st.ret = ("v", ("bin", "add", a, b))
        return [st]
    elif op is Op.LOAD_RETURN:
        st.ret = ("v", st.locals[arg])
        return [st]
    elif op in (Op.LOAD_ADD, Op.LOAD_SUB, Op.LOAD_MUL):
        name = {Op.LOAD_ADD: "add", Op.LOAD_SUB: "sub",
                Op.LOAD_MUL: "mul"}[op]
        a = st.pop()
        st.stack.append(("bin", name, a, st.locals[arg]))
    elif op is Op.GETFIELD_RETURN:
        obj = st.locals[arg[0]]
        st.null_check(obj)
        st.ret = ("v", ("fld", direct_key(arg[1], pc), obj, st.heapver))
        return [st]
    elif op is Op.FIELD_INC:
        i, pf, c = arg
        obj = st.locals[i]
        key = direct_key(pf.resolved, pc)
        st.null_check(obj)
        value = ("bin", "add", ("fld", key, obj, st.heapver), ("c", c))
        st.write_heap(("putf", key, obj, value, id(pf)))
    else:
        raise TVUnprovable(pc, f"op {op.name} has no symbolic model")

    st.pc = nxt
    return [st]


# ---------------------------------------------------------------------------
# Drivers.

def step_outcomes(code: list, pc: int, depth: int,
                  max_locals: int) -> list[tuple]:
    """Outcomes of executing exactly the (possibly fused) instruction at
    ``pc`` from the generic entry state."""
    outs = []
    for s in step(code, entry_state(pc, depth, max_locals)):
        outs.append(s.outcome())
    return sorted(outs, key=repr)


def region_outcomes(code: list, start: int, end: int, depth: int,
                    max_locals: int) -> list[tuple]:
    """Outcomes of executing the pristine region ``code[start:end)``.

    Execution continues only by sequential fall-through inside the
    region; any branch — even one landing back inside ``[start, end)``
    — exits with that pc as the outcome head, mirroring how the fused
    instruction on the quick side reports its successor.  Regions are
    straight-line idioms (one conditional at most), so this terminates
    in at most ``end - start`` steps per path.
    """
    done: list[tuple] = []
    work = [entry_state(start, depth, max_locals)]
    while work:
        st = work.pop()
        for s in step(code, st):
            if s.ret is not None:
                done.append(s.outcome())
            elif s.via_fall and start <= s.pc < end:
                work.append(s)
            else:
                done.append(s.outcome())
    return sorted(done, key=repr)


def entry_depths(method: Any, code: list) -> dict[int, int]:
    """Entry stack depth for every *executed* slot of ``code``.

    The same width-aware traversal as
    :func:`repro.bytecode.verify.verify_quick`, but returning only the
    reachable slots (the verifier's list form cannot distinguish an
    unreached slot from depth zero).  Works on pristine resolved bodies
    too — every pristine op has width 1.
    """
    from repro.bytecode.verify import (
        _QUICK_COND_BRANCHES,
        _QUICK_TERMINATORS,
        stack_effect_quick,
    )

    n = len(code)
    depths: dict[int, int] = {0: 0}
    work = [0]
    while work:
        i = work.pop()
        depth = depths[i]
        instr = code[i]
        op = instr.op
        pops, pushes = stack_effect_quick(instr)
        if depth < pops:
            raise TVUnprovable(
                i, f"stack underflow (depth={depth}, pops={pops})"
            )
        out = depth - pops + pushes
        if op in _QUICK_TERMINATORS:
            successors: list[int] = []
        elif op is Op.JUMP:
            successors = [instr.arg]
        elif op in _QUICK_COND_BRANCHES:
            successors = [branch_target(instr), i + op_width(op)]
        else:
            successors = [i + op_width(op)]
        for s in successors:
            if s is None or not (0 <= s < n):
                raise TVUnprovable(i, f"bad successor {s!r}")
            if s not in depths:
                depths[s] = out
                work.append(s)
            elif depths[s] != out:
                raise TVUnprovable(
                    s,
                    f"inconsistent stack depth at join: "
                    f"{depths[s]} vs {out}",
                )
    return depths
