"""``jx lint`` — whole-program static verification of the mutation
invariants (the analysis framework's user-facing entry point).

Aggregates every client check over a *built* VM (the link state is the
ground truth: hooks installed, plans attached, bodies possibly
quickened):

* **hook-completeness / spec-safety** — every PUTFIELD/PUTSTATIC that
  can reach a state field of an attached plan carries its hook, and
  every coalesce-deferred hook's barrier-free region is proven on the
  CFG (:func:`repro.analysis.specsafety.site_findings`);
* **ctor-exit hooks** — every constructor of an instance-state mutable
  class carries the class's constructor-exit hook (Fig. 4, first
  clause);
* **quick-code hook liveness** — a quickened body must observe the same
  hooks as the pristine body: fused superinstructions carry the *shared*
  PUTFIELD :class:`~repro.bytecode.instructions.Instr`, never a copy;
* **lifetime-escape** — the plan's published lifetime constants are
  re-proven by the flow-sensitive escape analysis
  (:func:`repro.analysis.specsafety.lifetime_findings`);
* **plan downgrades** — classes the attach-time audit already had to
  detach are reported (the program runs correctly but unspecialized);
* **translation validation** (``--tv``) — every transformed code
  surface (quickened/fused bodies, shape slot layouts, OSR entries,
  shared specialized bodies) is re-proven equivalent to its pristine
  source, and every runtime enforcement downgrade is surfaced
  (:mod:`repro.analysis.tv`).

Zero findings on a shipped workload is an acceptance criterion; CI runs
``jx lint --strict`` (and ``--tv``) over all of them.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.bytecode.opcodes import Op, op_width
from repro.analysis.findings import Finding
from repro.analysis.specsafety import lifetime_findings, site_findings


def _runtime_methods(vm: Any) -> Iterable[Any]:
    for rc in vm.classes.values():
        yield from rc.own_methods.values()


def ctor_hook_findings(vm: Any) -> list[Finding]:
    """Fig. 4's first clause, verified: every constructor of an
    instance-state mutable class must carry the class's ctor-exit hook
    (a freshly constructed object must immediately get its special TIB
    when its birth state is hot)."""
    manager = getattr(vm, "mutation_manager", None)
    if manager is None:
        return []
    findings = []
    for name, mcr in manager.mcrs.items():
        if not mcr.instance_slots:
            continue
        expected = manager.ctor_hooks.get(name)
        for rm in mcr.rc.own_methods.values():
            if not rm.info.is_constructor:
                continue
            if expected is None or rm.ctor_exit_hook is not expected:
                findings.append(Finding(
                    "hook-completeness", rm.info.qualified_name, -1, name,
                    "constructor of an instance-state mutable class "
                    "lacks the class's constructor-exit hook",
                ))
    return findings


def quick_code_findings(vm: Any) -> list[Finding]:
    """Quickened bodies must observe the same state hooks as pristine
    bytecode.  For every hooked PUTFIELD at slot ``j`` of ``info.code``,
    the quickened instruction *executing* that slot must carry the
    shared ``Instr`` object (hooks are read live off it): either slot
    ``j`` itself holds it, or the covering superinstruction
    (ADD_PUTFIELD / FIELD_INC) packs it in its arg."""
    findings = []
    for rm in _runtime_methods(vm):
        qc = rm.quick_code
        if not qc:
            continue
        code = rm.info.code
        hooked = [
            j for j, ins in enumerate(code)
            if ins.op is Op.PUTFIELD and ins.state_hook is not None
        ]
        if not hooked:
            continue
        start_of: dict[int, int] = {}
        i, n = 0, len(qc)
        while i < n:
            width = op_width(qc[i].op)
            for k in range(i, min(i + width, n)):
                start_of[k] = i
            i += width
        for j in hooked:
            start = start_of.get(j, j)
            q = qc[start]
            live = (
                q is code[j]
                or (q.op is Op.ADD_PUTFIELD and q.arg is code[j])
                or (q.op is Op.FIELD_INC and q.arg[1] is code[j])
            )
            if not live:
                cls_name, field_name = code[j].arg
                findings.append(Finding(
                    "quick-code", rm.info.qualified_name, j,
                    f"{cls_name}.{field_name}",
                    "quickened body does not execute the hooked "
                    "PUTFIELD instruction (hook not live in quick code)",
                ))
    return findings


def downgrade_findings(vm: Any) -> list[Finding]:
    manager = getattr(vm, "mutation_manager", None)
    if manager is None:
        return []
    return [
        Finding(
            "spec-safety", name, -1, name,
            f"plan downgraded at attach by the specialization-safety "
            f"audit ({len(reasons)} finding(s)); the class runs "
            f"unspecialized",
        )
        for name, reasons in sorted(manager.downgraded_classes.items())
    ]


def lint_vm(vm: Any, *, tv: bool = False) -> list[Finding]:
    """All checks over a built VM; empty list means the mutation
    invariants are statically proven for this link state.  With ``tv``,
    the translation validator re-proves every transformed code surface
    as well (:func:`repro.analysis.tv.tv_findings`)."""
    findings = site_findings(vm)
    findings += ctor_hook_findings(vm)
    findings += quick_code_findings(vm)
    findings += lifetime_findings(vm)
    findings += downgrade_findings(vm)
    if tv:
        from repro.analysis.tv import tv_findings

        findings += tv_findings(vm)
    return findings


def lint_source(
    source: str,
    *,
    filename: str = "<lint>",
    entry_class: str = "Main",
    entry_method: str = "main",
    plan: Any = None,
    mutate: bool = True,
    tv: bool = False,
) -> list[Finding]:
    """Compile ``source``, build its mutation plan (unless given), link
    a VM — installing hooks exactly as a real run would — and lint it."""
    from repro.lang import compile_source
    from repro.mutation import build_mutation_plan
    from repro.vm.runtime import VM

    unit = compile_source(
        source, filename=filename,
        entry_class=entry_class, entry_method=entry_method,
    )
    if plan is None and mutate:
        plan = build_mutation_plan(source, entry_class=entry_class)
    vm = VM(unit, mutation_plan=plan)
    return lint_vm(vm, tv=tv)


def lint_workload(spec: Any, *, tv: bool = False) -> list[Finding]:
    """Lint one registered workload under its production configuration:
    the plan comes from the profiling source (as ``jx run``/``compare``
    build it) and the linted program is the bench-scale source."""
    from repro.lang import compile_source
    from repro.mutation import build_mutation_plan
    from repro.vm.runtime import VM

    plan = build_mutation_plan(
        spec.profile_source(), entry_class=spec.entry_class
    )
    unit = compile_source(
        spec.source(spec.bench_scale),
        filename=f"<{spec.name}>",
        entry_class=spec.entry_class,
        entry_method=spec.entry_method,
    )
    vm = VM(unit, mutation_plan=plan)
    return lint_vm(vm, tv=tv)
