"""A generic worklist fixed-point dataflow engine.

The engine is deliberately graph-shaped rather than bytecode-shaped: it
takes explicit successor lists (usually from
:class:`repro.analysis.cfg.InstrCFG`, but the IR block graph or any
other digraph works), a join, and a per-node transfer function, and
iterates to a fixed point.  Clients configure the lattice entirely
through ``join``/``transfer``/``top`` — booleans with AND (must
analyses), frozensets with union (may analyses), or arbitrary tuples.

Directions:

* :func:`solve_forward` — ``in[i] = join(out[p] for p in preds(i))``,
  ``out[i] = transfer(i, in[i])``.  Returns the *in* states.
* :func:`solve_backward` — ``out[i] = join(in[s] for s in succs(i))``,
  ``in[i] = transfer(i, out[i])``.  Returns the *in* states.

Termination requires the usual conditions: a join that only moves down
(or up) a finite lattice and a monotone transfer.  All shipped clients
use finite tag sets or booleans.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Mapping, Sequence

Transfer = Callable[[int, Any], Any]
Join = Callable[[Any, Any], Any]


def _invert(succs: Sequence[Sequence[int]]) -> list[list[int]]:
    preds: list[list[int]] = [[] for _ in succs]
    for i, out in enumerate(succs):
        for s in out:
            preds[s].append(i)
    return preds


def solve_forward(
    succs: Sequence[Sequence[int]],
    transfer: Transfer,
    join: Join,
    boundary: Mapping[int, Any],
) -> list[Any]:
    """Forward fixed point; returns the entry state of every node.

    ``boundary`` seeds the entry states (typically ``{0: entry_state}``).
    Nodes never reached from a boundary node keep state ``None``
    (unreachable ⊤); ``join`` is only called on two non-``None`` states.
    """
    n = len(succs)
    in_states: list[Any] = [None] * n
    for node, state in boundary.items():
        in_states[node] = state
    work = deque(boundary)
    queued = set(work)
    while work:
        i = work.popleft()
        queued.discard(i)
        out = transfer(i, in_states[i])
        for s in succs[i]:
            merged = out if in_states[s] is None else join(in_states[s], out)
            if merged != in_states[s]:
                in_states[s] = merged
                if s not in queued:
                    queued.add(s)
                    work.append(s)
    return in_states


def solve_backward(
    succs: Sequence[Sequence[int]],
    transfer: Transfer,
    join: Join,
    top: Any,
    boundary: Mapping[int, Any],
) -> list[Any]:
    """Backward fixed point; returns the entry state of every node.

    All nodes start at ``top`` (the optimistic value); ``boundary``
    pins the states of exit-like nodes.  ``transfer(i, out)`` maps a
    node's joined successor state to its entry state.
    """
    n = len(succs)
    preds = _invert(succs)
    in_states: list[Any] = [top] * n
    for node, state in boundary.items():
        in_states[node] = state
    work = deque(range(n))
    queued = set(work)
    while work:
        i = work.popleft()
        queued.discard(i)
        if i in boundary:
            continue
        out = top
        for s in succs[i]:
            out = join(out, in_states[s])
        new = transfer(i, out)
        if new != in_states[i]:
            in_states[i] = new
            for p in preds[i]:
                if p not in queued:
                    queued.add(p)
                    work.append(p)
    return in_states
