"""repro.analysis — CFG/dataflow static-analysis framework.

A whole-program analysis layer over the bytecode IR:

* :mod:`.cfg` — instruction-level CFGs with branch and exception edges
  (pristine and quickened bodies);
* :mod:`.dataflow` — a generic forward/backward worklist engine with
  configurable lattices;
* :mod:`.escape` — flow-sensitive escape analysis for private reference
  fields (backs the lifetime-constant analysis);
* :mod:`.specsafety` — hook-completeness and specialization-safety
  proofs (also the fact source for swap coalescing and the attach-time
  plan audit);
* :mod:`.estimates` — the optimizer's budget-gate benefit estimates;
* :mod:`.liveness` — per-instruction live-local sets (the OSR
  frame-mapping compensation sets);
* :mod:`.symstate` — the symbolic lockstep machine (term-algebra
  abstract interpreter over pristine and quickened bytecode);
* :mod:`.tv` — translation validation of every transformed code
  surface (quicken/fusion, shapes, OSR, spec-share) plus the
  deopt-guard safety lint; unprovable bodies are downgraded, not run;
* :mod:`.lint` — the ``jx lint`` aggregation over a built VM.
"""

from repro.analysis.cfg import MAY_RAISE, InstrCFG, may_raise
from repro.analysis.dataflow import solve_backward, solve_forward
from repro.analysis.escape import RefFieldFacts, analyze_ref_fields
from repro.analysis.estimates import bounds_may_help, cse_may_help
from repro.analysis.findings import Finding
from repro.analysis.liveness import live_locals, local_effects
from repro.analysis.lint import (
    ctor_hook_findings,
    lint_source,
    lint_vm,
    lint_workload,
    quick_code_findings,
)
from repro.analysis.specsafety import (
    TIB_TRANSPARENT,
    audit_attached_plans,
    deferral_is_safe,
    lifetime_findings,
    must_reach_states,
    site_findings,
)
from repro.analysis.symstate import (
    TVUnprovable,
    entry_depths,
    region_outcomes,
    step_outcomes,
)
from repro.analysis.tv import (
    deopt_guard_findings,
    tv_findings,
    tv_osr_findings,
    tv_quicken_findings,
    tv_shapes_findings,
    tv_share_findings,
    validate_quick_method,
)

__all__ = [
    "MAY_RAISE",
    "InstrCFG",
    "may_raise",
    "solve_backward",
    "solve_forward",
    "RefFieldFacts",
    "analyze_ref_fields",
    "bounds_may_help",
    "cse_may_help",
    "Finding",
    "live_locals",
    "local_effects",
    "ctor_hook_findings",
    "lint_source",
    "lint_vm",
    "lint_workload",
    "quick_code_findings",
    "TIB_TRANSPARENT",
    "audit_attached_plans",
    "deferral_is_safe",
    "lifetime_findings",
    "must_reach_states",
    "site_findings",
    "TVUnprovable",
    "entry_depths",
    "region_outcomes",
    "step_outcomes",
    "deopt_guard_findings",
    "tv_findings",
    "tv_osr_findings",
    "tv_quicken_findings",
    "tv_shapes_findings",
    "tv_share_findings",
    "validate_quick_method",
]
