"""Flow-sensitive escape analysis for private reference fields.

This is the CFG-backed replacement for the syntactic collector in
:mod:`repro.mutation.lifetime` (paper §4's private-reference-field
analysis).  The syntactic walker resets its abstract stack to *unknown*
at every block leader, so any candidate-field value that crosses a
branch join — e.g. a ``g`` sitting under a ternary sub-expression used
as a call argument — silently loses its identity and its escape is
missed.  Here the same per-value facts are carried through joins by a
forward dataflow over :class:`repro.analysis.cfg.InstrCFG`.

Abstract values are *provenance tag sets* (one frozenset per stack slot
and local slot):

* ``("other",)`` — unknown provenance (always kept explicit so a join
  of *known* and *unknown* stays distinguishable from *known*);
* ``("this",)`` — the receiver;
* ``("g", key)`` — a load of candidate private reference field ``key``;
* ``("newraw", cls)`` — an allocated, not-yet-constructed object;
* ``("new", cls, ctor_key)`` — a constructed ``new cls(...)`` via one
  specific constructor.

The join is pointwise union, the tag domain is finite, and transfers
only add tags or rebuild slots, so the fixed point exists.  Only normal
CFG edges are followed: Jx has no catch handlers, so an exception
unwinds the method and performs no further program actions.

Escape/assignment effects fire as (monotone, idempotent) side effects
of the transfer function, mirroring ``_RefFieldCollector`` exactly:
storing a ``g`` value into a field, static, array or returning it
escapes it; passing it as a call argument escapes it except in the
receiver position of a virtual/interface dispatch; a candidate-field
store whose value carries any non-``new`` tag disqualifies the field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.bytecode.classfile import MethodInfo, ProgramUnit
from repro.bytecode.opcodes import CALL_OPS, OP_INFO, Op
from repro.analysis.cfg import InstrCFG
from repro.analysis.dataflow import solve_forward
from repro.mutation.stacksim import _call_returns

OTHER_TAG = ("other",)
THIS_TAG = ("this",)

_UNKNOWN = frozenset({OTHER_TAG})


@dataclass
class RefFieldFacts:
    """Escape facts for one candidate private reference field; shape-
    compatible with ``lifetime._RefFieldFacts``."""

    #: (target class, ctor key) per ``new`` assignment seen.
    assignments: list[tuple[str, str]] = field(default_factory=list)
    escaped: bool = False
    modified_fields: set[str] = field(default_factory=set)


def _field_key(unit: ProgramUnit, cls_name: str, field_name: str) -> str:
    finfo = unit.lookup_field(cls_name, field_name)
    if finfo is None:
        return f"{cls_name}.{field_name}"
    return f"{finfo.declaring_class}.{finfo.name}"


def _g_keys(tags: frozenset) -> list[str]:
    return [t[1] for t in tags if t[0] == "g"]


class _FlowWalker:
    """Per-method forward dataflow updating shared :class:`RefFieldFacts`."""

    def __init__(
        self,
        unit: ProgramUnit,
        method: MethodInfo,
        facts: dict[str, RefFieldFacts],
    ) -> None:
        self.unit = unit
        self.method = method
        self.facts = facts
        self.code = method.code
        self.call_returns = {
            i: _call_returns(instr, unit)
            for i, instr in enumerate(self.code)
            if instr.op in CALL_OPS or instr.op is Op.INTRINSIC
        }

    def entry_state(self) -> tuple:
        m = self.method
        nlocals = max(m.max_locals, m.num_args)
        locals_ = [_UNKNOWN] * nlocals
        if not m.is_static and nlocals:
            locals_[0] = frozenset({THIS_TAG})
        return ((), tuple(locals_))

    def _escape(self, tags: frozenset) -> None:
        for key in _g_keys(tags):
            self.facts[key].escaped = True

    def transfer(self, i: int, state: tuple) -> tuple:
        if i >= len(self.code):
            return state  # the CFG's synthetic EXIT node
        stack, locals_ = list(state[0]), state[1]
        instr = self.code[i]
        op = instr.op
        facts = self.facts
        if op is Op.CONST:
            stack.append(_UNKNOWN)
        elif op is Op.LOAD:
            stack.append(locals_[instr.arg])
        elif op is Op.STORE:
            value = stack.pop()
            loc = list(locals_)
            loc[instr.arg] = value  # strong update: kills the old tags
            locals_ = tuple(loc)
        elif op is Op.GETFIELD:
            stack.pop()
            key = _field_key(self.unit, *instr.arg)
            stack.append(
                frozenset({("g", key)}) if key in facts else _UNKNOWN
            )
        elif op is Op.PUTFIELD:
            value = stack.pop()
            stack.pop()
            key = _field_key(self.unit, *instr.arg)
            for f in facts.values():
                f.modified_fields.add(key)
            if key in facts:
                for t in value:
                    if t[0] == "new":
                        entry = (t[1], t[2])
                        if entry not in facts[key].assignments:
                            facts[key].assignments.append(entry)
                    else:
                        facts[key].escaped = True  # possibly non-`new`
            self._escape(value)  # storing g into any field escapes it
        elif op is Op.PUTSTATIC:
            self._escape(stack.pop())
        elif op is Op.NEW:
            stack.append(frozenset({("newraw", instr.arg)}))
        elif op in CALL_OPS or op is Op.INTRINSIC:
            if op is Op.INTRINSIC:
                _, argc = instr.arg
                cls_name, key = None, ""
            else:
                cls_name, key, argc = instr.arg
            args = stack[-argc:] if argc else []
            if argc:
                del stack[-argc:]
            receiver_ok = op in (Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE)
            for pos, arg in enumerate(args):
                if pos == 0 and receiver_ok:
                    continue  # calling a method *on* g is the whole point
                self._escape(arg)
            if op is Op.INVOKESPECIAL and key.startswith("<init>"):
                if stack and args and any(
                    t[0] == "newraw" for t in args[0]
                ):
                    stack[-1] = frozenset(
                        ("new", cls_name, key) if t[0] == "newraw" else t
                        for t in stack[-1]
                    )
            if self.call_returns.get(i, True):
                stack.append(_UNKNOWN)
        elif op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
            stack.pop()
        elif op is Op.JUMP or op is Op.RETURN_VOID or op is Op.NOP:
            pass
        elif op is Op.RETURN:
            self._escape(stack.pop())
        elif op is Op.ASTORE:
            value = stack.pop()
            stack.pop()
            stack.pop()
            self._escape(value)
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op is Op.CHECKCAST:
            pass  # same object out as in: tags survive the cast
        else:
            info = OP_INFO[op]
            if info.pops:
                del stack[-info.pops:]
            for _ in range(info.pushes or 0):
                stack.append(_UNKNOWN)
        return (tuple(stack), locals_)

    def run(self) -> None:
        cfg = InstrCFG(self.code)
        solve_forward(
            cfg.succs,
            self.transfer,
            join=_join,
            boundary={0: self.entry_state()},
        )


def _join(a: tuple, b: tuple) -> tuple:
    astack, alocals = a
    bstack, blocals = b
    # Verified bytecode guarantees equal stack depth at every join.
    stack = tuple(x | y for x, y in zip(astack, bstack))
    locals_ = tuple(x | y for x, y in zip(alocals, blocals))
    return (stack, locals_)


def analyze_ref_fields(
    unit: ProgramUnit, cls: Any, candidate_keys: Iterable[str]
) -> dict[str, RefFieldFacts]:
    """Escape facts for ``cls``'s candidate private reference fields,
    from a flow-sensitive walk of every method body of ``cls``."""
    facts = {key: RefFieldFacts() for key in candidate_keys}
    if not facts:
        return facts
    for method in cls.methods.values():
        if method.is_abstract or not method.code:
            continue
        _FlowWalker(unit, method, facts).run()
    return facts
