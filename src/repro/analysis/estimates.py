"""Benefit estimates backing ``OptConfig.budget_gate``.

These are *sound necessary conditions* for an optimization pass to fire,
computed in one scan so the gate costs less than the pass it skips.
Soundness contract (pinned by ``tests/test_opt_budget.py``): whenever an
estimate says "cannot help", running the pass must return 0 changes —
gated results are bit-identical to ungated ones.

The original estimates counted *op kinds* per block (two ``getfield``s
of different fields still un-gated CSE).  These count the passes' actual
dedup keys instead:

* :func:`cse_may_help` — some block repeats a ``getfield`` (base, slot)
  key, a ``getstatic`` slot, or an ``arraylen`` operand key.  CSE only
  ever rewrites the *second* load of an identical key, and its
  invalidation rules (calls, stores, register redefinition) can only
  shrink the reuse table — so no repeated key ⇒ no rewrite, while the
  coarse count would un-gate on any two unrelated loads.
* :func:`bounds_may_help` — some block repeats an ``aload``/``astore``
  (array, index) operand-key pair; same argument against the
  bounds-check reuse table.
"""

from __future__ import annotations

from typing import Any

from repro.opt.cse import _operand_key


def cse_may_help(fn: Any) -> bool:
    """Necessary condition for ``local_cse`` to fire: some block repeats
    one of its dedup keys."""
    for block in fn.block_order():
        field_keys: set = set()
        static_slots: set = set()
        len_keys: set = set()
        for instr in block.instrs:
            op = instr.op
            if op == "getfield":
                key = (_operand_key(instr.args[0]), instr.extra.slot)
                if key in field_keys:
                    return True
                field_keys.add(key)
            elif op == "getstatic":
                if instr.extra.slot in static_slots:
                    return True
                static_slots.add(instr.extra.slot)
            elif op == "arraylen":
                key = _operand_key(instr.args[0])
                if key in len_keys:
                    return True
                len_keys.add(key)
    return False


def bounds_may_help(fn: Any) -> bool:
    """Necessary condition for bounds-check elimination to fire: some
    block repeats an (array, index) access pair."""
    for block in fn.block_order():
        seen: set = set()
        for instr in block.instrs:
            if instr.op in ("aload", "astore"):
                key = (
                    _operand_key(instr.args[0]),
                    _operand_key(instr.args[1]),
                )
                if key in seen:
                    return True
                seen.add(key)
    return False
