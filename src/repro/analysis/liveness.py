"""Live-local analysis — the OSR frame-mapping client.

A backward may-liveness over the instruction-level CFG
(:class:`~repro.analysis.cfg.InstrCFG`): a local slot is *live-in* at an
instruction when some path from it reads the slot before overwriting it.
On-stack replacement (:mod:`repro.vm.osr`) uses the per-instruction
live-in sets as its compensation sets — a captured frame only needs the
live slots transferred; everything else materializes as ``None``
(exactly the interpreter's initial locals padding), which is what makes
capture → materialize → resume reproduce the uninterrupted frame.

Only *normal* control flow contributes: an instruction that raises
unwinds the whole method (Jx has no catch handlers), so no local is read
afterwards.

Works on pristine ``info.code`` and quickened ``rm.quick_code`` bodies;
quickening is slot-preserving, so the pristine sets are valid at any pc
shared by both encodings (which is all of them).
"""

from __future__ import annotations

from repro.analysis.cfg import InstrCFG
from repro.analysis.dataflow import solve_backward
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op


def local_effects(instr: Instr) -> tuple[frozenset[int], frozenset[int]]:
    """``(uses, defs)`` — local slots read / written by one instruction.

    Covers the pristine ops (``LOAD``/``STORE`` are the only locals
    accessors) and every quickened superinstruction that folds a locals
    access into a fused form.
    """
    op = instr.op
    arg = instr.arg
    none: frozenset[int] = frozenset()
    if op is Op.LOAD or op is Op.LOAD_RETURN:
        return frozenset({arg}), none
    if op is Op.STORE or op is Op.ADD_STORE:
        return none, frozenset({arg})
    if op in (Op.LOAD_ADD, Op.LOAD_SUB, Op.LOAD_MUL):
        return frozenset({arg}), none
    if op is Op.LOAD_LOAD:
        return frozenset({arg[0], arg[1]}), none
    if op in (Op.LOAD_CONST, Op.LOAD_GETFIELD, Op.ITER_LT_JF,
              Op.FIELD_INC, Op.GETFIELD_RETURN):
        return frozenset({arg[0]}), none
    if op is Op.INC:
        slot = frozenset({arg[0]})
        return slot, slot
    return none, none


def live_locals(
    code: list[Instr], *, quick: bool = False
) -> list[frozenset[int]]:
    """Per-instruction live-in local sets for one code array.

    ``result[pc]`` is the set of local slots whose values an execution
    resumed at ``pc`` may still read.  Computed as the least fixed point
    of the classic backward equations (``in = uses ∪ (out − defs)``)
    over the normal-flow CFG.
    """
    cfg = InstrCFG(code, quick=quick)
    effects = [local_effects(instr) for instr in code]

    def transfer(i: int, out: frozenset[int]) -> frozenset[int]:
        uses, defs = effects[i]
        return uses | (out - defs)

    states = solve_backward(
        succs=cfg.succs,
        transfer=transfer,
        join=lambda a, b: a | b,
        top=frozenset(),
        boundary={cfg.exit: frozenset()},
    )
    return states[: len(code)]
