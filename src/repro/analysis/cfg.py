"""Instruction-level control-flow graphs over Jx bytecode.

Unlike :class:`repro.opt.bytecode_cfg.BytecodeCFG` (block-level, built
for the IR lowering and the EQ1 loop-depth weighting), this CFG is
**instruction-granular** and carries the two edge kinds the static
checks care about:

* **normal edges** — fall-through and branch successors, with every
  terminator flowing into a synthetic EXIT node;
* **exception edges** — from each potentially-raising instruction to
  EXIT.  Jx has no catch handlers, so an exception unconditionally
  unwinds the method; modelling it as an edge to EXIT is exact.

Both pristine ``info.code`` and quickened ``rm.quick_code`` bodies are
supported: quickened superinstructions cover several slots (widths from
:data:`repro.bytecode.opcodes.OP_WIDTH`) and the fused compare-jumps /
loop idioms carry their targets in packed args
(:func:`repro.bytecode.opcodes.branch_target`).  Fusion is
slot-preserving, so covered slots still hold valid instructions and a
branch landing inside a fused region is a legal CFG node.
"""

from __future__ import annotations

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import (
    CALL_OPS,
    Op,
    branch_target,
    op_width,
)

#: Instructions that can raise at runtime (and therefore carry an
#: implicit edge to EXIT): null dereferences (field access, arrays,
#: dispatch), divide-by-zero / overflow arithmetic, failed casts,
#: negative array sizes, and anything that runs other code.  This is the
#: complement of the discipline behind ``coalesce.SAFE_BETWEEN``.
MAY_RAISE = frozenset({
    Op.IDIV, Op.IREM, Op.D2I,
    Op.GETFIELD, Op.PUTFIELD,
    Op.ALOAD, Op.ASTORE, Op.ARRAYLEN, Op.NEWARRAY,
    Op.CHECKCAST,
    Op.INTRINSIC,
    *CALL_OPS,
    # Quickened forms of the above.
    Op.GETFIELD_QUICK, Op.INVOKEVIRTUAL_QUICK, Op.INVOKEINTERFACE_QUICK,
    Op.LOAD_GETFIELD, Op.ADD_PUTFIELD, Op.FIELD_INC, Op.GETFIELD_RETURN,
})

#: Opcodes that end the method (flow straight to EXIT).
_TERMINATORS = frozenset({
    Op.RETURN, Op.RETURN_VOID,
    Op.ADD_RETURN, Op.LOAD_RETURN, Op.GETFIELD_RETURN,
})

#: Conditional branches: both the target and the fall-through survive.
_COND_BRANCHES = frozenset({
    Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE,
    Op.CMP_LT_JF, Op.CMP_EQ_JF, Op.ITER_LT_JF,
})


def may_raise(instr: Instr) -> bool:
    """Whether ``instr`` can raise (implicit exception edge to EXIT)."""
    return instr.op in MAY_RAISE


class InstrCFG:
    """Instruction-level CFG of one code array.

    Nodes are instruction indices ``0..n-1`` plus the synthetic
    :attr:`exit` node ``n``.  :attr:`succs` holds the *normal*
    control-flow successors; exception flow is exposed separately via
    :meth:`raises` / :meth:`all_succs` so analyses can opt in (escape
    analysis only follows normal flow — an unwinding method performs no
    further program actions — while region checks must treat a potential
    raise as leaving the region).
    """

    def __init__(self, code: list[Instr], *, quick: bool = False) -> None:
        self.code = code
        self.quick = quick
        n = len(code)
        self.exit = n
        self.succs: list[list[int]] = [[] for _ in range(n + 1)]
        self.preds: list[list[int]] = [[] for _ in range(n + 1)]
        for i, instr in enumerate(code):
            op = instr.op
            out: list[int] = []
            if op in _TERMINATORS:
                out = [self.exit]
            elif op is Op.JUMP:
                out = [instr.arg]
            elif op in _COND_BRANCHES:
                fall = i + (op_width(op) if quick else 1)
                target = branch_target(instr)
                out = [fall if fall < n else self.exit, target]
            else:
                fall = i + (op_width(op) if quick else 1)
                out = [fall if fall < n else self.exit]
            self.succs[i] = out
            for s in out:
                self.preds[s].append(i)

    def __len__(self) -> int:
        return len(self.code) + 1  # including EXIT

    def raises(self, i: int) -> bool:
        """Whether node ``i`` has an exception edge to EXIT."""
        return i != self.exit and may_raise(self.code[i])

    def all_succs(self, i: int) -> list[int]:
        """Normal successors plus the exception edge, when present."""
        if self.raises(i) and self.exit not in self.succs[i]:
            return self.succs[i] + [self.exit]
        return self.succs[i]

    def forward_succs(self, i: int) -> list[int]:
        """Normal successors with every backward edge redirected to
        EXIT.  The resulting graph is acyclic, which makes "must reach X
        before Y" obligations well-founded (no two instructions can
        justify each other around a loop)."""
        return [s if s > i else self.exit for s in self.succs[i]]
