"""The finding record shared by every ``jx lint`` check."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One statically-detected violation of a mutation invariant."""

    #: Which client check produced it: ``hook-completeness``,
    #: ``spec-safety``, ``lifetime-escape``, or ``quick-code``.
    check: str
    #: Qualified method name (or class name for class-level findings).
    where: str
    #: Instruction index within ``where`` (-1 for non-site findings).
    index: int
    #: The state field / plan entity involved, e.g. ``"Employee.kind"``.
    subject: str
    message: str

    def format(self) -> str:
        site = f" @{self.index}" if self.index >= 0 else ""
        return (f"[{self.check}] {self.where}{site}: "
                f"{self.subject}: {self.message}")
