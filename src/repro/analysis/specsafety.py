"""Specialization-safety audit (``jx lint`` client 3).

Special-TIB code is selected *through* the TIB, so it is only sound if
no static path stores to a bound state field and then reaches anything
that can observe the object — a dispatch, a call, a raise, or the
method exit — without an intervening swap hook re-evaluating the TIB.

Hooked writes satisfy this trivially: the hook runs at the write.  The
interesting case is a **coalesce-deferred** write, whose hook only
counts the skipped swap; its safety obligation is exactly the
path property above, and this module proves it on the instruction CFG:

    a deferred store ``D`` to receiver local ``r`` is safe iff every
    path leaving ``D`` reaches another hooked store to ``r`` while
    crossing only TIB-transparent instructions and no redefinition of
    ``r`` — where loop back-edges count as leaving the region, so
    deferral obligations are well-founded (two stores in a loop cannot
    justify each other around the back edge).

The same fixed-point fact is what :mod:`repro.mutation.coalesce` uses
to *install* deferred hooks, which is why its conservative linear-scan
barriers became CFG facts: any branch used to end a region; now only
paths that actually escape the region do.

:func:`audit_attached_plans` groups violations per mutable-class plan
so :class:`~repro.mutation.manager.MutationManager` can downgrade a
violating class (drop its special TIBs) instead of running unsound
specialized code; :func:`lifetime_findings` re-proves the plan's
lifetime constants with the CFG escape analysis.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.analysis.cfg import InstrCFG
from repro.analysis.dataflow import solve_backward
from repro.analysis.findings import Finding
from repro.mutation.stacksim import StackEvent, SymValue, walk_method

#: Opcodes that can execute inside a stale-TIB window: non-raising,
#: no control transfer, no dispatch, no field store.  This is the
#: single source of truth for region transparency —
#: ``coalesce.SAFE_BETWEEN`` aliases it.
TIB_TRANSPARENT = frozenset({
    Op.CONST, Op.LOAD, Op.STORE, Op.POP, Op.DUP, Op.SWAP, Op.NOP,
    Op.ADD, Op.SUB, Op.MUL, Op.FDIV, Op.NEG, Op.I2D,
    Op.SHL, Op.SHR, Op.BAND, Op.BOR, Op.BXOR,
    Op.CMP_LT, Op.CMP_LE, Op.CMP_GT, Op.CMP_GE, Op.CMP_EQ, Op.CMP_NE,
    Op.NOT, Op.CONCAT, Op.GETSTATIC, Op.INSTANCEOF,
})

#: Branches transfer control but execute nothing observable; a stale
#: TIB may cross them as long as *every* outgoing path stays safe.
_PURE_BRANCHES = frozenset({Op.JUMP, Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE})


class HookSiteRecorder(StackEvent):
    """Maps each PUTFIELD carrying one of ``hooks`` to its receiver
    local (via the abstract stack simulation); hooked writes whose
    receiver is not a plain local land in :attr:`opaque`."""

    def __init__(self, hooks: Iterable[Any]) -> None:
        self.hooks = [h for h in hooks if h is not None]
        #: instruction index -> receiver local slot
        self.sites: dict[int, int] = {}
        #: hooked writes with non-local receiver shapes
        self.opaque: set[int] = set()

    def on_putfield(
        self, index: int, instr: Instr, receiver: SymValue, value: SymValue
    ) -> None:
        if not any(instr.state_hook is h for h in self.hooks):
            return
        kind = receiver.kind
        if kind == ("this",):
            self.sites[index] = 0
        elif kind[0] == "local":
            self.sites[index] = kind[1]
        else:
            self.opaque.add(index)


def must_reach_states(
    method: MethodInfo,
    receiver_local: int,
    hooked_sites: dict[int, int],
) -> list[bool]:
    """Per-instruction fact: "execution starting here definitely runs a
    hooked store to ``receiver_local`` before anything can observe the
    object's TIB".

    A backward *must* analysis (boolean lattice, AND join) over the
    forward-only CFG: back edges are redirected to EXIT (= False), so
    the greatest fixed point is reached on an acyclic graph and a
    deferred write can only be justified by strictly-later stores.
    """
    code = method.code
    cfg = InstrCFG(code)
    succs = [cfg.forward_succs(i) for i in range(len(code))]
    succs.append([])  # EXIT

    def transfer(i: int, out: bool) -> bool:
        if hooked_sites.get(i) == receiver_local:
            return True  # the hooked store itself re-evaluates (or is
            #              a deferred store with its own obligation)
        instr = code[i]
        op = instr.op
        if op in _PURE_BRANCHES:
            return out
        if op not in TIB_TRANSPARENT:
            return False  # raise / call / dispatch / store / exit
        if op is Op.STORE and instr.arg == receiver_local:
            return False  # later stores would target a different object
        return out

    return solve_backward(
        succs, transfer, join=lambda a, b: a and b, top=True,
        boundary={cfg.exit: False},
    )


def deferral_is_safe(
    method: MethodInfo,
    site: int,
    receiver_local: int,
    hooked_sites: dict[int, int],
    states: list[bool] | None = None,
) -> bool:
    """Whether the hooked store at ``site`` may defer its
    re-evaluation: every path leaving it must reach a later hooked
    store to the same receiver local before any barrier."""
    if states is None:
        states = must_reach_states(method, receiver_local, hooked_sites)
    cfg = InstrCFG(method.code)
    succs = cfg.forward_succs(site)
    return bool(succs) and all(states[s] for s in succs)


# ---------------------------------------------------------------------------
# Site-level findings over an attached VM
# ---------------------------------------------------------------------------

def _plan_key_sets(manager: Any) -> tuple[dict, dict]:
    """(instance field key -> class names, static field key -> class
    names) over the *attached* plans (downgraded classes excluded)."""
    instance: dict[str, list[str]] = {}
    static: dict[str, list[str]] = {}
    for name, mcr in manager.mcrs.items():
        for spec in mcr.plan.instance_fields:
            instance.setdefault(spec.key, []).append(name)
        for spec in mcr.plan.static_fields:
            static.setdefault(spec.key, []).append(name)
    return instance, static


def site_findings(vm: Any, manager: Any = None) -> list[Finding]:
    """Hook-completeness + deferral-safety findings for every
    PUTFIELD/PUTSTATIC that resolves to a state field of an attached
    plan.  Check names: ``hook-completeness`` for missing/wrong hooks,
    ``spec-safety`` for deferred hooks whose barrier-free region the
    CFG cannot prove."""
    if manager is None:
        manager = getattr(vm, "mutation_manager", None)
    if manager is None:
        return []
    unit = vm.unit
    instance_keys, static_keys = _plan_key_sets(manager)
    if not instance_keys and not static_keys:
        return []
    instance_hook = manager._instance_hook
    deferred_hook = manager._deferred_hook
    findings: list[Finding] = []
    for method in unit.all_methods():
        if method.is_abstract or not method.code:
            continue
        recorder: HookSiteRecorder | None = None
        states_by_local: dict[int, list[bool]] = {}
        for i, instr in enumerate(method.code):
            if instr.op is Op.PUTFIELD:
                cls_name, field_name = instr.arg
                finfo = unit.lookup_field(cls_name, field_name)
                if finfo is None:
                    continue  # cannot be a state field (plan resolves)
                key = f"{finfo.declaring_class}.{finfo.name}"
                if key not in instance_keys:
                    continue
                hook = instr.state_hook
                if hook is None:
                    findings.append(Finding(
                        "hook-completeness", method.qualified_name, i, key,
                        "state-field write carries no swap hook; this "
                        "store would silently skip TIB re-evaluation",
                    ))
                    continue
                if hook is deferred_hook and deferred_hook is not None:
                    if recorder is None:
                        recorder = HookSiteRecorder(
                            [instance_hook, deferred_hook]
                        )
                        walk_method(method, recorder, unit=unit)
                    local = recorder.sites.get(i)
                    if local is None:
                        findings.append(Finding(
                            "spec-safety", method.qualified_name, i, key,
                            "deferred hook on a write whose receiver is "
                            "not a provably-constant local",
                        ))
                        continue
                    states = states_by_local.get(local)
                    if states is None:
                        states = must_reach_states(
                            method, local, recorder.sites
                        )
                        states_by_local[local] = states
                    if not deferral_is_safe(
                        method, i, local, recorder.sites, states
                    ):
                        findings.append(Finding(
                            "spec-safety", method.qualified_name, i, key,
                            "a path from this deferred state write "
                            "reaches a barrier before the region's "
                            "re-evaluating write (stale TIB observable)",
                        ))
                elif hook is not instance_hook:
                    findings.append(Finding(
                        "hook-completeness", method.qualified_name, i, key,
                        "state-field write carries an unrecognized hook",
                    ))
            elif instr.op is Op.PUTSTATIC:
                cls_name, field_name = instr.arg
                finfo = unit.lookup_field(cls_name, field_name)
                if finfo is None:
                    continue
                key = f"{finfo.declaring_class}.{finfo.name}"
                if key not in static_keys:
                    continue
                if instr.state_hook is not manager.static_hooks.get(key):
                    findings.append(Finding(
                        "hook-completeness", method.qualified_name, i, key,
                        "static state-field write does not carry its "
                        "class's static swap hook",
                    ))
    return findings


def audit_attached_plans(
    manager: Any, findings: list[Finding] | None = None
) -> dict[str, list[Finding]]:
    """Group site findings by the mutable-class plan they violate.

    Any class with at least one finding runs unsound specialized code
    if left attached; the manager downgrades it (see
    ``MutationManager._audit_hooks``)."""
    if findings is None:
        findings = site_findings(manager.vm, manager)
    instance_keys, static_keys = _plan_key_sets(manager)
    owners: dict[str, list[str]] = {}
    for key, names in instance_keys.items():
        owners.setdefault(key, []).extend(names)
    for key, names in static_keys.items():
        owners.setdefault(key, []).extend(names)
    per_class: dict[str, list[Finding]] = {}
    for f in findings:
        for name in owners.get(f.subject, ()):
            per_class.setdefault(name, []).append(f)
    return per_class


# ---------------------------------------------------------------------------
# Lifetime-constant re-validation
# ---------------------------------------------------------------------------

def lifetime_findings(vm: Any) -> list[Finding]:
    """Re-prove the plan's published lifetime constants with the CFG
    escape analysis: a plan entry the analysis no longer derives means
    the specialization inliner would bind a value some path can change."""
    manager = getattr(vm, "mutation_manager", None)
    if manager is None or not manager.plan.lifetime_constants:
        return []
    from repro.mutation.lifetime import analyze_lifetime_constants

    fresh = analyze_lifetime_constants(
        vm.unit, list(manager.plan.classes), engine="cfg"
    )
    findings: list[Finding] = []
    for key, info in manager.plan.lifetime_constants.items():
        proved = fresh.get(key)
        if proved is None:
            findings.append(Finding(
                "lifetime-escape", key.rpartition(".")[0], -1, key,
                "plan binds lifetime constants through this reference "
                "field, but the escape analysis cannot prove it "
                "non-escaping / single-constructor",
            ))
            continue
        for fname, value in info.field_values_by_name.items():
            got = proved.field_values_by_name.get(fname)
            if got != value:
                findings.append(Finding(
                    "lifetime-escape", key.rpartition(".")[0], -1, key,
                    f"plan binds {info.target_class}.{fname}={value!r} "
                    f"but the analysis derives {got!r}",
                ))
    return findings
