"""Translation validation for every transformed code surface.

PRs 7-9 added three code-transformation surfaces (OSR continuations,
shared specialized bodies, shape-slotted quickened code) whose
correctness rested on differential tests alone.  This module extends
the PR 5 "soundness proven, not assumed" policy to all of them: each
transformed body is *proven* observationally equivalent to its pristine
source, and anything unprovable is downgraded — never run.

Four clients, one per surface:

**quicken/fusion** (:func:`tv_quicken_findings`)
    Every ``*_QUICK`` body and superinstruction idiom is validated
    against the pristine bytecode by per-slot lockstep symbolic
    execution (:mod:`repro.analysis.symstate`): from a fully generic
    entry state, one fused step must produce exactly the outcomes of
    the pristine region it covers.  This replaces trust in the
    hand-maintained fusion tables — and subsumes the hook-liveness
    lint, because write effects carry the identity of the ``Instr``
    whose ``state_hook`` is read live.

**shapes** (:func:`tv_shapes_findings`)
    Every resolved slot access must agree with the installed Shape
    layout: packed indices match ``rc.field_layout``, ``UnboxedField``
    reads are re-proven lifetime-constant by an independent
    :func:`~repro.vm.shapes.unboxable_fields` run, direct (plain int)
    indices never point into the pinnable tail, and every pinning TIB's
    shape covers exactly the class's pin slots with the hot state's
    bound values.

**OSR** (:func:`tv_osr_findings`)
    Each continuation's entry must agree with an independently computed
    :func:`repro.analysis.liveness.live_locals` compensation set at its
    loop header (a stack-depth-0 backward-branch target), and every
    ``deoptcheck`` bail site must pass a frame the interpreter can
    resume: recorded at stack depth 0 with exactly the live locals
    materialized in its args.

**spec-share** (:func:`tv_share_findings`)
    Hot states sharing one compiled body re-prove equal read-set
    projections at validation time with this module's *own* projection
    (:func:`share_projection`), independently of
    ``StateReads.project``.

Plus the deopt-guard safety lint (:func:`deopt_guard_findings`): every
immediately-re-evaluating state-field store on ``this`` in a
TIB-speculating specialized body must carry its ``deoptcheck`` guard.

Enforcement (downgrade, don't run) hooks into each surface's producer:
``Quickener.quicken_all`` de-quickens unprovable bodies
(:func:`enforce_quicken`), ``OSRManager._build_entry`` rejects
unprovable entries into the permanent-miss sentinel
(:func:`check_osr_entry`), ``generate_specials`` refuses unprovable
sharing and compiles fresh (:func:`reprove_share`), and the attach-time
audit downgrades plans whose shapes are unprovable
(:func:`attach_findings`).  Every downgrade lands in
``vm.tv_downgrades`` — reported by lint and digested into the compile
cache's environment payload so a cache hit never resurrects an
unvalidated body.  Accounting is three-way: ``vm.mutation_stats.tv_*``
fields, ``analysis.tv_*`` telemetry counters, and ``tv_validated``
events all bump together; validation time accumulates in
``vm.tv_seconds`` and the ``analysis.tv_seconds`` histogram.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.bytecode.opcodes import Op, branch_target, op_width
from repro.bytecode.verify import VerifyError, verify_quick
from repro.analysis.findings import Finding
from repro.analysis.liveness import live_locals
from repro.analysis.symstate import (
    TVUnprovable,
    entry_depths,
    region_outcomes,
    step_outcomes,
)
from repro.telemetry.core import maybe as _tel_maybe

__all__ = [
    "tv_quicken_findings",
    "tv_shapes_findings",
    "tv_osr_findings",
    "tv_share_findings",
    "deopt_guard_findings",
    "tv_downgrade_findings",
    "tv_findings",
    "enforce_quicken",
    "check_osr_entry",
    "share_projection",
    "reprove_share",
    "attach_findings",
    "validate_quick_method",
]


# ---------------------------------------------------------------------------
# Accounting: one helper keeps the stats fields, the telemetry counters,
# and the event bus in exact agreement (the three-way invariant).

def _account(vm: Any, surface: str, *, bodies: int = 0,
             findings: int = 0, downgrades: int = 0) -> None:
    stats = getattr(vm, "mutation_stats", None)
    if stats is not None:
        stats.tv_bodies_validated += bodies
        stats.tv_findings += findings
        stats.tv_downgrades += downgrades
    tel = _tel_maybe(getattr(vm, "telemetry", None))
    if tel is not None:
        if bodies:
            tel.count("analysis.tv_bodies_validated", bodies)
        if findings:
            tel.count("analysis.tv_findings", findings)
        if downgrades:
            tel.count("analysis.tv_downgrades", downgrades)
        tel.emit(
            "tv_validated",
            surface=surface,
            bodies=bodies,
            findings=findings,
            downgrades=downgrades,
        )


def _observe_seconds(vm: Any, seconds: float) -> None:
    vm.tv_seconds = getattr(vm, "tv_seconds", 0.0) + seconds
    tel = _tel_maybe(getattr(vm, "telemetry", None))
    if tel is not None:
        tel.observe("analysis.tv_seconds", seconds)


def _record_downgrade(vm: Any, surface: str, key: str, message: str) -> None:
    downgrades = getattr(vm, "tv_downgrades", None)
    if downgrades is None:
        downgrades = vm.tv_downgrades = {}
    downgrades[f"{surface}:{key}"] = message


def _runtime_methods(vm: Any) -> Iterable[Any]:
    for rc in vm.classes.values():
        for rm in rc.own_methods.values():
            if not rm.info.is_abstract:
                yield rm


# ---------------------------------------------------------------------------
# Surface 1: quicken/fusion.

def validate_quick_method(rm: Any) -> list[Finding]:
    """Prove ``rm.quick_code`` equivalent to ``rm.info.code`` slot by
    slot; one finding per unprovable slot (empty list = proven)."""
    code = rm.info.code
    qc = rm.quick_code
    if not qc:
        return []
    qname = rm.info.qualified_name
    if len(qc) != len(code):
        return [Finding(
            "tv-quicken", qname, -1, qname,
            f"quickened body length {len(qc)} != pristine {len(code)}",
        )]
    try:
        depths = entry_depths(rm.info, qc)
        verify_quick(rm.info, qc)
    except (TVUnprovable, VerifyError) as e:
        index = e.pc if isinstance(e, TVUnprovable) else e.index
        return [Finding("tv-quicken", qname, index, qname, str(e))]
    max_locals = rm.info.max_locals
    findings = []
    for pc in sorted(depths):
        instr = qc[pc]
        if instr is code[pc]:
            continue  # untransformed slot: trivially equivalent
        depth = depths[pc]
        width = op_width(instr.op)
        try:
            quick = step_outcomes(qc, pc, depth, max_locals)
            pristine = region_outcomes(
                code, pc, pc + width, depth, max_locals
            )
        except TVUnprovable as e:
            findings.append(Finding(
                "tv-quicken", qname, pc, instr.op.name, str(e)
            ))
            continue
        if quick != pristine:
            findings.append(Finding(
                "tv-quicken", qname, pc, instr.op.name,
                f"fused step is not observationally equivalent to the "
                f"pristine region [{pc}, {pc + width}): "
                f"{_diff(quick, pristine)}",
            ))
    return findings


def _diff(quick: list, pristine: list) -> str:
    for q, p in zip(quick, pristine):
        if q != p:
            return f"quick {q!r} vs pristine {p!r}"
    return f"{len(quick)} quick vs {len(pristine)} pristine outcome(s)"


def tv_quicken_findings(vm: Any) -> list[Finding]:
    findings = []
    for rm in _runtime_methods(vm):
        findings += validate_quick_method(rm)
    return findings


def enforce_quicken(vm: Any) -> None:
    """Validate every quickened body; de-quicken the unprovable ones
    (they revert to pristine interpretation).  Called by
    ``Quickener.quicken_all`` when ``VMConfig.tv`` is on."""
    quickener = vm.quickener
    if quickener is None:
        return
    start = time.perf_counter()
    bodies = findings = downgrades = 0
    for rm in vm.all_runtime_methods():
        if not rm.quick_code:
            continue
        bodies += 1
        fs = validate_quick_method(rm)
        if fs:
            findings += len(fs)
            downgrades += 1
            quickener.dequicken(rm)
            _record_downgrade(
                vm, "quicken", rm.info.qualified_name,
                f"quickened body unprovable ({len(fs)} finding(s)); "
                f"the method runs pristine bytecode: {fs[0].message}",
            )
    _account(vm, "quicken", bodies=bodies, findings=findings,
             downgrades=downgrades)
    _observe_seconds(vm, time.perf_counter() - start)


# ---------------------------------------------------------------------------
# Surface 2: shapes.

def _plan_state_keys(vm: Any) -> set:
    plan = getattr(getattr(vm, "mutation_manager", None), "plan", None)
    keys: set = set()
    if plan is not None:
        for cp in plan.classes.values():
            for spec in cp.instance_fields:
                keys.add((spec.declaring_class, spec.field_name))
    return keys


def _shape_site_findings(vm: Any, rm: Any, state_keys: set,
                         unbox_cache: dict) -> list[Finding]:
    from repro.vm.shapes import ShapeField, UnboxedField, unboxable_fields

    findings = []
    qname = rm.info.qualified_name
    for i, instr in enumerate(rm.info.code):
        if instr.op not in (Op.GETFIELD, Op.PUTFIELD):
            continue
        finfo = vm.unit.lookup_field(*instr.arg)
        if finfo is None:
            continue
        decl, fname = finfo.key
        rc = vm.classes.get(decl)
        if rc is None:
            continue
        layout = getattr(rc, "field_layout", None) or {}
        pin = set(getattr(rc, "pin_slots", ()) or ())
        subject = f"{decl}.{fname}"
        r = instr.resolved
        if r is None:
            continue
        if isinstance(r, UnboxedField):
            if decl not in unbox_cache:
                unbox_cache[decl] = unboxable_fields(
                    vm.unit, decl, state_keys
                )
            proven = unbox_cache[decl]
            if fname not in proven or proven[fname] != r.value:
                findings.append(Finding(
                    "tv-shapes", qname, i, subject,
                    f"unboxed read of {r.value!r} without an "
                    f"independent lifetime-constant proof",
                ))
        elif isinstance(r, ShapeField):
            if fname in layout and layout[fname] != int(r):
                findings.append(Finding(
                    "tv-shapes", qname, i, subject,
                    f"stale shape slot {int(r)} "
                    f"(layout says {layout[fname]})",
                ))
            elif int(r) not in pin:
                findings.append(Finding(
                    "tv-shapes", qname, i, subject,
                    f"ShapeField slot {int(r)} outside the class's "
                    f"pinnable tail {sorted(pin)}",
                ))
        elif type(r) is int:
            if fname in layout and layout[fname] != r:
                findings.append(Finding(
                    "tv-shapes", qname, i, subject,
                    f"stale packed slot index {r} "
                    f"(layout says {layout[fname]})",
                ))
            elif r in pin:
                findings.append(Finding(
                    "tv-shapes", qname, i, subject,
                    f"pinnable state slot {r} accessed with a direct "
                    f"index (truncated storage would misread)",
                ))
        else:
            findings.append(Finding(
                "tv-shapes", qname, i, subject,
                f"unrecognized slot kind {type(r).__name__}",
            ))
    return findings


def _pinning_findings(vm: Any, name: str, mcr: Any) -> list[Finding]:
    """Every pinning TIB's shape must cover exactly the class's pin
    slots with the hot state's bound values, and drop exactly that many
    slots from the base layout."""
    rc = mcr.rc
    base = getattr(rc.class_tib, "shape", None)
    pin = tuple(getattr(rc, "pin_slots", ()) or ())
    findings = []
    for iv, tib in mcr.tib_by_instance.items():
        shape = getattr(tib, "shape", None)
        if shape is None or not shape.is_pinning:
            continue
        values = dict(zip(mcr.instance_slots, iv))
        state = str(dict(shape.pinned))
        if base is None or sorted(shape.pinned) != sorted(pin):
            findings.append(Finding(
                "tv-shapes", name, -1, state,
                f"pinning shape covers slots "
                f"{sorted(shape.pinned)} but the class pins "
                f"{sorted(pin)}",
            ))
        elif shape.n_slots != base.n_slots - len(pin) or \
                len(shape.tail) != len(pin):
            findings.append(Finding(
                "tv-shapes", name, -1, state,
                f"pinning shape drops {base.n_slots - shape.n_slots} "
                f"slot(s) with a {len(shape.tail)}-value tail; the "
                f"class pins {len(pin)}",
            ))
        elif any(shape.pinned[s] != values.get(s) for s in pin):
            findings.append(Finding(
                "tv-shapes", name, -1, state,
                "pinned values disagree with the hot state's bindings",
            ))
    return findings


def tv_shapes_findings(vm: Any) -> list[Finding]:
    state_keys = _plan_state_keys(vm)
    unbox_cache: dict = {}
    findings = []
    for rm in _runtime_methods(vm):
        findings += _shape_site_findings(vm, rm, state_keys, unbox_cache)
    manager = getattr(vm, "mutation_manager", None)
    if manager is not None:
        for name, mcr in sorted(manager.mcrs.items()):
            findings += _pinning_findings(vm, name, mcr)
    return findings


def attach_findings(manager: Any, name: str, mcr: Any) -> list[Finding]:
    """The attach-time TV audit for one plan class: shape layouts and
    the class's own field sites must be provable, else the plan is
    downgraded (the class runs unspecialized, whose base shapes never
    truncate storage — so even a direct index into the pinnable tail
    stays correct)."""
    vm = manager.vm
    start = time.perf_counter()
    findings = _pinning_findings(vm, name, mcr)
    state_keys = _plan_state_keys(vm)
    unbox_cache: dict = {}
    for rm in mcr.rc.own_methods.values():
        if rm.info.is_abstract:
            continue
        findings += _shape_site_findings(vm, rm, state_keys, unbox_cache)
    _account(vm, "shapes", bodies=1, findings=len(findings),
             downgrades=1 if findings else 0)
    if findings:
        _record_downgrade(
            vm, "shapes", name,
            f"shape layout unprovable ({len(findings)} finding(s)); "
            f"plan downgraded: {findings[0].message}",
        )
    _observe_seconds(vm, time.perf_counter() - start)
    return findings


# ---------------------------------------------------------------------------
# Surface 3: OSR.

def _is_loop_header(code: list, pc: int) -> bool:
    return any(
        branch_target(ins) == pc
        for j, ins in enumerate(code)
        if j >= pc
    )


def _osr_entry_problem(rm: Any, pc: int, dead: tuple) -> str | None:
    """Why the continuation entry at ``pc`` is unprovable, or None.

    ``dead`` is the builder's compensation set; it is cross-checked
    against an independently imported
    :func:`repro.analysis.liveness.live_locals` run (the builder uses
    its own module reference), plus the structural frame-mapping facts:
    the pc must be a stack-depth-0 loop header, so the frame *is* the
    locals list.
    """
    code = rm.info.code
    try:
        depths = entry_depths(rm.info, code)
    except TVUnprovable as e:
        return f"pristine body is unverifiable: {e}"
    if depths.get(pc) != 0:
        return (
            f"entry pc {pc} has stack depth {depths.get(pc)!r}; the "
            f"frame transfer assumes an empty operand stack"
        )
    if not _is_loop_header(code, pc):
        return f"entry pc {pc} is not a backward-branch target"
    live = live_locals(code)[pc]
    expected = tuple(
        i for i in range(rm.info.max_locals) if i not in live
    )
    if tuple(dead) != expected:
        return (
            f"compensation set {tuple(dead)} disagrees with the "
            f"liveness analysis ({expected}); a live local would be "
            f"nulled (or a dead one leak) across the transfer"
        )
    return None


def check_osr_entry(vm: Any, rm: Any, pc: int, dead: tuple) -> bool:
    """Runtime enforcement for ``OSRManager._build_entry``: an
    unprovable entry is recorded and rejected (the caller caches the
    permanent-miss sentinel, and the frame keeps interpreting)."""
    start = time.perf_counter()
    problem = _osr_entry_problem(rm, pc, dead)
    ok = problem is None
    _account(vm, "osr", bodies=1, findings=0 if ok else 1,
             downgrades=0 if ok else 1)
    if not ok:
        _record_downgrade(
            vm, "osr", f"{rm.info.qualified_name}@{pc}",
            f"OSR entry unprovable; permanent interpreter miss: "
            f"{problem}",
        )
    _observe_seconds(vm, time.perf_counter() - start)
    return ok


def _iter_special_irs(vm: Any):
    """Distinct specialized IR bodies with their (mcr, rm, tib)."""
    manager = getattr(vm, "mutation_manager", None)
    if manager is None:
        return
    seen: set[int] = set()
    for name in sorted(manager.mcrs):
        mcr = manager.mcrs[name]
        for rm in mcr.rc.own_methods.values():
            for key, special in getattr(rm, "specials", {}).items():
                if special is rm.general or id(special) in seen:
                    continue
                seen.add(id(special))
                fn = getattr(special, "ir", None)
                if fn is None:
                    continue
                tib = mcr.tib_by_instance.get(key[0])
                yield mcr, rm, tib, fn


def tv_osr_findings(vm: Any) -> list[Finding]:
    findings = []
    for rm in _runtime_methods(vm):
        entries = getattr(rm, "osr_entries", None) or {}
        qname = rm.info.qualified_name
        for pc in sorted(entries):
            entry = entries[pc]
            if entry is False or entry is None:
                continue
            dead = getattr(entry, "dead_locals", None)
            if dead is None:
                findings.append(Finding(
                    "tv-osr", qname, pc, f"{qname}@{pc}",
                    "continuation entry carries no compensation-set "
                    "record to validate",
                ))
                continue
            problem = _osr_entry_problem(rm, pc, dead)
            if problem is not None:
                findings.append(Finding(
                    "tv-osr", qname, pc, f"{qname}@{pc}", problem
                ))
    # Every deoptcheck must bail with a frame the interpreter can
    # resume: recorded at stack depth 0, live locals materialized.
    for _mcr, rm, _tib, fn in _iter_special_irs(vm):
        code = rm.info.code
        qname = rm.info.qualified_name
        depths = None
        for block in fn.blocks.values():
            for instr in block.instrs:
                if instr.op != "deoptcheck":
                    continue
                ex = instr.extra
                if depths is None:
                    depths = entry_depths(rm.info, code)
                if depths.get(ex.pc) != 0:
                    findings.append(Finding(
                        "tv-osr", qname, ex.pc, f"{qname}@{ex.pc}",
                        f"deoptcheck resumes at stack depth "
                        f"{depths.get(ex.pc)!r}; the interpreter frame "
                        f"reconstruction assumes depth 0",
                    ))
                    continue
                live = sorted(live_locals(code)[ex.pc])
                if list(ex.live) != live:
                    findings.append(Finding(
                        "tv-osr", qname, ex.pc, f"{qname}@{ex.pc}",
                        f"deoptcheck live set {list(ex.live)} "
                        f"disagrees with the liveness analysis {live}",
                    ))
                elif len(instr.args) != 1 + len(live):
                    findings.append(Finding(
                        "tv-osr", qname, ex.pc, f"{qname}@{ex.pc}",
                        f"deoptcheck materializes "
                        f"{len(instr.args) - 1} locals for a "
                        f"{len(live)}-local live set",
                    ))
    return findings


# ---------------------------------------------------------------------------
# Surface 4: spec-share.

def share_projection(reads: Any, instance: dict, static: dict) -> tuple:
    """This module's own projection of one state's bindings onto a
    method's read sets — recomputed from the raw ``instance``/``static``
    slot sets, never by calling ``StateReads.project``, so a buggy (or
    crafted) projection cannot vouch for itself."""
    return (
        tuple(
            (slot, type(v).__name__, v)
            for slot, v in sorted(instance.items())
            if slot in reads.instance
        ),
        tuple(
            (slot, type(v).__name__, v)
            for slot, v in sorted(static.items())
            if slot in reads.static
        ),
    )


def reprove_share(vm: Any, rm: Any, reads: Any, existing: Any,
                  bindings: Any) -> bool:
    """Runtime enforcement for ``generate_specials``: before a hot
    state aliases another state's compiled body, re-prove their
    projections equal.  ``existing`` is the bindings the body was
    compiled against (or ``None`` for the zero-read general-body alias,
    which must project empty).  Unprovable sharing compiles fresh."""
    start = time.perf_counter()
    new_proj = share_projection(reads, bindings.instance, bindings.static)
    if existing is None:
        ok = new_proj == ((), ())
    else:
        ok = new_proj == share_projection(
            reads, existing.instance, existing.static
        )
    _account(vm, "share", bodies=1, findings=0 if ok else 1,
             downgrades=0 if ok else 1)
    if not ok:
        _record_downgrade(
            vm, "share",
            f"{rm.info.qualified_name}[{bindings.label}]",
            "read-set projection mismatch at share time; the state "
            "gets its own compile instead of aliasing",
        )
    _observe_seconds(vm, time.perf_counter() - start)
    return ok


def tv_share_findings(vm: Any) -> list[Finding]:
    """Re-prove every body shared across hot states: all keys mapping
    to one compiled body must have equal projections onto the method's
    read set (recomputed here from the post-inline IR)."""
    from repro.opt.eqstate import state_reads

    manager = getattr(vm, "mutation_manager", None)
    if manager is None:
        return []
    findings = []
    for name in sorted(manager.mcrs):
        mcr = manager.mcrs[name]
        for rm in mcr.rc.own_methods.values():
            specials = getattr(rm, "specials", {})
            if not specials:
                continue
            groups: dict[int, list] = {}
            for key, special in specials.items():
                groups.setdefault(id(special), []).append(key)
            if all(len(keys) < 2 for keys in groups.values()):
                continue
            reads = state_reads(
                vm.opt_compiler.spec_ir(rm),
                mcr.instance_slots,
                mcr.static_slots,
            )
            qname = rm.info.qualified_name
            for keys in groups.values():
                if len(keys) < 2:
                    continue
                projections = {
                    share_projection(
                        reads,
                        dict(zip(mcr.instance_slots, iv)),
                        dict(zip(mcr.static_slots, sv)),
                    )
                    for iv, sv in keys
                }
                if len(projections) > 1:
                    findings.append(Finding(
                        "tv-share", qname, -1,
                        f"{len(keys)} states",
                        f"one compiled body serves states with "
                        f"{len(projections)} distinct read-set "
                        f"projections",
                    ))
    return findings


# ---------------------------------------------------------------------------
# Deopt-guard safety lint.

def deopt_guard_findings(vm: Any) -> list[Finding]:
    """Every immediately-re-evaluating state-field store on ``this`` in
    a TIB-speculating specialized body must be followed by its
    ``deoptcheck`` guard — otherwise a frame that swaps its own
    receiver's TIB keeps speculating on the stale state."""
    if not getattr(vm.config, "osr", False):
        return []
    from repro.opt.ir import Reg
    from repro.opt.specialize import this_aliases
    from repro.vm.osr import _reevaluates

    findings = []
    for _mcr, rm, tib, fn in _iter_special_irs(vm):
        if tib is None:
            continue  # not compiled against a special TIB: unguarded
        aliases = this_aliases(fn)
        qname = rm.info.qualified_name
        for block in fn.blocks.values():
            instrs = block.instrs
            for idx, instr in enumerate(instrs):
                ex = instr.extra
                if not (
                    instr.op == "putfield"
                    and ex.pc is not None
                    and ex.hook is not None
                    and _reevaluates(ex.hook)
                    and isinstance(instr.args[0], Reg)
                    and instr.args[0].name in aliases
                ):
                    continue
                nxt = instrs[idx + 1] if idx + 1 < len(instrs) else None
                if (
                    nxt is None
                    or nxt.op != "deoptcheck"
                    or nxt.extra.pc != ex.pc
                ):
                    findings.append(Finding(
                        "deopt-guard", qname, ex.pc,
                        f"slot {ex.slot}",
                        "re-evaluating state store on `this` in a "
                        "specialized body lacks its deoptcheck guard",
                    ))
    return findings


# ---------------------------------------------------------------------------
# Aggregation.

def tv_downgrade_findings(vm: Any) -> list[Finding]:
    """Surfaces the runtime enforcement decisions: each recorded
    downgrade (de-quickened body, rejected OSR entry, refused share,
    downgraded plan) is one finding, so ``jx lint --tv`` shows what the
    validator refused to run."""
    out = []
    for key, message in sorted(
        (getattr(vm, "tv_downgrades", None) or {}).items()
    ):
        surface, _, where = key.partition(":")
        out.append(Finding(f"tv-{surface}", where, -1, key, message))
    return out


def tv_findings(vm: Any) -> list[Finding]:
    """All translation-validation checks over a built (and possibly
    run) VM; empty means every transformed surface is proven."""
    start = time.perf_counter()
    findings = tv_quicken_findings(vm)
    findings += tv_shapes_findings(vm)
    findings += tv_osr_findings(vm)
    findings += tv_share_findings(vm)
    findings += deopt_guard_findings(vm)
    findings += tv_downgrade_findings(vm)
    _observe_seconds(vm, time.perf_counter() - start)
    return findings
