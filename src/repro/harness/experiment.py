"""Experiment driver: run workloads with and without mutation.

The measurement protocol follows the paper's §6: multiple runs, best
repeatable result reported; mutation-on and mutation-off runs use
identical adaptive-system settings so the only difference is the
mutation plan.  For the SPECjbb experiments the VM persists across
warehouse slices, so compilation and mutation effects play out over
time exactly as in Figures 13–15.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.lang import compile_source
from repro.mutation import MutationConfig, MutationPlan, build_mutation_plan
from repro.vm.adaptive import AdaptiveConfig
from repro.vm.runtime import VM
from repro.workloads.registry import WorkloadSpec


@dataclass
class Measurement:
    """One measured run (best wall time over repeats; stats from the
    last VM)."""

    workload: str
    mutated: bool
    wall_seconds: float
    compile_seconds: float
    opt_code_bytes: int
    special_code_bytes: int
    special_compile_seconds: float
    class_tib_bytes: int
    special_tib_bytes: int
    #: From ``vm.mutation_stats`` — the same counter the manager aliases
    #: and telemetry mirrors, so ``jx compare`` and ``jx stats`` agree.
    tib_swaps: int
    special_versions: int
    output: str
    swaps_coalesced: int = 0
    objects_allocated: int = 0
    #: Live modeled object volume (packed charges net of pinned bytes)
    #: and the declared-field baseline the packing is measured against.
    modeled_heap_bytes: int = 0
    declared_heap_bytes: int = 0
    shape_transitions: int = 0
    #: Telemetry summary (counters/gauges/histograms/events) of the
    #: best run's VM, when the run was telemetry-instrumented.
    telemetry_report: dict | None = None
    #: Compile-cache session counters, aggregated over every VM this
    #: measurement created (zero when no cache was attached).
    cache_hits: int = 0
    cache_misses: int = 0
    #: First-repeat vs last-repeat compile seconds: with a shared cache
    #: the first VM populates and later VMs warm-start, so these are the
    #: cold and warm compile costs of the same workload.
    cold_compile_seconds: float = 0.0
    warm_compile_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return (self.cache_hits / lookups) if lookups else 0.0

    @property
    def compile_fraction(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.compile_seconds / self.wall_seconds


def _adaptive_config(
    plan: MutationPlan | None, accelerated: bool
) -> AdaptiveConfig:
    accel: frozenset[str] = frozenset()
    if accelerated and plan is not None:
        names = []
        for class_plan in plan.classes.values():
            for key in class_plan.mutable_methods:
                names.append(f"{class_plan.class_name}.{key}")
        accel = frozenset(names)
    return AdaptiveConfig(accelerated=accel)


def _as_cache(cache: Any) -> Any:
    """Normalize a cache argument (CompileCache | directory | None) to a
    single shared CompileCache instance, so session counters aggregate
    across every VM of one measurement."""
    if cache is None or not isinstance(cache, (str, Path)):
        return cache
    from repro.cache import CompileCache

    return CompileCache(cache)


def run_workload(
    spec: WorkloadSpec,
    plan: MutationPlan | None = None,
    repeats: int = 2,
    accelerated: bool = False,
    seed: int = 42,
    scale: float | None = None,
    telemetry: bool = False,
    cache: Any = None,
) -> Measurement:
    """Run one workload configuration; returns the best-of-N measurement.

    ``telemetry=True`` attaches a fresh :class:`~repro.telemetry.Telemetry`
    to every VM and reports the last run's summary — instrumented runs
    carry a small overhead, so compare only like against like.

    ``cache`` (a :class:`~repro.cache.CompileCache` or a directory)
    attaches the persistent compile cache to every VM: the first repeat
    populates it, later repeats warm-start.
    """
    source = spec.source(scale if scale is not None else spec.bench_scale)
    cache = _as_cache(cache)
    best_wall = float("inf")
    vm: VM | None = None
    output = ""
    cold_compile = warm_compile = 0.0
    for index in range(max(1, repeats)):
        unit = compile_source(
            source,
            filename=f"<{spec.name}>",
            entry_class=spec.entry_class,
            entry_method=spec.entry_method,
        )
        vm = VM(
            unit,
            mutation_plan=plan,
            adaptive_config=_adaptive_config(plan, accelerated),
            seed=seed,
            telemetry=telemetry or None,
            compile_cache=cache,
        )
        result = vm.run()
        output = result.output
        best_wall = min(best_wall, result.wall_seconds)
        if index == 0:
            cold_compile = vm.compile_stats.total_seconds
        warm_compile = vm.compile_stats.total_seconds
    assert vm is not None
    stats = vm.compile_stats
    manager = vm.mutation_manager
    report = vm.telemetry.summary() if vm.telemetry is not None else None
    return Measurement(
        workload=spec.name,
        mutated=plan is not None,
        wall_seconds=best_wall,
        compile_seconds=stats.total_seconds,
        opt_code_bytes=stats.total_code_bytes,
        special_code_bytes=stats.special_code_bytes,
        special_compile_seconds=stats.special_seconds,
        class_tib_bytes=vm.tib_space.class_tib_bytes,
        special_tib_bytes=vm.tib_space.special_tib_bytes,
        tib_swaps=vm.mutation_stats.tib_swaps,
        special_versions=(
            manager.special_versions_compiled if manager else 0
        ),
        swaps_coalesced=vm.mutation_stats.swaps_coalesced,
        output=output,
        objects_allocated=vm.heap.objects_allocated,
        modeled_heap_bytes=vm.heap.modeled_object_bytes(),
        declared_heap_bytes=vm.heap.declared_object_bytes,
        shape_transitions=vm.heap.shape_transitions,
        telemetry_report=report,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        cold_compile_seconds=cold_compile,
        warm_compile_seconds=warm_compile,
    )


def telemetry_compile_summary(report: dict | None) -> dict:
    """Flatten a Measurement's telemetry report into the handful of
    numbers the mutation-on/off comparison cares about: compile seconds
    by tier and the swap/hook/special counters."""
    out: dict = {
        "compile_seconds_total": 0.0,
        "compile_seconds_by_tier": {},
        "tib_swaps": 0,
        "deopt_swaps": 0,
        "swaps_coalesced": 0,
        "hooks_fired": 0,
        "specials_compiled": 0,
        "specials_shared": 0,
        "memo_hits": 0,
    }
    if not report:
        return out
    for name, hist in report.get("histograms", {}).items():
        if name.startswith("compile.seconds."):
            tier = name.rsplit(".", 1)[1]
            out["compile_seconds_by_tier"][tier] = hist["sum"]
            out["compile_seconds_total"] += hist["sum"]
    counters = report.get("counters", {})
    # mutation.tib_swap counts every swap (deopt_to_class_tib is the
    # swap-back subset), matching Measurement.tib_swaps exactly.
    out["tib_swaps"] = counters.get("mutation.tib_swap", 0)
    out["deopt_swaps"] = counters.get("mutation.deopt_to_class_tib", 0)
    out["swaps_coalesced"] = counters.get("mutation.swaps_coalesced", 0)
    out["hooks_fired"] = counters.get("mutation.hooks_fired", 0)
    out["specials_compiled"] = counters.get(
        "mutation.specials_compiled", 0
    )
    out["specials_shared"] = counters.get(
        "mutation.specials_shared", 0
    )
    out["memo_hits"] = counters.get("vm.memo_hits", 0)
    return out


@dataclass
class Comparison:
    """Mutation-on vs mutation-off for one workload."""

    workload: str
    baseline: Measurement
    mutated: Measurement
    plan: MutationPlan

    @property
    def speedup(self) -> float:
        """Fractional speedup: time_off / time_on - 1."""
        if self.mutated.wall_seconds <= 0:
            return 0.0
        return self.baseline.wall_seconds / self.mutated.wall_seconds - 1.0

    @property
    def code_size_increase(self) -> float:
        base = self.baseline.opt_code_bytes
        if base <= 0:
            return 0.0
        return (self.mutated.opt_code_bytes - base) / base

    @property
    def compile_time_increase(self) -> float:
        base = self.baseline.compile_seconds
        if base <= 0:
            return 0.0
        return (self.mutated.compile_seconds - base) / base

    @property
    def tib_space_increase_bytes(self) -> int:
        return self.mutated.special_tib_bytes

    @property
    def tib_space_increase_relative(self) -> float:
        base = self.mutated.class_tib_bytes
        if base <= 0:
            return 0.0
        return self.mutated.special_tib_bytes / base

    @property
    def outputs_match(self) -> bool:
        return self.baseline.output == self.mutated.output


def compare_workload(
    spec: WorkloadSpec,
    config: MutationConfig | None = None,
    repeats: int = 2,
    seed: int = 42,
    plan: MutationPlan | None = None,
    telemetry: bool = False,
    cache: Any = None,
) -> Comparison:
    """Full offline pipeline + measured on/off comparison.

    Baseline and mutated runs are interleaved so machine-load drift
    affects both sides equally; best-of-N is kept per side (the paper's
    "best repeatable result" protocol, §6).  With ``cache`` (a
    :class:`~repro.cache.CompileCache` or directory), every VM of both
    sides shares one compile cache: the first repeat runs cold and the
    rest warm-start, and the per-side Measurements carry hit counts and
    cold/warm compile seconds.
    """
    if plan is None:
        plan = build_mutation_plan(
            spec.profile_source(),
            entry_class=spec.entry_class,
            entry_method=spec.entry_method,
            config=config,
            seed=seed,
        )
    cache = _as_cache(cache)
    baseline: Measurement | None = None
    mutated: Measurement | None = None
    base_cold = mut_cold = base_warm = mut_warm = 0.0
    base_hits = base_misses = mut_hits = mut_misses = 0
    for index in range(max(1, repeats)):
        # The shared cache's session counters are zeroed before each
        # side so each Measurement reports its own lookups only.
        if cache is not None:
            cache.hits = cache.misses = 0
        b = run_workload(spec, None, repeats=1, seed=seed,
                         telemetry=telemetry, cache=cache)
        if cache is not None:
            cache.hits = cache.misses = 0
        m = run_workload(spec, plan, repeats=1, seed=seed,
                         telemetry=telemetry, cache=cache)
        if cache is not None:
            if index == 0:
                base_cold = b.cold_compile_seconds
                mut_cold = m.cold_compile_seconds
            base_hits += b.cache_hits
            base_misses += b.cache_misses
            mut_hits += m.cache_hits
            mut_misses += m.cache_misses
            base_warm = b.warm_compile_seconds
            mut_warm = m.warm_compile_seconds
        if baseline is None or b.wall_seconds < baseline.wall_seconds:
            baseline = b
        if mutated is None or m.wall_seconds < mutated.wall_seconds:
            mutated = m
    assert baseline is not None and mutated is not None
    if cache is not None:
        baseline.cache_hits, baseline.cache_misses = base_hits, base_misses
        mutated.cache_hits, mutated.cache_misses = mut_hits, mut_misses
        baseline.cold_compile_seconds = base_cold
        mutated.cold_compile_seconds = mut_cold
        baseline.warm_compile_seconds = base_warm
        mutated.warm_compile_seconds = mut_warm
    return Comparison(
        workload=spec.name, baseline=baseline, mutated=mutated, plan=plan
    )


# ---------------------------------------------------------------------------
# Warehouse-over-time experiments (Figures 13-15)
# ---------------------------------------------------------------------------

@dataclass
class WarehouseSeries:
    """Per-warehouse throughput for one VM configuration."""

    workload: str
    mutated: bool
    accelerated: bool
    throughputs: list[float] = field(default_factory=list)  # tx/second
    transactions: list[int] = field(default_factory=list)


def run_warehouses(
    spec: WorkloadSpec,
    plan: MutationPlan | None,
    num_warehouses: int = 8,
    accelerated: bool = False,
    seed: int = 42,
    scale: float | None = None,
) -> WarehouseSeries:
    """Run ``num_warehouses`` sequential slices on one persistent VM,
    timing each — the paper's "one warehouse is run eight times"."""
    if spec.slice_method is None:
        raise ValueError(f"workload {spec.name} has no slice entry")
    source = spec.source(scale if scale is not None else spec.bench_scale)
    unit = compile_source(
        source, filename=f"<{spec.name}>", entry_class=spec.entry_class
    )
    vm = VM(
        unit,
        mutation_plan=plan,
        adaptive_config=_adaptive_config(plan, accelerated),
        seed=seed,
    )
    series = WarehouseSeries(
        workload=spec.name, mutated=plan is not None, accelerated=accelerated
    )
    for _ in range(num_warehouses):
        start = time.perf_counter()
        done = vm.call_static(spec.entry_class, spec.slice_method, [])
        elapsed = time.perf_counter() - start
        series.transactions.append(int(done))
        series.throughputs.append(done / elapsed if elapsed > 0 else 0.0)
    return series


@dataclass
class WarehouseComparison:
    """Relative throughput change per warehouse, mutation vs. not."""

    workload: str
    accelerated: bool
    baseline: WarehouseSeries
    mutated: WarehouseSeries
    #: Per-repeat samples: [warehouse][repeat] throughput.
    base_samples: list[list[float]] = field(default_factory=list)
    mut_samples: list[list[float]] = field(default_factory=list)

    @property
    def deltas(self) -> list[float]:
        """Per-warehouse relative change: median of per-repeat-pair
        deltas (each pair ran back-to-back, so drift cancels)."""
        if self.base_samples and self.mut_samples:
            out = []
            for base_row, mut_row in zip(self.base_samples,
                                         self.mut_samples):
                pair_deltas = sorted(
                    (m / b - 1.0) if b > 0 else 0.0
                    for b, m in zip(base_row, mut_row)
                )
                out.append(pair_deltas[len(pair_deltas) // 2])
            return out
        return [
            (m / b - 1.0) if b > 0 else 0.0
            for b, m in zip(
                self.baseline.throughputs, self.mutated.throughputs
            )
        ]

    def steady_state_delta(self, warmup: int = 3) -> float:
        """Mean per-warehouse delta after the warm-up window — the
        paper's steady-state-warehouse performance metric (§7.1)."""
        tail = self.deltas[warmup:]
        return sum(tail) / len(tail) if tail else 0.0


def compare_warehouses(
    spec: WorkloadSpec,
    config: MutationConfig | None = None,
    num_warehouses: int = 8,
    accelerated: bool = False,
    seed: int = 42,
    plan: MutationPlan | None = None,
    scale: float | None = None,
    repeats: int = 3,
) -> WarehouseComparison:
    """Interleaved warehouse measurement.

    Both VMs persist for the whole sequence (warm-up effects play out
    exactly as in the paper's Figures 13–15) and are advanced in
    lockstep: for each warehouse index the baseline slice and the
    mutated slice run back-to-back, so slow machine-load drift cancels
    out of the per-warehouse delta.  The whole 8-warehouse experiment is
    repeated ``repeats`` times with fresh VM pairs and the median
    throughput per warehouse index is reported.
    """
    if plan is None:
        plan = build_mutation_plan(
            spec.profile_source(),
            entry_class=spec.entry_class,
            entry_method=spec.entry_method,
            config=config,
            seed=seed,
        )
    if spec.slice_method is None:
        raise ValueError(f"workload {spec.name} has no slice entry")
    source = spec.source(scale if scale is not None else spec.bench_scale)

    base_samples: list[list[float]] = [[] for _ in range(num_warehouses)]
    mut_samples: list[list[float]] = [[] for _ in range(num_warehouses)]
    base_tx = [0] * num_warehouses
    mut_tx = [0] * num_warehouses
    for _ in range(max(1, repeats)):
        base_unit = compile_source(source, entry_class=spec.entry_class)
        mut_unit = compile_source(source, entry_class=spec.entry_class)
        base_vm = VM(base_unit, seed=seed)
        mut_vm = VM(
            mut_unit,
            mutation_plan=plan,
            adaptive_config=_adaptive_config(plan, accelerated),
            seed=seed,
        )
        for wh in range(num_warehouses):
            start = time.perf_counter()
            done_b = base_vm.call_static(
                spec.entry_class, spec.slice_method, []
            )
            elapsed_b = time.perf_counter() - start
            start = time.perf_counter()
            done_m = mut_vm.call_static(
                spec.entry_class, spec.slice_method, []
            )
            elapsed_m = time.perf_counter() - start
            base_samples[wh].append(done_b / elapsed_b)
            mut_samples[wh].append(done_m / elapsed_m)
            base_tx[wh] = int(done_b)
            mut_tx[wh] = int(done_m)

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    baseline = WarehouseSeries(
        workload=spec.name,
        mutated=False,
        accelerated=False,
        throughputs=[median(s) for s in base_samples],
        transactions=base_tx,
    )
    mutated = WarehouseSeries(
        workload=spec.name,
        mutated=True,
        accelerated=accelerated,
        throughputs=[median(s) for s in mut_samples],
        transactions=mut_tx,
    )
    return WarehouseComparison(
        workload=spec.name,
        accelerated=accelerated,
        baseline=baseline,
        mutated=mutated,
        base_samples=base_samples,
        mut_samples=mut_samples,
    )
