"""Regenerate every figure of the paper's evaluation (Figures 9-15).

Each ``figN_*`` function runs the corresponding experiment and returns
structured rows; ``format_*`` helpers render the same rows as the text
tables the benchmark suite prints.  Paper reference values are embedded
so EXPERIMENTS.md can juxtapose paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.harness.experiment import (
    Comparison,
    WarehouseComparison,
    compare_warehouses,
    compare_workload,
)
from repro.workloads.registry import PAPER_ORDER, get_workload

#: Paper Figure 9 speedups (percent).  SimLogic's exact number is not
#: stated in the text; ~10% is read off the figure.
PAPER_SPEEDUP_PCT: dict[str, float] = {
    "salarydb": 31.4,
    "simlogic": 10.0,
    "csvtoxml": 3.3,
    "java2xhtml": 2.9,
    "weka": 4.7,
    "jbb2000": 4.5,
    "jbb2005": 1.9,
}

#: Paper Figure 10: compiled-code size increase is "small in all
#: applications" (< 8%); per-benchmark bars are read off the figure.
PAPER_CODE_SIZE_LIMIT_PCT = 8.0

#: Paper Figure 11: opt-compiler compilation-time increase.
PAPER_COMPILE_TIME_PCT: dict[str, float] = {
    "jbb2000": 17.0,
    "jbb2005": 12.0,
}
PAPER_COMPILE_TIME_LIMIT_PCT = 8.0  # all other benchmarks

#: Paper Figure 11 labels: compile time as a fraction of execution.
PAPER_COMPILE_FRACTION_PCT: dict[str, float] = {
    "jbb2000": 3.1,
    "jbb2005": 2.3,
}

#: Paper Figure 12: TIB space increase, absolute bytes (~1KB worst for
#: jbb2000; under 100 bytes for the small applications).
PAPER_TIB_LIMIT_BYTES = 1100


@dataclass
class FigureRow:
    """One benchmark's entry in a figure."""

    workload: str
    measured: float
    paper: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)


def _comparisons(
    workloads: list[str] | None = None, repeats: int = 2, seed: int = 42
) -> list[Comparison]:
    names = workloads or PAPER_ORDER
    return [
        compare_workload(get_workload(name), repeats=repeats, seed=seed)
        for name in names
    ]


def fig9_speedups(
    comparisons: list[Comparison] | None = None,
    warehouse_comparisons: dict[str, WarehouseComparison] | None = None,
    **kwargs,
) -> list[FigureRow]:
    """Figure 9: overall performance improvement (percent speedup).

    For the SPECjbb pair the paper's metric is "the throughput of a
    steady state warehouse" (§7.1); when the corresponding warehouse
    comparison is supplied (or computable), its steady-state delta
    replaces the whole-run wall-clock ratio, which on a short run is
    dominated by compilation warm-up.
    """
    comparisons = comparisons or _comparisons(**kwargs)
    warehouse_comparisons = warehouse_comparisons or {}
    rows = []
    for c in comparisons:
        measured = c.speedup * 100.0
        wh = warehouse_comparisons.get(c.workload)
        if wh is not None:
            measured = wh.steady_state_delta() * 100.0
        rows.append(
            FigureRow(
                workload=c.workload,
                measured=measured,
                paper=PAPER_SPEEDUP_PCT.get(c.workload),
                extra={
                    "outputs_match": c.outputs_match,
                    "tib_swaps": c.mutated.tib_swaps,
                    "special_versions": c.mutated.special_versions,
                    "metric": "steady-state wh" if wh else "wall clock",
                },
            )
        )
    return rows


def fig10_code_size(
    comparisons: list[Comparison] | None = None, **kwargs
) -> list[FigureRow]:
    """Figure 10: opt-compiled code size increase (percent)."""
    comparisons = comparisons or _comparisons(**kwargs)
    return [
        FigureRow(
            workload=c.workload,
            measured=c.code_size_increase * 100.0,
            paper=PAPER_CODE_SIZE_LIMIT_PCT,
            extra={
                "baseline_bytes": c.baseline.opt_code_bytes,
                "mutated_bytes": c.mutated.opt_code_bytes,
                "special_bytes": c.mutated.special_code_bytes,
            },
        )
        for c in comparisons
    ]


def fig11_compile_time(
    comparisons: list[Comparison] | None = None, **kwargs
) -> list[FigureRow]:
    """Figure 11: opt-compiler compilation time increase (percent),
    annotated with the compile-to-execution fraction."""
    comparisons = comparisons or _comparisons(**kwargs)
    return [
        FigureRow(
            workload=c.workload,
            measured=c.compile_time_increase * 100.0,
            paper=PAPER_COMPILE_TIME_PCT.get(
                c.workload, PAPER_COMPILE_TIME_LIMIT_PCT
            ),
            extra={
                "compile_fraction_pct": c.baseline.compile_fraction * 100.0,
                "paper_fraction_pct": PAPER_COMPILE_FRACTION_PCT.get(
                    c.workload
                ),
            },
        )
        for c in comparisons
    ]


def fig12_tib_space(
    comparisons: list[Comparison] | None = None, **kwargs
) -> list[FigureRow]:
    """Figure 12: TIB space increase (absolute bytes, relative label)."""
    comparisons = comparisons or _comparisons(**kwargs)
    return [
        FigureRow(
            workload=c.workload,
            measured=float(c.tib_space_increase_bytes),
            paper=float(PAPER_TIB_LIMIT_BYTES),
            extra={
                "relative_pct": c.tib_space_increase_relative * 100.0,
                "special_tib_count": c.mutated.special_versions,
            },
        )
        for c in comparisons
    ]


def fig13_jbb2000_warehouses(
    num_warehouses: int = 8, seed: int = 42, scale: float | None = None,
    repeats: int = 5,
) -> WarehouseComparison:
    """Figure 13: SPECjbb2000 per-warehouse throughput change."""
    return compare_warehouses(
        get_workload("jbb2000"),
        num_warehouses=num_warehouses,
        accelerated=False,
        seed=seed,
        scale=scale,
        repeats=repeats,
    )


def fig14_jbb2000_accelerated(
    num_warehouses: int = 8, seed: int = 42, scale: float | None = None,
    repeats: int = 5,
) -> WarehouseComparison:
    """Figure 14: SPECjbb2000 with accelerated hotness detection for
    mutable methods."""
    return compare_warehouses(
        get_workload("jbb2000"),
        num_warehouses=num_warehouses,
        accelerated=True,
        seed=seed,
        scale=scale,
        repeats=repeats,
    )


def fig15_jbb2005_warehouses(
    num_warehouses: int = 8, seed: int = 42, scale: float | None = None,
    repeats: int = 5,
) -> WarehouseComparison:
    """Figure 15: SPECjbb2005 per-warehouse throughput change."""
    return compare_warehouses(
        get_workload("jbb2005"),
        num_warehouses=num_warehouses,
        accelerated=False,
        seed=seed,
        scale=scale,
        repeats=repeats,
    )


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------

def format_rows(
    title: str, rows: list[FigureRow], unit: str = "%",
    extra_keys: tuple[str, ...] = (),
) -> str:
    lines = [title, f"{'benchmark':12s} {'measured':>10s} {'paper':>10s}"
             + "".join(f" {k:>18s}" for k in extra_keys)]
    for row in rows:
        paper = f"{row.paper:.1f}{unit}" if row.paper is not None else "-"
        line = f"{row.workload:12s} {row.measured:9.1f}{unit} {paper:>10s}"
        for k in extra_keys:
            value = row.extra.get(k)
            if isinstance(value, float):
                line += f" {value:18.2f}"
            else:
                line += f" {str(value):>18s}"
        lines.append(line)
    return "\n".join(lines)


def format_warehouses(title: str, comparison: WarehouseComparison) -> str:
    lines = [title, f"{'warehouse':>9s} {'delta':>8s} {'base tx/s':>12s} "
             f"{'mut tx/s':>12s}"]
    for i, delta in enumerate(comparison.deltas):
        lines.append(
            f"wh{i + 1:>7d} {delta * 100:7.1f}% "
            f"{comparison.baseline.throughputs[i]:12.0f} "
            f"{comparison.mutated.throughputs[i]:12.0f}"
        )
    return "\n".join(lines)
