"""Regenerate Table 1: the benchmark inventory.

The paper's class/method counts are for the Java originals; ours count
the Jx ports, so absolute numbers differ — what must reproduce is the
*ordering* (SPECjbb variants largest, SalaryDB/Java2XHTML smallest) and
the descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.registry import paper_workloads

#: The paper's Table 1 (program, description, classes, methods).
PAPER_TABLE1 = {
    "salarydb": ("Microbenchmark", 3, 8),
    "simlogic": ("Simple Logic Simulator", 3, 29),
    "csvtoxml": ("CSV to XML conversion", 5, 32),
    "java2xhtml": ("Java to XHTML conversion", 2, 8),
    "weka": ("Data mining algorithm tool set", 22, 423),
    "jbb2000": ("SPEC Transaction processing benchmark", 81, 978),
    "jbb2005": ("SPEC Transaction processing benchmark", 65, 702),
}


@dataclass
class Table1Row:
    name: str
    description: str
    classes: int
    methods: int
    paper_classes: int
    paper_methods: int


def table1() -> list[Table1Row]:
    rows = []
    for spec in paper_workloads():
        classes, methods = spec.table1_counts()
        paper_desc, paper_classes, paper_methods = PAPER_TABLE1[spec.name]
        rows.append(
            Table1Row(
                name=spec.name,
                description=spec.description,
                classes=classes,
                methods=methods,
                paper_classes=paper_classes,
                paper_methods=paper_methods,
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    lines = [
        "Table 1: benchmarks (ours vs. paper's Java originals)",
        f"{'program':12s} {'description':40s} {'cls':>4s} {'mth':>5s} "
        f"{'cls(paper)':>10s} {'mth(paper)':>10s}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:12s} {r.description:40s} {r.classes:>4d} "
            f"{r.methods:>5d} {r.paper_classes:>10d} {r.paper_methods:>10d}"
        )
    return "\n".join(lines)
