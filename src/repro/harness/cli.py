"""Command-line interface: ``jx <subcommand>``.

Subcommands:

* ``run FILE``            — compile and execute a Jx source file;
* ``disasm FILE``         — print the program's bytecode;
* ``workloads``           — list registered benchmark workloads;
* ``plan WORKLOAD``       — run the offline pipeline, print the plan;
* ``compare WORKLOAD``    — measure mutation on vs. off (with a
  telemetry summary: compile seconds by tier, TIB swaps, hooks);
* ``trace WORKLOAD``      — run under telemetry, write Chrome-trace
  JSON for chrome://tracing / Perfetto (``-o trace.json``);
* ``stats WORKLOAD``      — run under telemetry, print the counters /
  histograms / event-taxonomy report;
* ``heap WORKLOAD``       — run, print the modeled-heap report (packed
  vs declared bytes, pinning/unboxing savings, top classes);
* ``serve WORKLOAD``      — run N concurrent sessions over one shared
  code space (``--sessions N --workers K``); exits nonzero if any two
  same-seed sessions diverge (cross-tenant leakage);
* ``table1``              — regenerate Table 1;
* ``fig N``               — regenerate Figure N (9..15).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.lang import compile_source
from repro.lang.errors import JxError
from repro.mutation import build_mutation_plan
from repro.vm.runtime import VM
from repro.vm.values import VMRuntimeError
from repro.workloads.registry import all_workloads, get_workload


def _cache_dir(args: argparse.Namespace) -> str | None:
    """The compile-cache directory: ``--cache-dir`` or JX_CACHE_DIR."""
    return getattr(args, "cache_dir", None) or \
        os.environ.get("JX_CACHE_DIR") or None


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    unit = compile_source(source, filename=args.file)
    plan = None
    if args.mutate:
        plan = build_mutation_plan(source)
    vm = VM(unit, mutation_plan=plan, compile_cache=_cache_dir(args))
    result = vm.run()
    sys.stdout.write(result.output)
    if args.stats:
        line = (f"--- wall: {result.wall_seconds:.3f}s "
                f"compile: {result.compile_seconds:.3f}s")
        if vm.compile_cache is not None:
            cache = vm.compile_cache
            line += (f" cache: {cache.hits} hits / {cache.misses} misses"
                     f" ({vm.compile_stats.cached_methods} methods"
                     f" warm-linked)")
        print(line, file=sys.stderr)
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.bytecode import disassemble_program

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    unit = compile_source(source, filename=args.file)
    if not args.quick:
        print(disassemble_program(unit))
        return 0
    # Quickened bodies only exist in a linked, executed VM (quickening
    # happens at tier-up), so --quick runs the program first.  Asking
    # for the quickened view forces quickening on even under
    # JX_QUICKEN=0.
    from repro.bytecode import disassemble_quick
    from repro.vm.runtime import VMConfig

    plan = build_mutation_plan(source) if args.mutate else None
    vm = VM(unit, mutation_plan=plan, config=VMConfig(quicken=True))
    vm.run()
    shown = 0
    for rc in vm.classes.values():
        for rm in rc.own_methods.values():
            if rm.quick_code:
                print(disassemble_quick(rm))
                shown += 1
    if not shown:
        print("(no quickened methods; quickening disabled or "
              "nothing reached the quickening tier)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_source, lint_workload

    targets: list[tuple[str, list]] = []
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            source = handle.read()
        targets.append((
            args.file,
            lint_source(source, filename=args.file, tv=args.tv),
        ))
    else:
        names = args.workloads or [
            spec.name for spec in all_workloads()
        ]
        for name in names:
            spec = get_workload(name)
            targets.append((name, lint_workload(spec, tv=args.tv)))
    total = 0
    for name, findings in targets:
        if findings:
            total += len(findings)
            print(f"{name}: {len(findings)} finding(s)")
            for finding in findings:
                print(f"  {finding.format()}")
        else:
            print(f"{name}: clean")
    if total and args.strict:
        print(f"jx lint: {total} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for spec in all_workloads():
        print(f"{spec.name:12s} {spec.description}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = get_workload(args.workload)
    plan = build_mutation_plan(
        spec.profile_source(), entry_class=spec.entry_class
    )
    print(plan.describe())
    if args.json:
        from repro.profiling import plan_to_json

        print(plan_to_json(plan))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.harness.experiment import (
        compare_workload,
        telemetry_compile_summary,
    )

    spec = get_workload(args.workload)
    cache_dir = _cache_dir(args)
    comparison = compare_workload(
        spec, repeats=args.repeats, telemetry=not args.no_telemetry,
        cache=cache_dir,
    )
    print(f"{spec.name}: baseline {comparison.baseline.wall_seconds:.3f}s, "
          f"mutated {comparison.mutated.wall_seconds:.3f}s, "
          f"speedup {comparison.speedup:+.1%}, "
          f"outputs match: {comparison.outputs_match}")
    if not args.no_telemetry:
        base = telemetry_compile_summary(
            comparison.baseline.telemetry_report
        )
        mut = telemetry_compile_summary(
            comparison.mutated.telemetry_report
        )

        def tiers(summary: dict) -> str:
            by_tier = summary["compile_seconds_by_tier"]
            return " ".join(
                f"{tier}={seconds:.3f}s"
                for tier, seconds in sorted(by_tier.items())
            ) or "-"

        print(f"  compile seconds  baseline {base['compile_seconds_total']:.3f}s"
              f" ({tiers(base)})")
        print(f"                   mutated  {mut['compile_seconds_total']:.3f}s"
              f" ({tiers(mut)})")
        print(f"  tib swaps        baseline {base['tib_swaps']}, "
              f"mutated {mut['tib_swaps']} "
              f"(of which {mut['deopt_swaps']} back to class TIB; "
              f"{mut['swaps_coalesced']} coalesced)")
        print(f"  hooks fired      baseline {base['hooks_fired']}, "
              f"mutated {mut['hooks_fired']}; "
              f"specials compiled: {mut['specials_compiled']} "
              f"(+{mut['specials_shared']} shared); "
              f"memo hits: {mut['memo_hits']}")
    bm, mm = comparison.baseline, comparison.mutated
    if bm.declared_heap_bytes:
        saved = 1.0 - bm.modeled_heap_bytes / bm.declared_heap_bytes
        print(f"  heap             baseline {bm.modeled_heap_bytes}B modeled"
              f" vs {bm.declared_heap_bytes}B declared ({saved:.1%} packed"
              f" out); mutated {mm.modeled_heap_bytes}B, "
              f"{mm.shape_transitions} layout transitions")
    if cache_dir is not None:
        b, m = comparison.baseline, comparison.mutated
        hits = b.cache_hits + m.cache_hits
        lookups = hits + b.cache_misses + m.cache_misses
        rate = hits / lookups if lookups else 0.0
        print(f"  compile cache    hit rate {rate:.0%} "
              f"({hits}/{lookups} lookups) in {cache_dir}")
        print(f"  warm vs cold     baseline "
              f"{b.cold_compile_seconds:.3f}s -> "
              f"{b.warm_compile_seconds:.3f}s compile; mutated "
              f"{m.cold_compile_seconds:.3f}s -> "
              f"{m.warm_compile_seconds:.3f}s")
    if not comparison.outputs_match:
        print(f"jx compare: {spec.name}: baseline and mutated outputs "
              f"differ", file=sys.stderr)
        return 1
    return 0


def _run_instrumented(args: argparse.Namespace):
    """Shared driver for ``trace``/``stats``: one telemetry-enabled run
    of the workload (mutation on by default, like ``compare``'s mutated
    side)."""
    from repro.lang import compile_source as _compile
    from repro.telemetry import Telemetry
    from repro.vm.runtime import VM as _VM

    spec = get_workload(args.workload)
    scale = args.scale if args.scale is not None else spec.bench_scale
    source = spec.source(scale)
    plan = None
    if not args.no_mutate:
        plan = build_mutation_plan(
            spec.profile_source(), entry_class=spec.entry_class
        )
    telemetry = Telemetry(capacity=args.capacity)
    unit = _compile(
        source,
        filename=f"<{spec.name}>",
        entry_class=spec.entry_class,
        entry_method=spec.entry_method,
    )
    vm = _VM(unit, mutation_plan=plan, telemetry=telemetry,
             compile_cache=_cache_dir(args))
    result = vm.run()
    return spec, vm, result, telemetry


def _unboxed_fields(vm) -> int:
    from repro.vm.shapes import UnboxedField

    return sum(
        1
        for rc in vm.classes.values()
        for finfo in rc.info.fields.values()
        if isinstance(finfo.slot, UnboxedField)
    )


def _cmd_heap(args: argparse.Namespace) -> int:
    spec, vm, _result, _telemetry = _run_instrumented(args)
    heap = vm.heap
    declared = heap.declared_object_bytes
    modeled = heap.modeled_object_bytes()
    saved = (1.0 - modeled / declared) if declared else 0.0
    print(f"{spec.name}: heap report "
          f"(shapes {'on' if vm.config.shapes else 'off'})")
    print(f"objects      {heap.objects_allocated} allocated; "
          f"{modeled}B modeled vs {declared}B declared "
          f"({saved:.1%} packed out)")
    print(f"arrays       {heap.arrays_allocated} allocated; "
          f"{heap.array_bytes}B (width-scaled elements)")
    print(f"pinning      transitions={heap.shape_transitions} "
          f"dropped={heap.pinned_bytes_dropped}B "
          f"restored={heap.pinned_bytes_restored}B")
    print(f"unboxed      {_unboxed_fields(vm)} field(s) removed from "
          f"instances")
    print("top classes by modeled bytes")
    print(f"  {'class':24s} {'count':>8s} {'bytes':>10s} "
          f"{'packed':>7s} {'declared':>9s}")
    for name, total in heap.top_classes_by_bytes(args.top):
        rc = vm.classes.get(name)
        packed = rc.alloc_bytes if rc and rc.alloc_bytes else "-"
        decl = rc.declared_bytes if rc and rc.declared_bytes else "-"
        print(f"  {name:24s} {heap.per_class.get(name, 0):>8d} "
              f"{total:>10d} {packed!s:>7s} {decl!s:>9s}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import write_chrome_trace

    spec, _vm, result, telemetry = _run_instrumented(args)
    write_chrome_trace(
        telemetry, args.output, process_name=f"JxVM:{spec.name}"
    )
    print(f"{spec.name}: {telemetry.bus.total_emitted} events "
          f"({telemetry.bus.dropped} dropped) in "
          f"{result.wall_seconds:.3f}s -> {args.output}", file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import format_opt_pass_report, format_text_report

    spec, vm, _result, telemetry = _run_instrumented(args)
    print(format_text_report(
        telemetry, title=f"JxVM telemetry: {spec.name}"
    ))
    stats = vm.mutation_stats
    print(f"osr          enters={stats.osr_enters} "
          f"deopts={stats.osr_deopts}")
    # Specials/memo lines read the unified VMStats counters (the same
    # source ``manager.describe()`` aliases), so per-session numbers
    # under ``jx serve`` and solo runs report identically.
    print(f"specials     compiled={stats.specials_compiled} "
          f"shared={stats.specials_shared} "
          f"tibs_shared={stats.special_tibs_shared}")
    print(f"memo         hits={stats.memo_hits} "
          f"fills={vm.memo.fills} entries={len(vm.memo.entries)}")
    # Same single-source-of-truth rule as the swap accounting: these
    # read the VMStats fields that the telemetry counters and the
    # ``tv_validated`` events bump in lockstep (three-way agreement is
    # test-pinned).
    print(f"lint/tv      {'on' if vm.config.tv else 'off'} "
          f"bodies_validated={stats.tv_bodies_validated} "
          f"findings={stats.tv_findings} "
          f"downgrades={stats.tv_downgrades} "
          f"seconds={vm.tv_seconds:.3f}")
    heap = vm.heap
    print(f"heap         objects={heap.objects_allocated} "
          f"modeled={heap.modeled_object_bytes()}B "
          f"declared={heap.declared_object_bytes}B "
          f"arrays={heap.array_bytes}B")
    print(f"shapes       {'on' if vm.config.shapes else 'off'} "
          f"transitions={heap.shape_transitions} "
          f"dropped={heap.pinned_bytes_dropped}B "
          f"restored={heap.pinned_bytes_restored}B "
          f"unboxed={_unboxed_fields(vm)}")
    budget = format_opt_pass_report(telemetry)
    if budget:
        print(budget)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import CompileCache

    directory = _cache_dir(args)
    if directory is None:
        print("jx cache: no cache directory (pass --cache-dir or set "
              "JX_CACHE_DIR)", file=sys.stderr)
        return 2
    cache = CompileCache(directory)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {directory}")
        return 0
    stats = cache.stats()
    print(f"cache dir    {stats['dir']}")
    print(f"entries      {stats['entries']} "
          f"({stats['bytes']} bytes; {stats['stale_entries']} stale "
          f"from other VM versions)")
    tiers = " ".join(
        f"{tier}={count}" for tier, count in sorted(
            stats["by_tier"].items()
        )
    ) or "-"
    print(f"by tier      {tiers}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import serve_workload

    report = serve_workload(
        args.workload,
        sessions=args.sessions,
        workers=args.workers,
        seed=args.seed,
        scale=args.scale,
        mutate=not args.no_mutate,
        cache=_cache_dir(args),
    )
    print(report.describe())
    for result in report.results:
        print(f"  session {result.session_id}: "
              f"{result.wall_seconds:.3f}s "
              f"{result.tib_swaps} swaps "
              f"digest {result.digest[:16]}"
              + (f"  ERROR {result.error}" if result.error else ""))
    if report.errors:
        print("jx serve: session errors", file=sys.stderr)
        return 1
    if not report.digests_identical:
        # Same-seed sessions diverging means tenant state leaked across
        # the shared code space — never acceptable.
        print("jx serve: DIGEST MISMATCH across sessions",
              file=sys.stderr)
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.tables import format_table1, table1

    print(format_table1(table1()))
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro.harness import figures as F

    n = args.number
    if n == 9:
        print(F.format_rows("Figure 9: speedup", F.fig9_speedups()))
    elif n == 10:
        print(F.format_rows("Figure 10: code size increase",
                            F.fig10_code_size()))
    elif n == 11:
        print(F.format_rows("Figure 11: compile time increase",
                            F.fig11_compile_time(),
                            extra_keys=("compile_fraction_pct",)))
    elif n == 12:
        print(F.format_rows("Figure 12: TIB space increase (bytes)",
                            F.fig12_tib_space(), unit="B",
                            extra_keys=("relative_pct",)))
    elif n == 13:
        print(F.format_warehouses("Figure 13: JBB2000 warehouses",
                                  F.fig13_jbb2000_warehouses()))
    elif n == 14:
        print(F.format_warehouses("Figure 14: JBB2000 accelerated",
                                  F.fig14_jbb2000_accelerated()))
    elif n == 15:
        print(F.format_warehouses("Figure 15: JBB2005 warehouses",
                                  F.fig15_jbb2005_warehouses()))
    else:
        print(f"unknown figure {n}; available: 9-15", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="jx",
        description="JxVM: dynamic class hierarchy mutation reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cache_help = ("persistent compile-cache directory "
                  "(default: $JX_CACHE_DIR)")

    p = sub.add_parser("run", help="compile and run a Jx source file")
    p.add_argument("file")
    p.add_argument("--mutate", action="store_true",
                   help="run the offline pipeline and enable mutation")
    p.add_argument("--stats", action="store_true")
    p.add_argument("--cache-dir", default=None, help=cache_help)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("disasm", help="disassemble a Jx source file")
    p.add_argument("file")
    p.add_argument("--quick", action="store_true",
                   help="run the program, then disassemble the "
                        "quickened bodies (superinstructions, packed "
                        "args, covered slots)")
    p.add_argument("--mutate", action="store_true",
                   help="with --quick: run under a mutation plan")
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser(
        "lint",
        help="statically verify mutation invariants (hook completeness, "
             "deferral regions, lifetime constants, quick-code hooks)",
    )
    p.add_argument("workloads", nargs="*",
                   help="workloads to lint (default: all)")
    p.add_argument("--file", default=None,
                   help="lint a Jx source file instead of workloads")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero if any finding is reported")
    p.add_argument("--tv", action="store_true",
                   help="also run the translation validator: re-prove "
                        "every transformed code surface (quickened "
                        "bodies, shape layouts, OSR entries, shared "
                        "specials) equivalent to its pristine source")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("workloads", help="list benchmark workloads")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser("plan", help="print a workload's mutation plan")
    p.add_argument("workload")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("compare", help="measure mutation on vs off")
    p.add_argument("workload")
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--no-telemetry", action="store_true",
                   help="skip the telemetry summary (slightly faster)")
    p.add_argument("--cache-dir", default=None, help=cache_help)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser(
        "trace",
        help="run a workload under telemetry, write Chrome-trace JSON",
    )
    p.add_argument("workload")
    p.add_argument("-o", "--output", default="trace.json")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default: the bench scale)")
    p.add_argument("--no-mutate", action="store_true",
                   help="run without a mutation plan")
    p.add_argument("--capacity", type=int, default=65536,
                   help="event ring-buffer capacity")
    p.add_argument("--cache-dir", default=None, help=cache_help)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "stats",
        help="run a workload under telemetry, print the metrics report",
    )
    p.add_argument("workload")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default: the bench scale)")
    p.add_argument("--no-mutate", action="store_true",
                   help="run without a mutation plan")
    p.add_argument("--capacity", type=int, default=65536,
                   help="event ring-buffer capacity")
    p.add_argument("--cache-dir", default=None, help=cache_help)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "heap",
        help="run a workload, print the modeled-heap report (packed vs "
             "declared bytes, pinning, unboxing, top classes)",
    )
    p.add_argument("workload")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default: the bench scale)")
    p.add_argument("--no-mutate", action="store_true",
                   help="run without a mutation plan")
    p.add_argument("--top", type=int, default=10,
                   help="classes to list (default 10)")
    p.add_argument("--capacity", type=int, default=65536,
                   help="event ring-buffer capacity")
    p.add_argument("--cache-dir", default=None, help=cache_help)
    p.set_defaults(fn=_cmd_heap)

    p = sub.add_parser(
        "cache", help="inspect or clear the persistent compile cache"
    )
    p.add_argument("cache_command", choices=("stats", "clear"))
    p.add_argument("--cache-dir", default=None, help=cache_help)
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="serve N concurrent sessions over one shared code space",
    )
    p.add_argument("workload")
    p.add_argument("--sessions", type=int, default=4)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default: bench scale)")
    p.add_argument("--no-mutate", action="store_true",
                   help="serve without a mutation plan")
    p.add_argument("--cache-dir", default=None, help=cache_help)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("fig", help="regenerate a figure (9-15)")
    p.add_argument("number", type=int)
    p.set_defaults(fn=_cmd_fig)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (VMRuntimeError, JxError, OSError, KeyError) as exc:
        # Workload/compile/IO failures exit nonzero (they used to be
        # unhandled or swallowed into exit code 0).
        print(f"jx: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
