"""Experiment harness regenerating every table and figure of the paper."""

from repro.harness.experiment import (
    Comparison,
    Measurement,
    WarehouseComparison,
    WarehouseSeries,
    compare_warehouses,
    compare_workload,
    run_warehouses,
    run_workload,
)
from repro.harness.tables import Table1Row, format_table1, table1

__all__ = [
    "Comparison",
    "Measurement",
    "Table1Row",
    "WarehouseComparison",
    "WarehouseSeries",
    "compare_warehouses",
    "compare_workload",
    "format_table1",
    "run_warehouses",
    "run_workload",
    "table1",
]
