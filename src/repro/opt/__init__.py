"""The JxVM optimizing compiler: IR, analyses, passes, and backends."""

from repro.opt.boundselim import eliminate_bounds_checks
from repro.opt.branchfold import cleanup_cfg, fold_branches
from repro.opt.constprop import constant_propagation
from repro.opt.dce import dead_code_elimination
from repro.opt.inline import InlineConfig, inline_calls
from repro.opt.ir import Block, Const, Extra, IRFunction, IRInstr, Reg
from repro.opt.lowering import lower_method
from repro.opt.pipeline import OptCompiler, OptConfig
from repro.opt.simplify import simplify
from repro.opt.specialize import SpecBindings, specialize_ir
from repro.opt.strength import strength_reduce

__all__ = [
    "Block",
    "Const",
    "Extra",
    "IRFunction",
    "IRInstr",
    "InlineConfig",
    "OptCompiler",
    "OptConfig",
    "Reg",
    "SpecBindings",
    "cleanup_cfg",
    "constant_propagation",
    "dead_code_elimination",
    "eliminate_bounds_checks",
    "fold_branches",
    "inline_calls",
    "lower_method",
    "simplify",
    "specialize_ir",
    "strength_reduce",
]
