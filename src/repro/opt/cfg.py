"""CFG utilities over the IR: predecessors, dominators, natural loops.

These mirror :mod:`repro.opt.bytecode_cfg` but operate on
:class:`~repro.opt.ir.IRFunction` block graphs, for use by the
optimization passes (loop depth guides inlining heuristics; dominators
guide bounds-check elimination).
"""

from __future__ import annotations

from repro.opt.ir import IRFunction


def predecessors(fn: IRFunction) -> dict[int, list[int]]:
    """Predecessor lists for every reachable block."""
    preds: dict[int, list[int]] = {bid: [] for bid in fn.reachable_ids()}
    for block in fn.block_order():
        for s in block.successors():
            preds.setdefault(s, []).append(block.id)
    return preds


def reverse_postorder(fn: IRFunction) -> list[int]:
    return [b.id for b in fn.block_order()]


def immediate_dominators(fn: IRFunction) -> dict[int, int | None]:
    """Iterative dominator computation (CHK) over the reachable graph."""
    rpo = reverse_postorder(fn)
    order = {b: i for i, b in enumerate(rpo)}
    preds = predecessors(fn)
    idom: dict[int, int | None] = {fn.entry: fn.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order[a] > order[b]:
                a = idom[a]  # type: ignore[assignment]
            while order[b] > order[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for b in rpo:
            if b == fn.entry:
                continue
            candidates = [p for p in preds.get(b, []) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(b) != new_idom:
                idom[b] = new_idom
                changed = True
    idom[fn.entry] = None
    return idom


def dominates(idom: dict[int, int | None], a: int, b: int) -> bool:
    cur: int | None = b
    while cur is not None:
        if cur == a:
            return True
        cur = idom.get(cur)
    return False


def natural_loops(fn: IRFunction) -> list[tuple[int, set[int]]]:
    """``(header, body)`` pairs; back edges to one header are merged."""
    idom = immediate_dominators(fn)
    preds = predecessors(fn)
    by_header: dict[int, set[int]] = {}
    for block in fn.block_order():
        for s in block.successors():
            if dominates(idom, s, block.id):
                body = by_header.setdefault(s, {s})
                work = [block.id]
                while work:
                    b = work.pop()
                    if b in body:
                        continue
                    body.add(b)
                    work.extend(preds.get(b, []))
    return sorted(by_header.items())


def loop_depths(fn: IRFunction) -> dict[int, int]:
    """Loop nesting depth per reachable block id."""
    depths = {bid: 0 for bid in fn.reachable_ids()}
    for _, body in natural_loops(fn):
        for b in body:
            depths[b] += 1
    return depths
