"""The optimizing compiler's intermediate representation.

A register-transfer IR organized into basic blocks.  Temporaries are
single-assignment by construction; locals (``l0``, ``l1``, ...) and
block-entry stack registers are mutable (classic "register-ized, not
SSA"), which the dataflow passes handle with meet-over-paths analyses.

Instruction catalog (``IRInstr.op``):

===============  ======================================================
``mov``          dest <- args[0]
binary ops       ``add sub mul idiv fdiv irem shl shr band bor bxor``
                 ``lt le gt ge eq ne concat``: dest <- args[0] op args[1]
unary ops        ``neg not i2d d2i``: dest <- op args[0]
``getfield``     dest <- args[0].fields[extra.slot]
``putfield``     args[0].fields[extra.slot] <- args[1]  (extra.hook)
``getstatic``    dest <- jtoc[extra.slot]
``putstatic``    jtoc[extra.slot] <- args[0]  (extra.hook)
``new``          dest <- allocate extra.rc
``newarray``     dest <- array(extra.elem, len=args[0], fill=extra.fill)
``aload``        dest <- args[0].data[args[1]]  (extra.bounds)
``astore``       args[0].data[args[1]] <- args[2]  (extra.bounds)
``arraylen``     dest <- len(args[0].data)
``instanceof``   dest <- args[0] isa extra.rc
``checkcast``    raise unless args[0] isa extra.rc
``callv``        dest? <- virtual call, extra.offset, args=[recv, ...]
``calls``        dest? <- static call through extra.cell
``callsp``       dest? <- special call of extra.rm
``calli``        dest? <- interface call, extra.slot/extra.key
``intr``         dest? <- intrinsic extra.intrinsic
``deoptcheck``   if args[0].tib is not extra.tib: deopt to the
                 interpreter at bytecode extra.pc with args[1:] as the
                 locals named by extra.live (OSR mid-frame bail-out;
                 :mod:`repro.vm.osr`)
===============  ======================================================

Terminators (exactly one, last in each block): ``jump`` (extra.target),
``br`` (args[0]; extra.if_true/extra.if_false), ``ret`` (args optional).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

# -- operand kinds ----------------------------------------------------------


class Reg:
    """A virtual register."""

    __slots__ = ("name",)

    _counter = itertools.count()

    def __init__(self, name: str | None = None) -> None:
        self.name = name if name is not None else f"t{next(Reg._counter)}"

    def __repr__(self) -> str:
        return f"%{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


class Const:
    """An immediate operand."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"#{self.value!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Const)
            and type(other.value) is type(self.value)
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((type(self.value), repr(self.value)))


Operand = Reg | Const


@dataclass
class Extra:
    """Opcode-specific payload; unused fields stay None."""

    slot: int | None = None
    key: str | None = None
    hook: Any = None
    rc: Any = None
    rm: Any = None
    cell: Any = None
    offset: int | None = None
    intrinsic: Any = None
    elem: str | None = None
    fill: Any = None
    bounds: bool = True
    returns: bool = False
    target: int | None = None
    if_true: int | None = None
    if_false: int | None = None
    name: str = ""
    #: Bytecode pc this instruction's state maps back to — the resume
    #: point a deopt transfers the frame to.  Recorded at lowering only
    #: where the interpreter frame is fully reconstructible (operand
    #: stack provably empty); never propagated through inlining (an
    #: inlined callee's pcs are meaningless in the caller's frame).
    pc: int | None = None
    #: Local slots live at ``pc`` (the OSR compensation set), as a
    #: sorted list of indices.
    live: list | None = None
    #: The special TIB a ``deoptcheck`` guards (runtime object; never
    #: serialized — the opt2 pin table carries it symbolically).
    tib: Any = None


BINARY_OPS = frozenset(
    "add sub mul idiv fdiv irem shl shr band bor bxor "
    "lt le gt ge eq ne concat".split()
)
UNARY_OPS = frozenset("neg not i2d d2i".split())
CALL_OPS = frozenset("callv calls callsp calli intr".split())
TERMINATORS = frozenset("jump br ret".split())

#: Ops with no side effects: deletable when the dest is dead.  Loads are
#: included deliberately: JxVM treats a dead field/array load's potential
#: NPE as deletable (documented deviation from strict Java semantics).
PURE_OPS = (
    BINARY_OPS - {"idiv", "irem", "fdiv"}
) | UNARY_OPS | frozenset({"mov", "getfield", "getstatic", "arraylen",
                           "instanceof"})


class IRInstr:
    """One IR instruction."""

    __slots__ = ("op", "dest", "args", "extra", "line")

    def __init__(
        self,
        op: str,
        dest: Reg | None = None,
        args: list[Operand] | None = None,
        extra: Extra | None = None,
        line: int = 0,
    ) -> None:
        self.op = op
        self.dest = dest
        self.args = args if args is not None else []
        self.extra = extra if extra is not None else Extra()
        self.line = line

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def is_call(self) -> bool:
        return self.op in CALL_OPS

    def uses(self) -> Iterator[Operand]:
        yield from self.args

    def __repr__(self) -> str:
        parts = [self.op]
        if self.dest is not None:
            parts.insert(0, f"{self.dest!r} =")
        parts.append(", ".join(repr(a) for a in self.args))
        ex = self.extra
        details = []
        if ex.slot is not None:
            details.append(f"slot={ex.slot}")
        if ex.offset is not None:
            details.append(f"off={ex.offset}")
        if ex.name:
            details.append(ex.name)
        if ex.target is not None:
            details.append(f"->bb{ex.target}")
        if ex.if_true is not None:
            details.append(f"T->bb{ex.if_true} F->bb{ex.if_false}")
        if details:
            parts.append("{" + " ".join(details) + "}")
        return " ".join(p for p in parts if p)


@dataclass
class Block:
    """A basic block: straight-line instructions + one terminator."""

    id: int
    instrs: list[IRInstr] = field(default_factory=list)

    @property
    def terminator(self) -> IRInstr:
        return self.instrs[-1]

    def successors(self) -> list[int]:
        term = self.terminator
        if term.op == "jump":
            return [term.extra.target]
        if term.op == "br":
            return [term.extra.if_true, term.extra.if_false]
        return []

    def __repr__(self) -> str:
        return f"<bb{self.id}: {len(self.instrs)} instrs>"


class IRFunction:
    """One method's IR: parameters, locals, and a block graph."""

    def __init__(
        self,
        name: str,
        num_args: int,
        max_locals: int,
        returns_value: bool,
    ) -> None:
        self.name = name
        self.num_args = num_args
        self.max_locals = max_locals
        self.returns_value = returns_value
        self.blocks: dict[int, Block] = {}
        self.entry = 0
        self._next_block_id = 0
        #: Static parameter type tags ("int"/"double"/"bool"/"str"/"ref"),
        #: index-aligned with l0..l(num_args-1); filled by the lowerer and
        #: consumed by type inference.
        self.param_kinds: list[str] = []

    def new_block(self) -> Block:
        block = Block(self._next_block_id)
        self.blocks[block.id] = block
        self._next_block_id += 1
        return block

    def local_reg(self, index: int) -> Reg:
        return Reg(f"l{index}")

    def block_order(self) -> list[Block]:
        """Blocks in reverse postorder from the entry."""
        seen: set[int] = set()
        postorder: list[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(self.blocks[bid].successors()))]
            seen.add(bid)
            while stack:
                cur, succ_iter = stack[-1]
                advanced = False
                for s in succ_iter:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(self.blocks[s].successors())))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(cur)
                    stack.pop()

        visit(self.entry)
        return [self.blocks[b] for b in reversed(postorder)]

    def reachable_ids(self) -> set[int]:
        return {b.id for b in self.block_order()}

    def instr_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks.values())

    def pretty(self) -> str:
        lines = [f"func {self.name} (args={self.num_args})"]
        for block in self.block_order():
            lines.append(f"bb{block.id}:")
            for instr in block.instrs:
                lines.append(f"  {instr!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<IRFunction {self.name}: {len(self.blocks)} blocks>"


def clone_ir(fn: IRFunction) -> IRFunction:
    """Deep-copy an IRFunction so passes can mutate the copy freely.

    Registers and constant operands are immutable value objects and are
    shared; instructions and Extra payloads are fresh.  Block ids are
    preserved, so branch targets copy over unchanged.
    """
    out = IRFunction(fn.name, fn.num_args, fn.max_locals, fn.returns_value)
    out.entry = fn.entry
    out.param_kinds = list(fn.param_kinds)
    out._next_block_id = fn._next_block_id
    for bid, block in fn.blocks.items():
        new_block = Block(bid)
        for instr in block.instrs:
            ex = instr.extra
            new_block.instrs.append(
                IRInstr(
                    instr.op,
                    instr.dest,
                    list(instr.args),
                    Extra(
                        slot=ex.slot,
                        key=ex.key,
                        hook=ex.hook,
                        rc=ex.rc,
                        rm=ex.rm,
                        cell=ex.cell,
                        offset=ex.offset,
                        intrinsic=ex.intrinsic,
                        elem=ex.elem,
                        fill=ex.fill,
                        bounds=ex.bounds,
                        returns=ex.returns,
                        target=ex.target,
                        if_true=ex.if_true,
                        if_false=ex.if_false,
                        name=ex.name,
                        pc=ex.pc,
                        live=list(ex.live) if ex.live is not None else None,
                        tib=ex.tib,
                    ),
                    instr.line,
                )
            )
        out.blocks[bid] = new_block
    return out
