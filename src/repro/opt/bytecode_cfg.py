"""Control-flow analysis over *bytecode* (pre-IR).

Used by the bytecode-to-IR lowering (block partition) and by the offline
state-field analysis (paper EQ1 needs the loop nesting level ``Li`` of
each branch/assignment instruction).

Implements: leader-based block partition, iterative dominator analysis
(Cooper-Harvey-Kennedy style on reverse postorder), natural-loop
detection from back edges, and per-instruction loop depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.opcodes import Op


@dataclass
class BcBlock:
    """A bytecode basic block ``[start, end)``."""

    id: int
    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


class BytecodeCFG:
    """CFG, dominators, and loop nesting for one method's bytecode."""

    def __init__(self, method: MethodInfo) -> None:
        self.method = method
        self.blocks: list[BcBlock] = []
        self.block_of_instr: list[int] = []
        self._build()
        self.idom = self._dominators()
        self.loop_depth = self._loop_depths()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        code = self.method.code
        n = len(code)
        leaders = {0}
        for i, instr in enumerate(code):
            if instr.op is Op.JUMP:
                leaders.add(instr.arg)
                if i + 1 < n:
                    leaders.add(i + 1)
            elif instr.op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
                leaders.add(instr.arg)
                leaders.add(i + 1)
            elif instr.op in (Op.RETURN, Op.RETURN_VOID):
                if i + 1 < n:
                    leaders.add(i + 1)
        starts = sorted(leaders)
        start_to_block = {s: idx for idx, s in enumerate(starts)}
        self.block_of_instr = [0] * n
        for idx, start in enumerate(starts):
            end = starts[idx + 1] if idx + 1 < len(starts) else n
            self.blocks.append(BcBlock(id=idx, start=start, end=end))
            for i in range(start, end):
                self.block_of_instr[i] = idx
        for block in self.blocks:
            last = code[block.end - 1]
            if last.op is Op.JUMP:
                block.succs = [start_to_block[last.arg]]
            elif last.op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
                # Fall-through first, then the branch target.
                block.succs = [
                    start_to_block[block.end],
                    start_to_block[last.arg],
                ]
            elif last.op in (Op.RETURN, Op.RETURN_VOID):
                block.succs = []
            else:
                block.succs = [start_to_block[block.end]]
        for block in self.blocks:
            for s in block.succs:
                self.blocks[s].preds.append(block.id)

    # ------------------------------------------------------------------

    def reverse_postorder(self) -> list[int]:
        seen: set[int] = set()
        postorder: list[int] = []
        stack = [(0, iter(self.blocks[0].succs))]
        seen.add(0)
        while stack:
            cur, succ_iter = stack[-1]
            advanced = False
            for s in succ_iter:
                if s not in seen:
                    seen.add(s)
                    stack.append((s, iter(self.blocks[s].succs)))
                    advanced = True
                    break
            if not advanced:
                postorder.append(cur)
                stack.pop()
        return list(reversed(postorder))

    def _dominators(self) -> dict[int, int | None]:
        """Immediate dominators (entry's idom is None)."""
        rpo = self.reverse_postorder()
        order = {b: i for i, b in enumerate(rpo)}
        idom: dict[int, int | None] = {0: 0}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while order.get(a, -1) > order.get(b, -1):
                    a = idom[a]
                while order.get(b, -1) > order.get(a, -1):
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for b in rpo:
                if b == 0:
                    continue
                preds = [
                    p for p in self.blocks[b].preds if p in idom and p in order
                ]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = intersect(new_idom, p)
                if idom.get(b) != new_idom:
                    idom[b] = new_idom
                    changed = True
        result: dict[int, int | None] = dict(idom)
        result[0] = None
        return result

    def dominates(self, a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b``."""
        cur: int | None = b
        while cur is not None:
            if cur == a:
                return True
            cur = self.idom.get(cur)
        return False

    def natural_loops(self) -> list[tuple[int, set[int]]]:
        """``(header, body-block-ids)``, back edges to one header merged."""
        by_header: dict[int, set[int]] = {}
        reachable = set(self.reverse_postorder())
        for block in self.blocks:
            if block.id not in reachable:
                continue
            for s in block.succs:
                if self.dominates(s, block.id):
                    body = by_header.setdefault(s, {s})
                    work = [block.id]
                    while work:
                        b = work.pop()
                        if b in body:
                            continue
                        body.add(b)
                        work.extend(self.blocks[b].preds)
        return sorted(by_header.items())

    def _loop_depths(self) -> list[int]:
        """Loop nesting depth for every instruction index."""
        depth_of_block = [0] * len(self.blocks)
        for _, body in self.natural_loops():
            for b in body:
                depth_of_block[b] += 1
        if not self.method.code:
            return []
        return [
            depth_of_block[self.block_of_instr[i]]
            for i in range(len(self.method.code))
        ]

    def instr_loop_depth(self, index: int) -> int:
        return self.loop_depth[index]
