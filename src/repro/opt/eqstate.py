"""Equivalence-modulo-state analysis for specialization sharing.

Fig. 10/12's cost model is linear: every hot state gets its own special
TIB and its own compiled copy of every mutable method, even when the
method never reads the fields two states differ on.  The EMS insight
(PAPERS.md, "Faster Mutation Analysis via Equivalence Modulo States")
is that a specialized body only depends on the *projection* of the hot
state onto the state-field slots the method actually reads — two states
with equal projections compile to byte-identical code and can share one
body.

:func:`state_reads` computes that read set on the post-inline opt2 IR
(the exact IR :func:`repro.opt.specialize.specialize_ir` rewrites),
flow-sensitively via :func:`repro.analysis.dataflow.solve_forward`: a
read dominated on every path by a write of the same slot never reaches
the specializer's constants, so it does not count.  Slots the method
writes anywhere are then subtracted outright, mirroring
``specialize_ir``'s conservative skip sets — the result is exactly the
set of slots whose bound values can influence the generated code, so

    projections equal  =>  specialized bodies identical.

:func:`ir_is_pure` is the memoization gate (:mod:`repro.vm.memo`): it
accepts a *specialized* body only when every instruction is a pure
register-to-register computation — no heap or static access, no
allocation, no calls, no deopt guards — so the result is a function of
the arguments and the baked-in state constants alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import solve_forward
from repro.opt.ir import BINARY_OPS, UNARY_OPS, IRFunction, Reg
from repro.opt.specialize import (
    _written_instance_slots,
    _written_static_slots,
    this_aliases,
)

__all__ = ["StateReads", "state_reads", "ir_is_pure"]


@dataclass(frozen=True)
class StateReads:
    """Per-method state-dependency summary.

    ``instance``/``static`` are the state-field slots whose bound values
    ``specialize_ir`` can bake into this method's body; ``tib_dependent``
    marks bodies that additionally embed per-TIB deopt guards
    (:func:`repro.vm.osr.insert_deopt_points` fires on a this-aliased
    hooked state write), making them identity-dependent on the special
    TIB they were compiled against.
    """

    instance: frozenset[int]
    static: frozenset[int]
    tib_dependent: bool

    def project(self, instance: dict, static: dict) -> tuple:
        """Canonical projection of one state's bindings onto the read
        sets — the body-sharing key component: states with equal
        projections get byte-identical specialized code."""
        return (
            tuple(
                (slot, type(v).__name__, v)
                for slot, v in sorted(instance.items())
                if slot in self.instance
            ),
            tuple(
                (slot, type(v).__name__, v)
                for slot, v in sorted(static.items())
                if slot in self.static
            ),
        )


def state_reads(
    fn: IRFunction,
    instance_slots: set[int] | frozenset[int] | list[int],
    static_slots: set[int] | frozenset[int] | list[int],
) -> StateReads:
    """Compute the state-field slots ``fn``'s compiled body can depend
    on, given the candidate instance/static slot sets of its class plan.

    Flow-sensitive must-write analysis: the dataflow state at a program
    point is the pair of slot sets written on *every* path from entry
    (intersection join), and a ``getfield``/``getstatic`` only counts as
    a read when its slot is not in that set.  Collection happens inside
    the transfer function; ``solve_forward`` re-runs a node whenever its
    in-state changes and in-states only shrink under intersection, so
    the last run of each node — against its fixpoint in-state — collects
    the maximal (correct) read set.
    """
    interesting_inst = frozenset(instance_slots)
    interesting_stat = frozenset(static_slots)
    aliases = this_aliases(fn)
    order = fn.block_order()
    if not order:
        return StateReads(frozenset(), frozenset(), False)
    index_of = {block.id: i for i, block in enumerate(order)}
    succs = [
        [index_of[s] for s in block.successors() if s in index_of]
        for block in order
    ]

    reads_inst: set[int] = set()
    reads_stat: set[int] = set()
    tib_dependent = False

    def transfer(node: int, state):
        nonlocal tib_dependent
        written_inst, written_stat = state
        for instr in order[node].instrs:
            op = instr.op
            if op == "getfield":
                slot = instr.extra.slot
                obj = instr.args[0]
                if (
                    slot in interesting_inst
                    and slot not in written_inst
                    and isinstance(obj, Reg)
                    and obj.name in aliases
                ):
                    reads_inst.add(slot)
            elif op == "getstatic":
                slot = instr.extra.slot
                if slot in interesting_stat and slot not in written_stat:
                    reads_stat.add(slot)
            elif op == "putfield":
                slot = instr.extra.slot
                obj = instr.args[0]
                if isinstance(obj, Reg) and obj.name in aliases:
                    if slot in interesting_inst:
                        written_inst = written_inst | {slot}
                    ex = instr.extra
                    if (
                        getattr(ex, "hook", None) is not None
                        and getattr(ex, "pc", None) is not None
                    ):
                        # Over-approximates insert_deopt_points' guard
                        # condition (any hooked write counts, not just
                        # re-evaluating ones): sound — at worst a body
                        # is treated as TIB-pinned when it is not, which
                        # only forgoes sharing.
                        tib_dependent = True
            elif op == "putstatic":
                slot = instr.extra.slot
                if slot in interesting_stat:
                    written_stat = written_stat | {slot}
            # Calls neither kill nor read: specialize_ir's skip sets are
            # intra-procedural too, and callees run through their own
            # dispatch (a special body never inlines another method's
            # state reads — inlining happened before specialization and
            # inlined loads carry their own receiver registers, handled
            # by the this-alias check above).
        return (written_inst, written_stat)

    def join(a, b):
        return (a[0] & b[0], a[1] & b[1])

    solve_forward(
        succs, transfer, join,
        boundary={0: (frozenset(), frozenset())},
    )
    # Mirror specialize_ir's flow-insensitive skip sets: a slot the
    # method writes anywhere is never replaced, so it cannot steer the
    # body even if some read of it is not dominated by a write.
    reads_inst -= _written_instance_slots(fn, aliases)
    reads_stat -= _written_static_slots(fn)
    return StateReads(
        frozenset(reads_inst), frozenset(reads_stat), tib_dependent
    )


#: Ops whose results depend only on their register/constant operands —
#: the closure a memoizable specialized body must stay inside.  Notably
#: absent: every load/store (heap, static, array), ``new``/``newarray``,
#: all call ops, ``deoptcheck`` (guards re-enter the interpreter), and
#: division (may raise; re-raising from a memo table would be wrong for
#: exception identity).
_PURE_BODY_OPS = (
    (BINARY_OPS - frozenset({"idiv", "irem", "fdiv"}))
    | UNARY_OPS
    | frozenset({"mov", "jump", "br", "ret"})
)


def ir_is_pure(fn: IRFunction) -> bool:
    """True when every instruction of ``fn`` is a pure computation over
    the arguments, so ``(state key, args) -> result`` is a function and
    the body is safe to memoize (:mod:`repro.vm.memo`)."""
    if not fn.returns_value:
        return False
    return all(
        instr.op in _PURE_BODY_OPS
        for block in fn.blocks.values()
        for instr in block.instrs
    )
