"""Strength reduction.

Type-guarded rewrites (see :mod:`repro.opt.types`); each transform is
exact for the proven operand types:

* ``mul x, 2``           -> ``add x, x``           (int or double; IEEE-exact)
* ``mul x, 2^k`` (int)   -> ``shl x, k``
* ``irem x, 2^k``        -> ``band x, 2^k-1`` when ``x`` provably >= 0
"""

from __future__ import annotations

from repro.opt.ir import Const, IRFunction, IRInstr, Operand, Reg
from repro.opt.types import infer_types, is_int, is_numeric


def _power_of_two(value: object) -> int | None:
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    if value > 1 and (value & (value - 1)) == 0:
        return value.bit_length() - 1
    return None


def _provably_nonnegative(fn: IRFunction, operand: Operand) -> bool:
    """Cheap syntactic non-negativity: const >= 0 or produced by ops with
    non-negative range (arraylen, band with non-negative mask)."""
    if isinstance(operand, Const):
        return isinstance(operand.value, int) and operand.value >= 0
    producers = [
        instr
        for block in fn.block_order()
        for instr in block.instrs
        if instr.dest is not None and instr.dest.name == operand.name
    ]
    if not producers:
        return False
    for instr in producers:
        if instr.op == "arraylen":
            continue
        if instr.op == "band" and any(
            isinstance(a, Const)
            and isinstance(a.value, int)
            and a.value >= 0
            for a in instr.args
        ):
            continue
        if instr.op == "mov" and all(
            isinstance(a, Const)
            and isinstance(a.value, int)
            and a.value >= 0
            for a in instr.args
        ):
            continue
        return False
    return True


def strength_reduce(fn: IRFunction) -> int:
    """Apply strength reductions; returns the number of rewrites."""
    types = infer_types(fn)
    changed = 0
    for block in fn.block_order():
        for i, instr in enumerate(block.instrs):
            if instr.op == "mul":
                for k in (0, 1):
                    const = instr.args[k]
                    other = instr.args[1 - k]
                    if const == Const(2) and is_numeric(types, other):
                        block.instrs[i] = IRInstr(
                            "add", instr.dest, [other, other],
                            line=instr.line,
                        )
                        changed += 1
                        break
                    if isinstance(const, Const) and is_int(types, other):
                        shift = _power_of_two(const.value)
                        if shift is not None:
                            block.instrs[i] = IRInstr(
                                "shl", instr.dest, [other, Const(shift)],
                                line=instr.line,
                            )
                            changed += 1
                            break
            elif instr.op == "irem":
                const = instr.args[1]
                if isinstance(const, Const):
                    shift = _power_of_two(const.value)
                    if shift is not None and _provably_nonnegative(
                        fn, instr.args[0]
                    ):
                        block.instrs[i] = IRInstr(
                            "band", instr.dest,
                            [instr.args[0], Const(const.value - 1)],
                            line=instr.line,
                        )
                        changed += 1
    return changed
