"""Branch folding and CFG cleanup.

Three transforms, iterated to fixpoint by the pipeline:

* constant-condition branches become unconditional jumps (this is where
  specialization pays off: once the state field is a known constant,
  the dispatching ``if (grade == 0) ...`` chain collapses — paper §7.1
  credits SalaryDB's 31.4% mainly to branch + dead code elimination);
* unreachable blocks are deleted;
* trivial jump chains are threaded and single-predecessor blocks merged
  into their predecessor.
"""

from __future__ import annotations

from repro.opt.cfg import predecessors
from repro.opt.ir import Const, Extra, IRFunction, IRInstr


def fold_branches(fn: IRFunction) -> int:
    """Rewrite constant-condition / same-target branches; returns count."""
    changed = 0
    for block in fn.block_order():
        term = block.terminator
        if term.op != "br":
            continue
        cond = term.args[0]
        if isinstance(cond, Const):
            target = term.extra.if_true if cond.value else term.extra.if_false
            block.instrs[-1] = IRInstr(
                "jump", None, [], Extra(target=target), term.line
            )
            changed += 1
        elif term.extra.if_true == term.extra.if_false:
            block.instrs[-1] = IRInstr(
                "jump", None, [], Extra(target=term.extra.if_true), term.line
            )
            changed += 1
    return changed


def remove_unreachable(fn: IRFunction) -> int:
    reachable = fn.reachable_ids()
    dead = [bid for bid in fn.blocks if bid not in reachable]
    for bid in dead:
        del fn.blocks[bid]
    return len(dead)


def thread_jumps(fn: IRFunction) -> int:
    """Retarget edges that go to a block containing only ``jump``.

    A jump-only block implies no stack-register entry copies were needed
    on that edge (lowering would have emitted movs), so threading is
    safe.
    """
    changed = 0
    trivial: dict[int, int] = {}
    for bid, block in fn.blocks.items():
        if len(block.instrs) == 1 and block.instrs[0].op == "jump":
            trivial[bid] = block.instrs[0].extra.target

    def final_target(bid: int) -> int:
        seen = set()
        while bid in trivial and bid not in seen:
            seen.add(bid)
            bid = trivial[bid]
        return bid

    for block in fn.blocks.values():
        term = block.terminator
        if term.op == "jump":
            target = final_target(term.extra.target)
            if target != term.extra.target and target != block.id:
                term.extra.target = target
                changed += 1
        elif term.op == "br":
            t = final_target(term.extra.if_true)
            f = final_target(term.extra.if_false)
            if t != term.extra.if_true and t != block.id:
                term.extra.if_true = t
                changed += 1
            if f != term.extra.if_false and f != block.id:
                term.extra.if_false = f
                changed += 1
    return changed


def merge_blocks(fn: IRFunction) -> int:
    """Splice single-predecessor jump targets into their predecessor."""
    changed = 0
    while True:
        preds = predecessors(fn)
        merged = False
        for block in list(fn.block_order()):
            if block.id not in fn.blocks:
                continue
            term = block.terminator
            if term.op != "jump":
                continue
            target = term.extra.target
            if target == block.id or target == fn.entry:
                continue
            if len(preds.get(target, [])) != 1:
                continue
            target_block = fn.blocks[target]
            block.instrs = block.instrs[:-1] + target_block.instrs
            del fn.blocks[target]
            changed += 1
            merged = True
            break
        if not merged:
            return changed


def cleanup_cfg(fn: IRFunction) -> int:
    """Run all CFG cleanups to a local fixpoint; returns total changes."""
    total = 0
    while True:
        changed = fold_branches(fn)
        changed += thread_jumps(fn)
        changed += remove_unreachable(fn)
        changed += merge_blocks(fn)
        total += changed
        if not changed:
            return total
