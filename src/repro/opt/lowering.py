"""Bytecode -> IR lowering.

Abstract-interprets the operand stack with symbolic operands: constants
stay immediate, loads of locals push the local's register directly
(spilled to a temp only if the local is overwritten while aliased on the
stack), and every block entry materializes canonical per-block stack
registers (``s<block>_<depth>``) that predecessors copy into — the
standard stack-to-register conversion for a verified stack machine.

Runs *after linking*: instruction ``resolved`` slots provide field slot
numbers, vtable offsets, JTOC cells, and intrinsic records.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.opcodes import CALL_OPS, Op
from repro.bytecode.verify import verify_method
from repro.opt.bytecode_cfg import BytecodeCFG
from repro.opt.ir import Const, Extra, IRFunction, IRInstr, Operand, Reg

_BINOP = {
    Op.ADD: "add",
    Op.SUB: "sub",
    Op.MUL: "mul",
    Op.IDIV: "idiv",
    Op.FDIV: "fdiv",
    Op.IREM: "irem",
    Op.SHL: "shl",
    Op.SHR: "shr",
    Op.BAND: "band",
    Op.BOR: "bor",
    Op.BXOR: "bxor",
    Op.CMP_LT: "lt",
    Op.CMP_LE: "le",
    Op.CMP_GT: "gt",
    Op.CMP_GE: "ge",
    Op.CMP_EQ: "eq",
    Op.CMP_NE: "ne",
    Op.CONCAT: "concat",
}
_UNOP = {Op.NEG: "neg", Op.NOT: "not", Op.I2D: "i2d", Op.D2I: "d2i"}


def _call_returns_map(method: MethodInfo) -> dict[int, bool]:
    """Per-call-instruction result arity, read off linked resolutions."""
    out: dict[int, bool] = {}
    for i, instr in enumerate(method.code):
        if instr.op in CALL_OPS:
            resolved = instr.resolved
            out[i] = resolved[-1] if isinstance(resolved, tuple) else True
        elif instr.op is Op.INTRINSIC:
            out[i] = instr.resolved.returns
    return out


class Lowerer:
    """Lowers one linked method to an :class:`IRFunction`."""

    def __init__(self, method: MethodInfo) -> None:
        self.method = method
        self.cfg = BytecodeCFG(method)
        self.depths = verify_method(method, _call_returns_map(method))
        self.fn = IRFunction(
            name=method.qualified_name,
            num_args=method.num_args,
            max_locals=method.max_locals,
            returns_value=method.return_type.name != "void",
        )
        kinds = [] if method.is_static else ["ref"]
        tag_of = {"int": "int", "double": "double", "boolean": "bool",
                  "string": "str"}
        for ptype in method.param_types:
            if ptype.is_array or not ptype.is_primitive:
                kinds.append("ref")
            else:
                kinds.append(tag_of.get(ptype.name, "?"))
        self.fn.param_kinds = kinds

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _entry_reg(block_id: int, depth: int) -> Reg:
        return Reg(f"s{block_id}_{depth}")

    @staticmethod
    def _local(index: int) -> Reg:
        return Reg(f"l{index}")

    def lower(self) -> IRFunction:
        # Create IR blocks 1:1 with bytecode blocks (same ids).
        for _ in self.cfg.blocks:
            self.fn.new_block()
        for bid in self.cfg.reverse_postorder():
            self._lower_block(bid)
        # Drop blocks never lowered (unreachable bytecode).
        reachable = set(self.cfg.reverse_postorder())
        for bid in list(self.fn.blocks):
            if bid not in reachable:
                del self.fn.blocks[bid]
        return self.fn

    def _emit_entry_copies(
        self, out: list[IRInstr], stack: list[Operand], succ: int, line: int
    ) -> None:
        prefix = f"s{succ}_"
        values = list(stack)
        # Parallel-copy hazard: a value being copied is itself one of the
        # successor's entry registers at a *different* depth (possible on
        # self-loops after SWAP).  Route every copy through temps then.
        hazard = any(
            isinstance(v, Reg)
            and v.name.startswith(prefix)
            and v != self._entry_reg(succ, d)
            for d, v in enumerate(values)
        )
        if hazard:
            spilled: list[Operand] = []
            for v in values:
                tmp = Reg()
                out.append(IRInstr("mov", tmp, [v], line=line))
                spilled.append(tmp)
            values = spilled
        for depth, value in enumerate(values):
            target = self._entry_reg(succ, depth)
            if value != target:
                out.append(IRInstr("mov", target, [value], line=line))

    def _lower_block(self, bid: int) -> None:
        method = self.method
        code = method.code
        bc_block = self.cfg.blocks[bid]
        ir_block = self.fn.blocks[bid]
        out = ir_block.instrs
        depth = self.depths[bc_block.start]
        stack: list[Operand] = [
            self._entry_reg(bid, k) for k in range(depth)
        ]

        def push_result(op: str, args: list[Operand], extra: Extra | None,
                        line: int) -> None:
            dest = Reg()
            out.append(IRInstr(op, dest, args, extra, line))
            stack.append(dest)

        index = bc_block.start
        while index < bc_block.end:
            instr = code[index]
            op = instr.op
            line = instr.line
            if op is Op.CONST:
                stack.append(Const(instr.arg))
            elif op is Op.LOAD:
                stack.append(self._local(instr.arg))
            elif op is Op.STORE:
                value = stack.pop()
                local = self._local(instr.arg)
                # Spill stack aliases of this local before overwriting.
                for k, slot_val in enumerate(stack):
                    if slot_val == local:
                        tmp = Reg()
                        out.append(IRInstr("mov", tmp, [local], line=line))
                        for j in range(k, len(stack)):
                            if stack[j] == local:
                                stack[j] = tmp
                        break
                out.append(IRInstr("mov", local, [value], line=line))
            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op in _BINOP:
                b = stack.pop()
                a = stack.pop()
                dest = Reg()
                out.append(IRInstr(_BINOP[op], dest, [a, b], line=line))
                stack.append(dest)
            elif op in _UNOP:
                a = stack.pop()
                dest = Reg()
                out.append(IRInstr(_UNOP[op], dest, [a], line=line))
                stack.append(dest)
            elif op is Op.GETFIELD:
                obj = stack.pop()
                cls_name, field_name = instr.arg
                extra = Extra(
                    slot=instr.resolved, key=f"{cls_name}.{field_name}"
                )
                push_result("getfield", [obj], extra, line)
            elif op is Op.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                cls_name, field_name = instr.arg
                # Carries whichever hook the mutation manager installed
                # — re-evaluating or deferred (coalesced); pycodegen
                # branches on the hook's inline_spec, never on a flag.
                extra = Extra(
                    slot=instr.resolved,
                    key=f"{cls_name}.{field_name}",
                    hook=instr.state_hook,
                )
                # Record the deopt resume point (the pc *after* the
                # store) when the interpreter frame is reconstructible
                # there, i.e. the operand stack is provably empty.  The
                # OSR guard pass (repro.vm.osr) only arms putfields that
                # carry a pc.
                if (index + 1 < len(self.depths)
                        and self.depths[index + 1] == 0):
                    extra.pc = index + 1
                out.append(
                    IRInstr("putfield", None, [obj, value], extra, line)
                )
            elif op is Op.GETSTATIC:
                cls_name, field_name = instr.arg
                extra = Extra(
                    slot=instr.resolved, key=f"{cls_name}.{field_name}"
                )
                push_result("getstatic", [], extra, line)
            elif op is Op.PUTSTATIC:
                value = stack.pop()
                cls_name, field_name = instr.arg
                extra = Extra(
                    slot=instr.resolved,
                    key=f"{cls_name}.{field_name}",
                    hook=instr.state_hook,
                )
                if (index + 1 < len(self.depths)
                        and self.depths[index + 1] == 0):
                    extra.pc = index + 1
                out.append(IRInstr("putstatic", None, [value], extra, line))
            elif op is Op.NEW:
                push_result("new", [], Extra(rc=instr.resolved), line)
            elif op is Op.NEWARRAY:
                length = stack.pop()
                extra = Extra(elem=instr.arg, fill=instr.resolved)
                push_result("newarray", [length], extra, line)
            elif op is Op.ALOAD:
                idx = stack.pop()
                arr = stack.pop()
                push_result("aload", [arr, idx], Extra(bounds=True), line)
            elif op is Op.ASTORE:
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                out.append(
                    IRInstr(
                        "astore", None, [arr, idx, value],
                        Extra(bounds=True), line,
                    )
                )
            elif op is Op.ARRAYLEN:
                arr = stack.pop()
                push_result("arraylen", [arr], None, line)
            elif op is Op.INSTANCEOF:
                obj = stack.pop()
                push_result("instanceof", [obj], Extra(rc=instr.resolved),
                            line)
            elif op is Op.CHECKCAST:
                obj = stack[-1]
                out.append(
                    IRInstr("checkcast", None, [obj],
                            Extra(rc=instr.resolved), line)
                )
            elif op is Op.INVOKEVIRTUAL:
                cls_name, key, argc = instr.arg
                offset, returns = instr.resolved
                args = stack[-argc:]
                del stack[-argc:]
                extra = Extra(
                    offset=offset, returns=returns, key=key, name=cls_name
                )
                if returns:
                    push_result("callv", args, extra, line)
                else:
                    out.append(IRInstr("callv", None, args, extra, line))
            elif op is Op.INVOKESPECIAL:
                cls_name, key, argc = instr.arg
                target_rm, returns = instr.resolved
                args = stack[-argc:]
                del stack[-argc:]
                extra = Extra(
                    rm=target_rm, returns=returns, key=key, name=cls_name
                )
                if returns:
                    push_result("callsp", args, extra, line)
                else:
                    out.append(IRInstr("callsp", None, args, extra, line))
            elif op is Op.INVOKESTATIC:
                cls_name, key, argc = instr.arg
                cell, returns = instr.resolved
                args = stack[-argc:] if argc else []
                if argc:
                    del stack[-argc:]
                extra = Extra(
                    cell=cell, returns=returns, key=key, name=cls_name
                )
                if returns:
                    push_result("calls", args, extra, line)
                else:
                    out.append(IRInstr("calls", None, args, extra, line))
            elif op is Op.INVOKEINTERFACE:
                cls_name, key, argc = instr.arg
                slot, _, returns = instr.resolved
                args = stack[-argc:]
                del stack[-argc:]
                extra = Extra(
                    slot=slot, returns=returns, key=key, name=cls_name
                )
                if returns:
                    push_result("calli", args, extra, line)
                else:
                    out.append(IRInstr("calli", None, args, extra, line))
            elif op is Op.INTRINSIC:
                intr = instr.resolved
                n = intr.nargs
                args = stack[-n:] if n else []
                if n:
                    del stack[-n:]
                extra = Extra(intrinsic=intr, returns=intr.returns,
                              name=intr.name)
                if intr.returns:
                    push_result("intr", args, extra, line)
                else:
                    out.append(IRInstr("intr", None, args, extra, line))
            elif op is Op.JUMP:
                target = self.cfg.block_of_instr[instr.arg]
                self._emit_entry_copies(out, stack, target, line)
                out.append(IRInstr("jump", None, [], Extra(target=target),
                                   line))
                return
            elif op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
                cond = stack.pop()
                branch_bb = self.cfg.block_of_instr[instr.arg]
                fall_bb = self.cfg.block_of_instr[index + 1]
                self._emit_entry_copies(out, stack, branch_bb, line)
                if fall_bb != branch_bb:
                    self._emit_entry_copies(out, stack, fall_bb, line)
                if op is Op.JUMP_IF_TRUE:
                    extra = Extra(if_true=branch_bb, if_false=fall_bb)
                else:
                    extra = Extra(if_true=fall_bb, if_false=branch_bb)
                out.append(IRInstr("br", None, [cond], extra, line))
                return
            elif op is Op.RETURN:
                value = stack.pop()
                out.append(IRInstr("ret", None, [value], None, line))
                return
            elif op is Op.RETURN_VOID:
                out.append(IRInstr("ret", None, [], None, line))
                return
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover
                raise AssertionError(f"cannot lower opcode {op!r}")
            index += 1

        # Fell through to the next block: explicit jump + entry copies.
        succ = bc_block.succs[0]
        line = code[bc_block.end - 1].line if bc_block.end else 0
        self._emit_entry_copies(out, stack, succ, line)
        out.append(IRInstr("jump", None, [], Extra(target=succ), line))


def lower_method(method: MethodInfo) -> IRFunction:
    """Lower one linked method's bytecode to IR."""
    return Lowerer(method).lower()


def lower_method_osr(method: MethodInfo, pc: int) -> IRFunction:
    """Lower ``method`` as an OSR continuation entered at bytecode ``pc``.

    The whole body is lowered normally, then the function's entry is
    repointed at the block that starts at ``pc`` and every local becomes
    a parameter (the captured interpreter frame arrives as the args
    list).  Pre-loop blocks become unreachable and are pruned by the
    normal pipeline passes.

    ``pc`` must be a block leader with an empty operand stack — the
    caller (``repro.vm.osr``) checks eligibility; this raises
    ``ValueError`` as a belt-and-braces guard.
    """
    lw = Lowerer(method)
    fn = lw.lower()
    if lw.depths[pc] != 0:
        raise ValueError(f"OSR pc {pc} has non-empty operand stack")
    entry = lw.cfg.block_of_instr[pc]
    if lw.cfg.blocks[entry].start != pc:
        raise ValueError(f"OSR pc {pc} is not a block leader")
    fn.entry = entry
    # All locals arrive as arguments; unknown kinds for the non-param
    # slots (type inference treats "?" as top).
    fn.param_kinds = fn.param_kinds + ["?"] * (
        fn.max_locals - len(fn.param_kinds)
    )
    fn.num_args = fn.max_locals
    return fn
