"""Dead code elimination via backward liveness.

A register is live if some path reaches a use before a redefinition.
Pure instructions (see :data:`repro.opt.ir.PURE_OPS`) whose destination
is dead are deleted.  Loads are treated as pure — a deleted dead load's
potential NullPointerException is a documented deviation from strict
Java semantics (the paper's optimizer makes the same class of
assumptions when deleting specialized-away code).
"""

from __future__ import annotations

from repro.opt.cfg import predecessors
from repro.opt.ir import IRFunction, PURE_OPS, Reg


def _block_liveness(fn: IRFunction) -> dict[int, set[str]]:
    """Fixpoint live-out sets per block."""
    preds = predecessors(fn)
    order = [b.id for b in fn.block_order()]
    live_in: dict[int, set[str]] = {bid: set() for bid in order}
    live_out: dict[int, set[str]] = {bid: set() for bid in order}

    work = list(reversed(order))
    while work:
        bid = work.pop(0)
        block = fn.blocks[bid]
        out: set[str] = set()
        for s in block.successors():
            out |= live_in.get(s, set())
        live_out[bid] = out
        new_in = set(out)
        for instr in reversed(block.instrs):
            if instr.dest is not None:
                new_in.discard(instr.dest.name)
            for a in instr.args:
                if isinstance(a, Reg):
                    new_in.add(a.name)
        if new_in != live_in[bid]:
            live_in[bid] = new_in
            for p in preds.get(bid, []):
                if p not in work:
                    work.append(p)
    return live_out


def dead_code_elimination(fn: IRFunction) -> int:
    """Delete pure instructions with dead destinations; returns count."""
    removed_total = 0
    while True:
        live_out = _block_liveness(fn)
        removed = 0
        for block in fn.block_order():
            live = set(live_out[block.id])
            kept = []
            for instr in reversed(block.instrs):
                dest = instr.dest
                if (
                    dest is not None
                    and dest.name not in live
                    and instr.op in PURE_OPS
                ):
                    removed += 1
                    continue
                if dest is not None:
                    live.discard(dest.name)
                for a in instr.args:
                    if isinstance(a, Reg):
                        live.add(a.name)
                kept.append(instr)
            kept.reverse()
            block.instrs = kept
        removed_total += removed
        if not removed:
            return removed_total
