"""Compile-time evaluation of pure IR operations.

The folding semantics must match the interpreter exactly — the
mutation-equivalence property tests compare program output across
execution tiers, so any divergence here is a real miscompile.
"""

from __future__ import annotations

from typing import Any

from repro.vm.values import jx_rem, jx_str, jx_truncate_div


class NoFold(Exception):
    """Raised when an operation cannot be safely folded."""


def fold_op(op: str, vals: list[Any]) -> Any:
    """Evaluate ``op`` over constant operands; raises :class:`NoFold`."""
    try:
        if op == "add":
            return vals[0] + vals[1]
        if op == "sub":
            return vals[0] - vals[1]
        if op == "mul":
            return vals[0] * vals[1]
        if op == "idiv":
            if vals[1] == 0:
                raise NoFold  # preserve the runtime error
            return jx_truncate_div(vals[0], vals[1])
        if op == "fdiv":
            if vals[1] == 0:
                # Interpreter semantics: IEEE inf/nan.  NaN is unequal to
                # itself, which confuses the const lattice; don't fold.
                raise NoFold
            return vals[0] / vals[1]
        if op == "irem":
            if vals[1] == 0:
                raise NoFold
            return jx_rem(vals[0], vals[1])
        if op == "shl":
            return vals[0] << vals[1]
        if op == "shr":
            return vals[0] >> vals[1]
        if op == "band":
            return vals[0] & vals[1]
        if op == "bor":
            return vals[0] | vals[1]
        if op == "bxor":
            return vals[0] ^ vals[1]
        if op == "lt":
            return vals[0] < vals[1]
        if op == "le":
            return vals[0] <= vals[1]
        if op == "gt":
            return vals[0] > vals[1]
        if op == "ge":
            return vals[0] >= vals[1]
        if op == "eq":
            return _const_eq(vals[0], vals[1])
        if op == "ne":
            return not _const_eq(vals[0], vals[1])
        if op == "concat":
            return jx_str(vals[0]) + jx_str(vals[1])
        if op == "neg":
            return -vals[0]
        if op == "not":
            return not vals[0]
        if op == "i2d":
            return float(vals[0])
        if op == "d2i":
            return int(vals[0])
        if op == "mov":
            return vals[0]
    except NoFold:
        raise
    except Exception as exc:  # TypeError on bad mixes, etc.
        raise NoFold from exc
    raise NoFold


def _const_eq(a: Any, b: Any) -> bool:
    """Equality over constant operands, matching interpreter CMP_EQ.

    Constants are primitives/strings/None; reference identity never
    arises here (objects are not constants).
    """
    if a is None or b is None:
        return a is b
    return a == b
