"""Lightweight IR type inference.

Assigns each register one of ``int``, ``double``, ``bool``, ``str``,
``ref``, or ``?`` (unknown) by a forward fixpoint over all assignments.
This is *advisory* information: passes may only apply a transform when
the inferred type proves it sound (e.g. ``mul x, 2^k -> shl`` needs
``x: int``).  Unknown is always a safe answer.
"""

from __future__ import annotations

from repro.opt.ir import Const, IRFunction, Reg

INT = "int"
DOUBLE = "double"
BOOL = "bool"
STR = "str"
REF = "ref"
UNKNOWN = "?"

#: Ops whose result type is fixed regardless of inputs.
_FIXED_RESULT = {
    "idiv": INT,
    "irem": INT,
    "shl": INT,
    "shr": INT,
    "band": INT,
    "bor": INT,
    "bxor": INT,
    "fdiv": DOUBLE,
    "i2d": DOUBLE,
    "d2i": INT,
    "lt": BOOL,
    "le": BOOL,
    "gt": BOOL,
    "ge": BOOL,
    "eq": BOOL,
    "ne": BOOL,
    "not": BOOL,
    "instanceof": BOOL,
    "concat": STR,
    "arraylen": INT,
    "new": REF,
    "newarray": REF,
}


def const_type(value: object) -> str:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return STR
    if value is None:
        return REF
    return UNKNOWN


def _join(a: str, b: str) -> str:
    if a == b:
        return a
    return UNKNOWN


def infer_types(fn: IRFunction) -> dict[str, str]:
    """Register name -> inferred type (missing means never assigned)."""
    types: dict[str, str] = {}
    # Parameters carry their static Jx types (seeded by the lowerer);
    # non-argument locals start unknown since their default
    # initialization is ordinary bytecode.
    kinds = getattr(fn, "param_kinds", None) or []
    for i in range(fn.num_args):
        kind = kinds[i] if i < len(kinds) else UNKNOWN
        types[f"l{i}"] = kind if kind != "ref" else REF

    def operand_type(operand) -> str:
        if isinstance(operand, Const):
            return const_type(operand.value)
        return types.get(operand.name, UNKNOWN)

    changed = True
    while changed:
        changed = False
        for block in fn.block_order():
            for instr in block.instrs:
                if instr.dest is None:
                    continue
                op = instr.op
                if op in _FIXED_RESULT:
                    result = _FIXED_RESULT[op]
                elif op == "mov":
                    result = operand_type(instr.args[0])
                elif op in ("add", "sub", "mul"):
                    a = operand_type(instr.args[0])
                    b = operand_type(instr.args[1])
                    if a == INT and b == INT:
                        result = INT
                    elif a in (INT, DOUBLE) and b in (INT, DOUBLE):
                        result = DOUBLE
                    else:
                        result = UNKNOWN
                elif op == "neg":
                    result = operand_type(instr.args[0])
                else:  # calls, loads: unknown
                    result = UNKNOWN
                name = instr.dest.name
                if name in types:
                    new = _join(types[name], result)
                else:
                    new = result
                if types.get(name) != new:
                    types[name] = new
                    changed = True
    return types


def is_int(types: dict[str, str], operand) -> bool:
    if isinstance(operand, Const):
        return const_type(operand.value) == INT
    return types.get(operand.name) == INT


def is_numeric(types: dict[str, str], operand) -> bool:
    if isinstance(operand, Const):
        return const_type(operand.value) in (INT, DOUBLE)
    return types.get(operand.name) in (INT, DOUBLE)
