"""Array bounds-check elimination.

Block-local redundancy elimination: the second access to the same
``(array, index)`` pair within a block needs no re-check, provided
neither operand was redefined in between.  This covers the common
read-modify-write pattern compound assignments generate
(``a[i] += x`` lowers to an ``aload``/``astore`` pair on identical
operands).

The check flag lives on the instruction (``extra.bounds``); backends
honor it by skipping the range test.
"""

from __future__ import annotations

from repro.opt.ir import Const, IRFunction, Operand, Reg


def _operand_key(operand: Operand) -> tuple:
    if isinstance(operand, Const):
        return ("const", repr(operand.value))
    return ("reg", operand.name)


def eliminate_bounds_checks(fn: IRFunction) -> int:
    """Drop provably redundant bounds checks; returns the count removed."""
    removed = 0
    for block in fn.block_order():
        checked: set[tuple] = set()
        for instr in block.instrs:
            if instr.op in ("aload", "astore"):
                key = (_operand_key(instr.args[0]), _operand_key(instr.args[1]))
                if instr.extra.bounds and key in checked:
                    instr.extra.bounds = False
                    removed += 1
                else:
                    checked.add(key)
            if instr.dest is not None:
                # A redefined register invalidates facts mentioning it.
                name = instr.dest.name
                checked = {
                    fact
                    for fact in checked
                    if ("reg", name) not in fact
                }
    return removed
