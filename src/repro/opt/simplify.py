"""Local simplification: copy propagation, constant folding, algebra.

Runs block-locally (copy tables reset at block entry) and is sound
without type information except where noted; every algebraic identity
here preserves IEEE semantics and Jx integer semantics exactly.
"""

from __future__ import annotations

from repro.opt.fold import NoFold, fold_op
from repro.opt.ir import BINARY_OPS, Const, IRFunction, IRInstr, Operand, Reg, UNARY_OPS


def _resolve(table: dict[str, Operand], operand: Operand) -> Operand:
    """Follow the copy chain for ``operand`` through ``table``."""
    seen = 0
    while isinstance(operand, Reg) and operand.name in table:
        operand = table[operand.name]
        seen += 1
        if seen > 64:  # defensive: cycles cannot occur, but cap anyway
            break
    return operand


def _invalidate(table: dict[str, Operand], reg_name: str) -> None:
    """Drop copy facts involving a redefined register."""
    table.pop(reg_name, None)
    stale = [
        k
        for k, v in table.items()
        if isinstance(v, Reg) and v.name == reg_name
    ]
    for k in stale:
        del table[k]


def _algebraic(instr: IRInstr) -> IRInstr | None:
    """Return a replacement instruction for sound identities, or None."""
    op = instr.op
    args = instr.args
    if op == "add":
        for i in (0, 1):
            other = args[1 - i]
            if args[i] == Const(0):
                return IRInstr("mov", instr.dest, [other], line=instr.line)
    elif op == "sub":
        if args[1] == Const(0):
            return IRInstr("mov", instr.dest, [args[0]], line=instr.line)
    elif op == "mul":
        for i in (0, 1):
            other = args[1 - i]
            if args[i] == Const(1):
                return IRInstr("mov", instr.dest, [other], line=instr.line)
    elif op in ("idiv", "fdiv"):
        if args[1] == Const(1):
            return IRInstr("mov", instr.dest, [args[0]], line=instr.line)
    elif op in ("shl", "shr"):
        if args[1] == Const(0):
            return IRInstr("mov", instr.dest, [args[0]], line=instr.line)
    elif op == "eq":
        for i in (0, 1):
            if args[i] == Const(True):
                return IRInstr(
                    "mov", instr.dest, [args[1 - i]], line=instr.line
                )
    elif op == "bor" or op == "bxor":
        for i in (0, 1):
            if args[i] == Const(0):
                return IRInstr(
                    "mov", instr.dest, [args[1 - i]], line=instr.line
                )
    return None


def simplify(fn: IRFunction) -> int:
    """One simplification sweep; returns the number of rewrites."""
    rewrites = 0
    for block in fn.block_order():
        copies: dict[str, Operand] = {}
        new_instrs: list[IRInstr] = []
        for instr in block.instrs:
            # 1. Copy-propagate arguments.
            new_args = []
            for a in instr.args:
                resolved = _resolve(copies, a)
                if resolved is not a:
                    rewrites += 1
                new_args.append(resolved)
            instr.args = new_args

            # 2. Constant-fold pure ops with all-constant args.
            if (
                instr.dest is not None
                and (instr.op in BINARY_OPS or instr.op in UNARY_OPS)
                and all(isinstance(a, Const) for a in instr.args)
            ):
                try:
                    value = fold_op(
                        instr.op, [a.value for a in instr.args]
                    )
                    instr = IRInstr(
                        "mov", instr.dest, [Const(value)], line=instr.line
                    )
                    rewrites += 1
                except NoFold:
                    pass

            # 3. Algebraic identities.
            replacement = _algebraic(instr)
            if replacement is not None:
                instr = replacement
                rewrites += 1

            # 4. Track copies; invalidate on redefinition.
            if instr.dest is not None:
                _invalidate(copies, instr.dest.name)
                if instr.op == "mov":
                    src = instr.args[0]
                    if not (isinstance(src, Reg) and src == instr.dest):
                        copies[instr.dest.name] = src
            new_instrs.append(instr)
        block.instrs = new_instrs

    # Drop self-moves.
    for block in fn.block_order():
        kept = []
        for instr in block.instrs:
            if (
                instr.op == "mov"
                and isinstance(instr.args[0], Reg)
                and instr.args[0] == instr.dest
            ):
                rewrites += 1
                continue
            kept.append(instr)
        block.instrs = kept
    return rewrites
