"""The opt2 backend: IR -> Python source -> executable function.

This is JxVM's "native code": each IR instruction becomes one or two
Python statements, compiled once with :func:`compile`/``exec`` and then
invoked directly.  Specialized methods whose dispatch chains were folded
away become tiny straight-line Python functions — which is what makes
the paper's speedups observable on this substrate.

Code shape: single-block functions are emitted as straight-line bodies;
multi-block functions use a block-dispatch loop (``_bb`` state variable).
Runtime objects (runtime classes, JTOC cells, intrinsics, mutation
hooks) are pinned into the function's globals, so the generated source
is fully self-contained and cacheable.

Null-pointer checks are delegated to Python: dereferencing ``None``
raises ``AttributeError``, which the function-level handler converts to
the VM's NullPointerError.  Bounds checks are explicit (Python's
negative indexing would silently wrap).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cache.artifact import UnlinkableArtifact, encode_value, hook_ref
from repro.opt.ir import Const, IRFunction, IRInstr, Operand, Reg
from repro.vm.interpreter import JxStackTrace, _is_ref
from repro.vm.shapes import UnboxedField as _UnboxedField
from repro.vm.values import (
    ArrayBoundsError,
    ClassCastError,
    NullPointerError,
    VMArray,
    VMRuntimeError,
    jx_rem,
    jx_str,
    jx_truncate_div,
)

_BIN_FMT = {
    "add": "{0} + {1}",
    "sub": "{0} - {1}",
    "mul": "{0} * {1}",
    "shl": "{0} << {1}",
    "shr": "{0} >> {1}",
    "band": "{0} & {1}",
    "bor": "{0} | {1}",
    "bxor": "{0} ^ {1}",
    "lt": "{0} < {1}",
    "le": "{0} <= {1}",
    "gt": "{0} > {1}",
    "ge": "{0} >= {1}",
    "idiv": "_idiv({0}, {1})",
    "fdiv": "_fdiv({0}, {1})",
    "irem": "_irem({0}, {1})",
    "eq": "_eq({0}, {1})",
    "ne": "not _eq({0}, {1})",
    "concat": "_jstr({0}) + _jstr({1})",
}
_UN_FMT = {
    "neg": "-{0}",
    "not": "not {0}",
    "i2d": "float({0})",
    "d2i": "int({0})",
}


def _py_fdiv(a: float, b: float) -> float:
    if b == 0:
        if a == 0:
            return float("nan")
        return float("inf") if a > 0 else float("-inf")
    return a / b


def _py_eq(a: Any, b: Any) -> bool:
    return (a is b) if _is_ref(a) or _is_ref(b) else (a == b)


def _is_unboxed(slot: Any) -> bool:
    return isinstance(slot, _UnboxedField)


class _LoopNode:
    """One level of the loop-nesting tree used for code emission.

    ``dispatch_ids`` — the block ids this level can actually route to
    (its own blocks plus everything owned by descendants).  Using the
    owned closure (not the raw natural-loop body) guarantees a level is
    only entered when it can make progress, even for oddly-overlapping
    loop bodies.
    """

    __slots__ = ("body_ids", "own_blocks", "children", "dispatch_ids",
                 "min_id", "is_root")

    def __init__(self, body_ids: set[int], is_root: bool = False) -> None:
        self.body_ids = body_ids
        self.own_blocks: list[Any] = []
        self.children: list["_LoopNode"] = []
        self.dispatch_ids: set[int] = set()
        self.min_id = min(body_ids) if body_ids else 0
        self.is_root = is_root

    def finalize(self) -> None:
        for child in self.children:
            child.finalize()
        self.dispatch_ids = {b.id for b in self.own_blocks}
        for child in self.children:
            self.dispatch_ids |= child.dispatch_ids
        if self.dispatch_ids:
            self.min_id = min(self.dispatch_ids)


def _build_loop_tree(fn: IRFunction) -> _LoopNode:
    """Nest natural loops by body inclusion; every block is owned by the
    innermost loop containing it (or the root)."""
    from repro.opt.cfg import natural_loops

    blocks = {b.id: b for b in fn.block_order()}
    root = _LoopNode(set(blocks), is_root=True)
    loops = sorted(
        natural_loops(fn), key=lambda hl: (len(hl[1]), hl[0])
    )
    nodes = [_LoopNode(set(body)) for _, body in loops]
    for i, node in enumerate(nodes):
        parent = root
        for candidate in nodes[i + 1:]:
            if node.body_ids < candidate.body_ids:
                parent = candidate
                break
        parent.children.append(node)
    # Assign blocks to the innermost containing node (smallest first).
    for bid, block in blocks.items():
        owner = root
        for node in nodes:
            if bid in node.body_ids:
                owner = node
                break
        owner.own_blocks.append(block)
    root.finalize()
    return root


class PyCodegen:
    """Generates one Python function from one IRFunction."""

    def __init__(self, fn: IRFunction, func_name: str = "_jx") -> None:
        self.fn = fn
        self.func_name = func_name
        self.globals: dict[str, Any] = {
            "_idiv": jx_truncate_div,
            "_irem": jx_rem,
            "_fdiv": _py_fdiv,
            "_eq": _py_eq,
            "_jstr": jx_str,
            "_VMArray": VMArray,
            "_NPE": NullPointerError,
            "_OOB": ArrayBoundsError,
            "_CAST": ClassCastError,
        }
        self._pin_counter = 0
        self.lines: list[str] = []
        #: Pin name -> symbolic descriptor, for the compile cache; a pin
        #: without one makes the function uncacheable (never mis-linked).
        self.pin_refs: dict[str, list] = {}
        self.uncacheable: list[str] = []
        #: The compiled code object (set by :meth:`generate`).
        self.code: Any = None

    # -- helpers -----------------------------------------------------------

    def _pin(self, prefix: str, obj: Any, ref: list | None = None) -> str:
        name = f"_{prefix}{self._pin_counter}"
        self._pin_counter += 1
        self.globals[name] = obj
        if ref is not None:
            self.pin_refs[name] = ref
        else:
            self.uncacheable.append(f"{prefix}: {obj!r}")
        return name

    @staticmethod
    def _value_ref(value: Any) -> list | None:
        try:
            return ["value", encode_value(value)]
        except UnlinkableArtifact:
            return None

    @staticmethod
    def _reg(reg: Reg) -> str:
        return "v_" + reg.name

    @staticmethod
    def _primitive_const(operands: list[Operand]) -> bool:
        return any(
            isinstance(a, Const)
            and a.value is not None
            and isinstance(a.value, (bool, int, float, str))
            for a in operands
        )

    def _operand(self, operand: Operand) -> str:
        if isinstance(operand, Const):
            value = operand.value
            if isinstance(value, float):
                # repr covers inf/nan incorrectly; pin those.
                if value != value or value in (float("inf"), float("-inf")):
                    return self._pin("c", value, self._value_ref(value))
                return repr(value)
            if isinstance(value, (bool, int, str)) or value is None:
                return repr(value)
            return self._pin("c", value, self._value_ref(value))
        return self._reg(operand)

    def _emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    # -- instruction emission --------------------------------------------------

    def _emit_instr(self, instr: IRInstr, indent: int) -> None:
        op = instr.op
        args = [self._operand(a) for a in instr.args]
        dest = self._reg(instr.dest) if instr.dest is not None else None
        E = self._emit
        if op == "mov":
            E(indent, f"{dest} = {args[0]}")
        elif op in ("eq", "ne") and self._primitive_const(instr.args):
            # When either side is a non-null primitive constant, Python's
            # ``==`` agrees with the VM's reference-identity rule (a
            # reference never equals a primitive), so skip the helper.
            py_op = "==" if op == "eq" else "!="
            E(indent, f"{dest} = {args[0]} {py_op} {args[1]}")
        elif op in _BIN_FMT:
            E(indent, f"{dest} = {_BIN_FMT[op].format(*args)}")
        elif op in _UN_FMT:
            E(indent, f"{dest} = {_UN_FMT[op].format(*args)}")
        elif op == "getfield":
            slot = instr.extra.slot
            if type(slot) is int:
                E(indent, f"{dest} = {args[0]}.fields[{slot}]")
            elif _is_unboxed(slot):
                # Lifetime-constant field unboxed out of the instance
                # (repro.vm.shapes): fold the read to its literal.  The
                # bare attribute touch keeps null-receiver semantics —
                # ``None.fields`` raises, converted to NPE below.
                E(indent, f"{args[0]}.fields")
                E(indent, f"{dest} = {self._operand(Const(slot.value))}")
            else:
                # Pinned state field: storage may be dropped while the
                # object sits in a hot state; read through the TIB's
                # shape when the packed tail is truncated.
                i = int(slot)
                E(indent, f"_sfv = {args[0]}.fields")
                E(
                    indent,
                    f"{dest} = _sfv[{i}] if {i} < len(_sfv) "
                    f"else {args[0]}.tib.shape.pinned[{i}]",
                )
        elif op == "putfield":
            slot = instr.extra.slot
            if type(slot) is int:
                E(indent, f"{args[0]}.fields[{slot}] = {args[1]}")
            elif _is_unboxed(slot):
                # Writes to an unboxed field only happen in the ctor,
                # always storing the proven constant: keep the null
                # check, drop the store.
                E(indent, f"{args[0]}.fields")
            else:
                # Rematerialize dropped pinned storage before storing —
                # the state hook below may re-evaluate and re-truncate.
                i = int(slot)
                E(indent, f"_sfv = {args[0]}.fields")
                E(indent, f"if {i} >= len(_sfv):")
                E(indent + 1, f"_sfv.extend({args[0]}.tib.shape.tail)")
                E(
                    indent + 1,
                    "vm.heap.pinned_bytes_restored += "
                    f"{args[0]}.tib.shape.tail_bytes",
                )
                E(indent, f"_sfv[{i}] = {args[1]}")
            if instr.extra.hook is not None:
                spec = getattr(instr.extra.hook, "inline_spec", None)
                if spec is not None and spec[0] == "deferred":
                    # Coalesced state write: no re-evaluation here, just
                    # the skipped-swap count (no call on the fast path).
                    # Charged to the *invoking* vm so sessions sharing
                    # this code each keep their own count.
                    E(indent, "vm.mutation_stats.swaps_coalesced += 1")
                else:
                    hook = self._pin("hook", instr.extra.hook,
                                     hook_ref(instr.extra.hook))
                    E(indent, f"{hook}(vm, {args[0]})")
        elif op == "getstatic":
            E(indent, f"{dest} = _sf[{instr.extra.slot}]")
        elif op == "putstatic":
            E(indent, f"_sf[{instr.extra.slot}] = {args[0]}")
            if instr.extra.hook is not None:
                hook = self._pin("hook", instr.extra.hook,
                                 hook_ref(instr.extra.hook))
                E(indent, f"{hook}(vm, None)")
        elif op == "new":
            rc = self._pin("rc", instr.extra.rc,
                           ["class", instr.extra.rc.name])
            E(indent, f"{dest} = {rc}.allocate(vm)")
        elif op == "newarray":
            fill = self._pin("fill", instr.extra.fill,
                             self._value_ref(instr.extra.fill))
            E(
                indent,
                f"{dest} = _VMArray({instr.extra.elem!r}, {args[0]}, {fill})",
            )
            E(
                indent,
                f"vm.heap.record_array({args[0]}, {instr.extra.elem!r})",
            )
        elif op == "aload":
            if instr.extra.bounds:
                E(
                    indent,
                    f"if not 0 <= {args[1]} < len({args[0]}.data): "
                    f"raise _OOB('index ' + str({args[1]}) + ' out of range')",
                )
            E(indent, f"{dest} = {args[0]}.data[{args[1]}]")
        elif op == "astore":
            if instr.extra.bounds:
                E(
                    indent,
                    f"if not 0 <= {args[1]} < len({args[0]}.data): "
                    f"raise _OOB('index ' + str({args[1]}) + ' out of range')",
                )
            E(indent, f"{args[0]}.data[{args[1]}] = {args[2]}")
        elif op == "arraylen":
            E(indent, f"{dest} = len({args[0]}.data)")
        elif op == "instanceof":
            name = self._pin("tn", instr.extra.rc.name,
                             ["value", instr.extra.rc.name])
            E(
                indent,
                f"{dest} = {args[0]} is not None and {name} in "
                f"{args[0]}.tib.type_info.all_supertypes",
            )
        elif op == "checkcast":
            name = self._pin("tn", instr.extra.rc.name,
                             ["value", instr.extra.rc.name])
            E(
                indent,
                f"if {args[0]} is not None and {name} not in "
                f"{args[0]}.tib.type_info.all_supertypes: "
                f"raise _CAST('cannot cast to ' + {name})",
            )
        elif op == "callv":
            call = (
                f"{args[0]}.tib.entries[{instr.extra.offset}]"
                f".invoke(vm, [{', '.join(args)}])"
            )
            E(indent, f"{dest} = {call}" if dest else call)
        elif op == "calls":
            cls, _, key = instr.extra.cell.qualified_name.partition(".")
            cell = self._pin("cell", instr.extra.cell,
                             ["cell", cls, key])
            call = f"{cell}.compiled.invoke(vm, [{', '.join(args)}])"
            E(indent, f"{dest} = {call}" if dest else call)
        elif op == "callsp":
            target = instr.extra.rm
            rm = self._pin("rm", target,
                           ["method", target.rclass.name, target.info.key])
            call = f"{rm}.compiled.invoke(vm, [{', '.join(args)}])"
            E(indent, f"{dest} = {call}" if dest else call)
        elif op == "calli":
            call = (
                f"{args[0]}.tib.imt.dispatch({args[0]}, "
                f"{instr.extra.slot}, {instr.extra.key!r})"
                f".invoke(vm, [{', '.join(args)}])"
            )
            E(indent, f"{dest} = {call}" if dest else call)
        elif op == "intr":
            ifn = self._pin("ifn", instr.extra.intrinsic.fn,
                            ["intrinsic", instr.extra.intrinsic.name])
            call = f"{ifn}(_ctx, {', '.join(args)})" if args else f"{ifn}(_ctx)"
            E(indent, f"{dest} = {call}" if dest else call)
        elif op == "hookcall":
            spec = getattr(instr.extra.hook, "inline_spec", None)
            if spec is not None and spec[0] in ("single", "single_memo"):
                # Inline the single-state-field TIB re-evaluation: the
                # common per-allocation path gets no function call at
                # all.  The swap count goes to the *invoking* vm's
                # mutation_stats — the same field every other swap path
                # updates, and per-session in shared code spaces.  The
                # "single_memo" variant (VMConfig.memo) also bumps the
                # invoking vm's memo epoch for the class, invalidating
                # memoized specialized results (repro.vm.memo).
                _, rc, slot, table, class_tib = spec
                obj = args[0]
                rc_p = self._pin("rc", rc, ["class", rc.name])
                tbl_p = self._pin("tbl", table, ["tib_table1", rc.name])
                ctib_p = self._pin("ctib", class_tib,
                                   ["class_tib", rc.name])
                E(indent, f"if {obj}.tib.type_info is {rc_p}:")
                E(indent + 1,
                  f"_nt = {tbl_p}.get({obj}.fields[{slot}], {ctib_p})")
                E(indent + 1, f"if {obj}.tib is not _nt:")
                E(indent + 2, f"{obj}.tib = _nt")
                E(indent + 2, "vm.mutation_stats.tib_swaps += 1")
                if spec[0] == "single_memo":
                    E(indent + 2, "_me = vm.memo.epochs")
                    E(indent + 2,
                      f"_me[{rc.name!r}] = _me.get({rc.name!r}, 0) + 1")
            else:
                hook = self._pin("hook", instr.extra.hook,
                                 hook_ref(instr.extra.hook))
                E(indent, f"{hook}(vm, {args[0]})")
        elif op == "deoptcheck":
            # Mid-frame deopt guard (repro.vm.osr): the preceding state
            # write re-evaluated the receiver's TIB; if it moved off the
            # specialized-for special TIB, this frame's speculation is
            # stale — hand the live locals back to the interpreter at
            # the recorded pc.  Fast path is one identity test.
            from repro.vm.osr import deopt_to_interpreter

            ex = instr.extra
            tib = ex.tib
            try:
                tib_ref = [
                    "special_tib",
                    tib.type_info.name,
                    [encode_value(v) for v in tib.state],
                ]
            except UnlinkableArtifact:
                tib_ref = None
            tib_p = self._pin("tib", tib, tib_ref)
            rm_p = self._pin(
                "rm", ex.rm, ["method", ex.rm.rclass.name, ex.rm.info.key]
            )
            dfn = self._pin("dfn", deopt_to_interpreter, ["osr_deopt"])
            by_slot = {k: args[1 + j] for j, k in enumerate(ex.live)}
            frame = ", ".join(
                by_slot.get(i, "None") for i in range(self.fn.max_locals)
            )
            E(indent, f"if {args[0]}.tib is not {tib_p}:")
            E(indent + 1, f"return {dfn}(vm, {rm_p}, {ex.pc}, [{frame}])")
        elif op == "ret":
            E(indent, f"return {args[0]}" if args else "return None")
        else:  # pragma: no cover
            raise AssertionError(f"cannot codegen IR op {op!r}")

    def _emit_goto(self, target: int, scope_ids: set[int], indent: int) -> None:
        """Set _bb and either stay in the current loop level (continue)
        or bubble out one level (break) based on static membership."""
        E = self._emit
        E(indent, f"_bb = {target}")
        E(indent, "continue" if target in scope_ids else "break")

    def _emit_block_body(
        self, block, scope_ids: set[int], indent: int
    ) -> None:
        E = self._emit
        body = block.instrs
        for instr in body[:-1]:
            self._emit_instr(instr, indent)
        term = body[-1]
        if term.op == "jump":
            self._emit_goto(term.extra.target, scope_ids, indent)
        elif term.op == "br":
            cond = self._operand(term.args[0])
            t, f = term.extra.if_true, term.extra.if_false
            t_in = t in scope_ids
            f_in = f in scope_ids
            if t_in == f_in:
                E(indent, f"_bb = {t} if {cond} else {f}")
                E(indent, "continue" if t_in else "break")
            else:
                E(indent, f"if {cond}:")
                self._emit_goto(t, scope_ids, indent + 1)
                E(indent, "else:")
                self._emit_goto(f, scope_ids, indent + 1)
        else:
            self._emit_instr(term, indent)

    def _emit_level(self, node: "_LoopNode", indent: int) -> None:
        """Emit one loop level: ``while True`` + dispatch over the
        level's own blocks (binary search on block id) after O(1)
        membership checks for child loops.  Jumping to a block outside
        the level breaks out; the parent level re-dispatches."""
        E = self._emit
        E(indent, "while True:")
        inner = indent + 1
        first = True
        for child in sorted(node.children, key=lambda c: c.min_id):
            ids = self._pin("lset", frozenset(child.dispatch_ids),
                            ["frozenset", sorted(child.dispatch_ids)])
            E(inner, f"{'if' if first else 'elif'} _bb in {ids}:")
            self._emit_level(child, inner + 1)
            E(inner + 1, "continue")
            first = False
        own = sorted(node.own_blocks, key=lambda b: b.id)
        body_indent = inner
        if not first:  # children were emitted; own blocks go in `else:`
            E(inner, "else:")
            body_indent = inner + 1
        if own:
            self._emit_block_tree(own, node, body_indent)
        else:
            self._emit_miss(node, body_indent)

    def _emit_miss(self, node: "_LoopNode", indent: int) -> None:
        E = self._emit
        if node.is_root:
            E(indent, "raise AssertionError('unknown block ' + str(_bb))")
        else:
            E(indent, "break")

    def _emit_block_tree(
        self, own: list, node: "_LoopNode", indent: int
    ) -> None:
        """Binary-search dispatch over this level's own blocks."""
        E = self._emit
        if len(own) == 1:
            if node.is_root and not node.children:
                # Sole candidate: no membership check needed.
                self._emit_block_body(own[0], node.dispatch_ids, indent)
                return
            E(indent, f"if _bb == {own[0].id}:")
            self._emit_block_body(own[0], node.dispatch_ids, indent + 1)
            E(indent, "else:")
            self._emit_miss(node, indent + 1)
            return
        if len(own) == 2:
            E(indent, f"if _bb == {own[0].id}:")
            self._emit_block_body(own[0], node.dispatch_ids, indent + 1)
            E(indent, f"elif _bb == {own[1].id}:")
            self._emit_block_body(own[1], node.dispatch_ids, indent + 1)
            E(indent, "else:")
            self._emit_miss(node, indent + 1)
            return
        mid = len(own) // 2
        E(indent, f"if _bb < {own[mid].id}:")
        self._emit_block_tree(own[:mid], node, indent + 1)
        E(indent, "else:")
        self._emit_block_tree(own[mid:], node, indent + 1)

    # -- function emission --------------------------------------------------------

    def generate(self) -> tuple[str, Callable[[Any, list[Any]], Any]]:
        """Return ``(source, executor)``."""
        fn = self.fn
        blocks = fn.block_order()
        E = self._emit
        E(0, f"def {self.func_name}(vm, args):")
        E(1, "try:")
        E(2, "_ctx = vm.intrinsic_ctx")
        E(2, "_sf = vm.jtoc.fields")
        for i in range(fn.num_args):
            E(2, f"v_l{i} = args[{i}]")
        # Deopt guards capture *may-live* locals unconditionally, so a
        # local the interpreter would hold as unwritten (= None) must
        # exist in this frame too.
        if any(
            instr.op == "deoptcheck"
            for block in blocks
            for instr in block.instrs
        ):
            for i in range(fn.num_args, fn.max_locals):
                E(2, f"v_l{i} = None")
        if len(blocks) == 1 and blocks[0].terminator.op == "ret":
            for instr in blocks[0].instrs:
                self._emit_instr(instr, 2)
        else:
            E(2, f"_bb = {fn.entry}")
            self._emit_level(_build_loop_tree(fn), 2)
        E(1, "except AttributeError as exc:")
        E(2, "raise _NPE(str(exc)) from exc")
        source = "\n".join(self.lines) + "\n"
        namespace: dict[str, Any] = dict(self.globals)
        code = compile(source, f"<jx-opt2:{fn.name}>", "exec")
        self.code = code
        exec(code, namespace)
        return source, namespace[self.func_name]


def generate_python(
    fn: IRFunction, rm: Any = None
) -> tuple[str, Callable[[Any, list[Any]], Any]]:
    """Compile ``fn`` to a Python executor; returns ``(source, fn)``.

    The raw generated function is returned directly — stack-trace
    annotation happens in :meth:`repro.vm.compiled.OptCompiled.invoke`
    (one fewer Python frame on the hot call path).
    """
    return PyCodegen(fn).generate()
