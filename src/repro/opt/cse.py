"""Block-local common-subexpression elimination for loads.

Duplicate ``getfield``/``getstatic``/``arraylen`` results within a block
are rewritten to reuse the first load (as a ``mov``, which copy
propagation then erases).  Conservative invalidation:

* a call (or mutation hook) may write any field — both field-load tables
  reset;
* ``putfield``/``putstatic`` kill loads of the same slot;
* ``arraylen`` facts survive everything (Jx arrays are fixed-length).

This is what lets the compound-assignment pattern
``a[i] = a[i] + 1`` collapse to a single field load and a single bounds
check.
"""

from __future__ import annotations

from repro.opt.ir import CALL_OPS, Const, IRFunction, IRInstr, Operand, Reg


def _operand_key(operand: Operand) -> tuple:
    if isinstance(operand, Const):
        return ("c", repr(operand.value))
    return ("r", operand.name)


def local_cse(fn: IRFunction) -> int:
    """Run load-CSE over every block; returns the number of loads reused."""
    reused = 0
    for block in fn.block_order():
        field_loads: dict[tuple, Reg] = {}
        static_loads: dict[int, Reg] = {}
        len_loads: dict[tuple, Reg] = {}
        new_instrs: list[IRInstr] = []
        for instr in block.instrs:
            op = instr.op
            replaced = False
            # A redefinition of a register invalidates facts built on it
            # (done *before* this instruction records its own fact).
            if instr.dest is not None:
                name = instr.dest.name
                field_loads = {
                    k: v
                    for k, v in field_loads.items()
                    if k[0] != ("r", name) and v.name != name
                }
                len_loads = {
                    k: v
                    for k, v in len_loads.items()
                    if k != ("r", name) and v.name != name
                }
                static_loads = {
                    k: v for k, v in static_loads.items() if v.name != name
                }
            if op == "getfield":
                key = (_operand_key(instr.args[0]), instr.extra.slot)
                prev = field_loads.get(key)
                if prev is not None:
                    new_instrs.append(
                        IRInstr("mov", instr.dest, [prev], line=instr.line)
                    )
                    reused += 1
                    replaced = True
                else:
                    field_loads[key] = instr.dest
            elif op == "getstatic":
                prev = static_loads.get(instr.extra.slot)
                if prev is not None:
                    new_instrs.append(
                        IRInstr("mov", instr.dest, [prev], line=instr.line)
                    )
                    reused += 1
                    replaced = True
                else:
                    static_loads[instr.extra.slot] = instr.dest
            elif op == "arraylen":
                key = _operand_key(instr.args[0])
                prev = len_loads.get(key)
                if prev is not None:
                    new_instrs.append(
                        IRInstr("mov", instr.dest, [prev], line=instr.line)
                    )
                    reused += 1
                    replaced = True
                else:
                    len_loads[key] = instr.dest
            elif op == "putfield":
                slot = instr.extra.slot
                field_loads = {
                    k: v for k, v in field_loads.items() if k[1] != slot
                }
            elif op == "putstatic":
                static_loads.pop(instr.extra.slot, None)
            elif op in CALL_OPS or op == "hookcall":
                field_loads.clear()
                static_loads.clear()

            if not replaced:
                new_instrs.append(instr)
        block.instrs = new_instrs
    return reused
