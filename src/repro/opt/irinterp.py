"""The opt1 execution engine: an IR interpreter.

Executes an optimized :class:`~repro.opt.ir.IRFunction` directly.  This
is JxVM's middle tier — the code has been through the cheap optimization
pipeline (fewer instructions than the bytecode) but avoids opt2's
codegen cost.  Backedge ticks keep feeding the adaptive system so hot
methods proceed to opt2.
"""

from __future__ import annotations

import operator
from typing import Any

from repro.opt.ir import Const, IRFunction
from repro.vm.interpreter import JxStackTrace, _is_ref
from repro.vm.values import (
    ArrayBoundsError,
    ClassCastError,
    NullPointerError,
    VMArray,
    VMRuntimeError,
    jx_rem,
    jx_str,
    jx_truncate_div,
)

_BIN = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "shl": operator.lshift,
    "shr": operator.rshift,
    "band": operator.and_,
    "bor": operator.or_,
    "bxor": operator.xor,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


def _fdiv(a: float, b: float) -> float:
    if b == 0:
        if a == 0:
            return float("nan")
        return float("inf") if a > 0 else float("-inf")
    return a / b


def _ref_eq(a: Any, b: Any) -> bool:
    return (a is b) if _is_ref(a) or _is_ref(b) else (a == b)


def execute_ir(vm: Any, rm: Any, fn: IRFunction, args: list[Any]) -> Any:
    """Run ``fn`` with ``args``; semantics identical to the bytecode tier."""
    regs: dict[str, Any] = {}
    for i in range(fn.num_args):
        regs[f"l{i}"] = args[i]
    samples = rm.samples
    blocks = fn.blocks
    bid = fn.entry

    def val(operand):
        if type(operand) is Const:
            return operand.value
        return regs[operand.name]

    try:
        while True:
            for instr in blocks[bid].instrs:
                op = instr.op
                a = instr.args
                if op == "mov":
                    regs[instr.dest.name] = val(a[0])
                elif op in _BIN:
                    regs[instr.dest.name] = _BIN[op](val(a[0]), val(a[1]))
                elif op == "getfield":
                    obj = val(a[0])
                    if obj is None:
                        raise NullPointerError(
                            f"null receiver reading {instr.extra.key}"
                        )
                    slot = instr.extra.slot
                    if type(slot) is int:
                        regs[instr.dest.name] = obj.fields[slot]
                    else:
                        # Shape-managed slot: pinned state fields read
                        # through the TIB's shape when their storage is
                        # dropped; unboxed constants always do.
                        regs[instr.dest.name] = slot.read(obj)
                elif op == "putfield":
                    obj = val(a[0])
                    if obj is None:
                        raise NullPointerError(
                            f"null receiver writing {instr.extra.key}"
                        )
                    slot = instr.extra.slot
                    if type(slot) is int:
                        obj.fields[slot] = val(a[1])
                    else:
                        slot.store(vm, obj, val(a[1]))
                    if instr.extra.hook is not None:
                        instr.extra.hook(vm, obj)
                elif op == "getstatic":
                    regs[instr.dest.name] = vm.jtoc.fields[instr.extra.slot]
                elif op == "putstatic":
                    vm.jtoc.fields[instr.extra.slot] = val(a[0])
                    if instr.extra.hook is not None:
                        instr.extra.hook(vm, None)
                elif op == "eq":
                    regs[instr.dest.name] = _ref_eq(val(a[0]), val(a[1]))
                elif op == "ne":
                    regs[instr.dest.name] = not _ref_eq(val(a[0]), val(a[1]))
                elif op == "idiv":
                    regs[instr.dest.name] = jx_truncate_div(
                        val(a[0]), val(a[1])
                    )
                elif op == "fdiv":
                    regs[instr.dest.name] = _fdiv(val(a[0]), val(a[1]))
                elif op == "irem":
                    regs[instr.dest.name] = jx_rem(val(a[0]), val(a[1]))
                elif op == "neg":
                    regs[instr.dest.name] = -val(a[0])
                elif op == "not":
                    regs[instr.dest.name] = not val(a[0])
                elif op == "i2d":
                    regs[instr.dest.name] = float(val(a[0]))
                elif op == "d2i":
                    regs[instr.dest.name] = int(val(a[0]))
                elif op == "concat":
                    regs[instr.dest.name] = jx_str(val(a[0])) + jx_str(
                        val(a[1])
                    )
                elif op == "aload":
                    arr = val(a[0])
                    idx = val(a[1])
                    if arr is None:
                        raise NullPointerError("null array in load")
                    if instr.extra.bounds and not 0 <= idx < len(arr.data):
                        raise ArrayBoundsError(
                            f"index {idx} out of range [0, {len(arr.data)})"
                        )
                    regs[instr.dest.name] = arr.data[idx]
                elif op == "astore":
                    arr = val(a[0])
                    idx = val(a[1])
                    if arr is None:
                        raise NullPointerError("null array in store")
                    if instr.extra.bounds and not 0 <= idx < len(arr.data):
                        raise ArrayBoundsError(
                            f"index {idx} out of range [0, {len(arr.data)})"
                        )
                    arr.data[idx] = val(a[2])
                elif op == "arraylen":
                    arr = val(a[0])
                    if arr is None:
                        raise NullPointerError("null array in length")
                    regs[instr.dest.name] = len(arr.data)
                elif op == "new":
                    regs[instr.dest.name] = instr.extra.rc.allocate(vm)
                elif op == "newarray":
                    length = val(a[0])
                    arr = VMArray(instr.extra.elem, length, instr.extra.fill)
                    vm.heap.record_array(length, instr.extra.elem)
                    regs[instr.dest.name] = arr
                elif op == "instanceof":
                    obj = val(a[0])
                    regs[instr.dest.name] = (
                        obj is not None
                        and instr.extra.rc.name
                        in obj.tib.type_info.all_supertypes
                    )
                elif op == "checkcast":
                    obj = val(a[0])
                    if (
                        obj is not None
                        and instr.extra.rc.name
                        not in obj.tib.type_info.all_supertypes
                    ):
                        raise ClassCastError(
                            f"cannot cast {obj.tib.type_info.name} to "
                            f"{instr.extra.rc.name}"
                        )
                elif op == "callv":
                    callargs = [val(x) for x in a]
                    recv = callargs[0]
                    if recv is None:
                        raise NullPointerError(
                            f"null receiver calling {instr.extra.key}"
                        )
                    result = recv.tib.entries[instr.extra.offset].invoke(
                        vm, callargs
                    )
                    if instr.dest is not None:
                        regs[instr.dest.name] = result
                elif op == "calls":
                    callargs = [val(x) for x in a]
                    result = instr.extra.cell.compiled.invoke(vm, callargs)
                    if instr.dest is not None:
                        regs[instr.dest.name] = result
                elif op == "callsp":
                    callargs = [val(x) for x in a]
                    if callargs[0] is None:
                        raise NullPointerError(
                            f"null receiver calling {instr.extra.key}"
                        )
                    result = instr.extra.rm.compiled.invoke(vm, callargs)
                    if instr.dest is not None:
                        regs[instr.dest.name] = result
                elif op == "calli":
                    callargs = [val(x) for x in a]
                    recv = callargs[0]
                    if recv is None:
                        raise NullPointerError(
                            f"null receiver calling {instr.extra.key}"
                        )
                    compiled = recv.tib.imt.dispatch(
                        recv, instr.extra.slot, instr.extra.key
                    )
                    result = compiled.invoke(vm, callargs)
                    if instr.dest is not None:
                        regs[instr.dest.name] = result
                elif op == "intr":
                    intr = instr.extra.intrinsic
                    result = intr.fn(
                        vm.intrinsic_ctx, *[val(x) for x in a]
                    )
                    if instr.dest is not None:
                        regs[instr.dest.name] = result
                elif op == "hookcall":
                    instr.extra.hook(vm, val(a[0]))
                elif op == "deoptcheck":
                    obj = val(a[0])
                    if obj.tib is not instr.extra.tib:
                        from repro.vm.osr import deopt_to_interpreter

                        live = set(instr.extra.live)
                        locs = [
                            regs.get(f"l{i}") if i in live else None
                            for i in range(fn.max_locals)
                        ]
                        return deopt_to_interpreter(
                            vm, instr.extra.rm, instr.extra.pc, locs
                        )
                elif op == "jump":
                    target = instr.extra.target
                    if target <= bid:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            vm.adaptive.on_hot(rm)
                    bid = target
                    break
                elif op == "br":
                    target = (
                        instr.extra.if_true
                        if val(a[0])
                        else instr.extra.if_false
                    )
                    if target <= bid:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            vm.adaptive.on_hot(rm)
                    bid = target
                    break
                elif op == "ret":
                    return val(a[0]) if a else None
                else:  # pragma: no cover
                    raise VMRuntimeError(f"unhandled IR op {op!r}")
    except JxStackTrace as trace:
        trace.frames.append(f"{fn.name} (opt1)")
        raise
    except VMRuntimeError as exc:
        raise JxStackTrace(exc, [f"{fn.name} (opt1)"]) from exc
