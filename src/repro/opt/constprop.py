"""Global constant propagation.

A forward meet-over-paths dataflow on the (non-SSA) register IR:
lattice per register is Top (unassigned on this path) / Const(v) /
NAC (not-a-constant).  After the fixpoint, a rewriting sweep replaces
register uses that are constant on *every* path with immediates and
re-folds; the paper leans on exactly this to let specialized state
fields erase dispatch chains (constant propagation is the first
conventional optimization the mutation framework enables, §1).
"""

from __future__ import annotations

from typing import Any

from repro.opt.cfg import predecessors
from repro.opt.fold import NoFold, fold_op
from repro.opt.ir import (
    BINARY_OPS,
    Const,
    IRFunction,
    Reg,
    UNARY_OPS,
)

#: Bottom marker: register holds different values on different paths.
NAC = object()


def _meet_states(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Pointwise meet; a missing key is Top (identity)."""
    out = dict(a)
    for name, val in b.items():
        if name not in out:
            out[name] = val
        elif out[name] is NAC or val is NAC:
            out[name] = NAC
        elif not _const_same(out[name], val):
            out[name] = NAC
    return out


def _const_same(a: Any, b: Any) -> bool:
    return type(a) is type(b) and a == b


def _transfer_instr(instr, state: dict[str, Any]) -> None:
    if instr.dest is None:
        return
    name = instr.dest.name
    op = instr.op
    if op == "mov":
        src = instr.args[0]
        if isinstance(src, Const):
            state[name] = src.value
        else:
            state[name] = state.get(src.name, NAC)
        return
    if op in BINARY_OPS or op in UNARY_OPS:
        vals = []
        all_const = True
        for a in instr.args:
            if isinstance(a, Const):
                vals.append(a.value)
            else:
                v = state.get(a.name, NAC)
                if v is NAC:
                    all_const = False
                    break
                vals.append(v)
        if all_const:
            try:
                state[name] = fold_op(op, vals)
                return
            except NoFold:
                pass
        state[name] = NAC
        return
    # Calls, loads, allocations: unknown.
    state[name] = NAC


def constant_propagation(fn: IRFunction) -> int:
    """Run the analysis + rewrite; returns number of operands rewritten."""
    preds = predecessors(fn)
    order = [b.id for b in fn.block_order()]
    entry_state: dict[str, Any] = {
        f"l{i}": NAC for i in range(fn.num_args)
    }
    in_states: dict[int, dict[str, Any]] = {fn.entry: entry_state}
    out_states: dict[int, dict[str, Any]] = {}

    work = list(order)
    while work:
        bid = work.pop(0)
        if bid == fn.entry:
            in_state = dict(entry_state)
        else:
            incoming = [
                out_states[p] for p in preds.get(bid, []) if p in out_states
            ]
            if not incoming:
                continue
            in_state = incoming[0]
            for other in incoming[1:]:
                in_state = _meet_states(in_state, other)
        in_states[bid] = in_state
        state = dict(in_state)
        for instr in fn.blocks[bid].instrs:
            _transfer_instr(instr, state)
        if out_states.get(bid) != state:
            out_states[bid] = state
            for s in fn.blocks[bid].successors():
                if s not in work:
                    work.append(s)

    # Rewrite sweep.
    rewritten = 0
    for bid in order:
        state = dict(in_states.get(bid, {}))
        for instr in fn.blocks[bid].instrs:
            new_args = []
            for a in instr.args:
                if isinstance(a, Reg):
                    v = state.get(a.name, NAC)
                    if v is not NAC:
                        new_args.append(Const(v))
                        rewritten += 1
                        continue
                new_args.append(a)
            instr.args = new_args
            _transfer_instr(instr, state)
    return rewritten
