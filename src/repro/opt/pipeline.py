"""The optimizing compiler driver.

Pass schedules (paper §3.2.1: Jikes opt compiler at levels opt0–opt2;
JxVM's opt0 is the interpreter, so the optimizing pipeline covers opt1
and opt2):

* **opt1** — lower, simplify, constant propagation, CFG cleanup, DCE;
  executed by the IR interpreter.
* **opt2** — opt1's pipeline plus inlining (with specialization
  inlining), strength reduction, and bounds-check elimination, iterated
  to a fixpoint; emitted as Python code.

Specialized versions (``compile(..., bindings=...)``) run the
specialization pass right after lowering/inlining so the bound state
fields feed the whole downstream pipeline — this is how "the mutable
functions can be compiled with grade specialized to 0, 1, 2, or 3"
(paper §2.2) happens here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.core import maybe as _tel_maybe

from repro.analysis.estimates import bounds_may_help, cse_may_help
from repro.cache.artifact import (
    UnlinkableArtifact,
    link_opt2,
    opt2_artifact,
)
from repro.cache.irser import ir_from_dict, ir_to_dict
from repro.opt.boundselim import eliminate_bounds_checks
from repro.opt.branchfold import cleanup_cfg
from repro.opt.constprop import constant_propagation
from repro.opt.cse import local_cse
from repro.opt.dce import dead_code_elimination
from repro.opt.inline import InlineConfig, inline_calls
from repro.opt.ir import clone_ir
from repro.opt.irinterp import execute_ir
from repro.opt.lowering import lower_method
from repro.opt.pycodegen import PyCodegen
from repro.opt.simplify import simplify
from repro.opt.specialize import SpecBindings, specialize_ir
from repro.opt.strength import strength_reduce
from repro.vm.compiled import OptCompiled

#: Modeled bytes per IR instruction for the opt1 code-size metric.
IR_INSTR_BYTES = 16


@dataclass
class OptConfig:
    """Optimizing-compiler tunables."""

    inline: InlineConfig = field(default_factory=InlineConfig)
    #: Maximum simplify/constprop/cleanup/DCE fixpoint iterations.
    max_iterations: int = 5
    #: Compile-time budget gate: skip ``cse``/``boundselim`` when a cheap
    #: one-scan estimate proves the pass cannot fire (no block repeats
    #: one of the dedup keys the pass reuses — see
    #: :mod:`repro.analysis.estimates`).  The
    #: estimate is a sound over-approximation — a gated run would have
    #: been a no-op — so results are identical with the gate on; skipped
    #: runs are counted under ``opt.pass_gated.*``.  Default off.
    budget_gate: bool = False


# Benefit estimates live in the analysis package (they key on the
# passes' actual dedup keys, not coarse op counts); the old names stay
# importable for the soundness tests and external callers.
_cse_may_help = cse_may_help
_bounds_may_help = bounds_may_help


class OptCompiler:
    """Compiles RuntimeMethods at opt1/opt2 for one VM."""

    def __init__(self, vm: Any, config: OptConfig | None = None) -> None:
        self.vm = vm
        self.config = config or OptConfig()
        #: id(RuntimeMethod) -> post-inline opt2 IR snapshot.
        self._ir_snapshots: dict[int, Any] = {}

    # ------------------------------------------------------------------

    def _pass(self, name: str, pass_fn, fn) -> int:
        """Run one optimizer pass, timing it when telemetry is active."""
        tel = _tel_maybe(self.vm.telemetry)
        if tel is None:
            return pass_fn(fn)
        start = time.perf_counter()
        result = pass_fn(fn)
        seconds = time.perf_counter() - start
        tel.emit(
            "opt_pass", dur=seconds, opt_pass=name,
            changed=result if isinstance(result, (int, bool)) else None,
        )
        tel.observe(f"opt.pass_seconds.{name}", seconds)
        return result

    def _gated(self, name: str) -> None:
        """Record one budget-gated (skipped) pass run."""
        tel = _tel_maybe(self.vm.telemetry)
        if tel is not None:
            tel.count("opt.pass_gated")
            tel.count(f"opt.pass_gated.{name}")

    def _run_core_pipeline(self, fn) -> None:
        run = self._pass
        gate = self.config.budget_gate
        for _ in range(self.config.max_iterations):
            changed = run("simplify", simplify, fn)
            if gate and not _cse_may_help(fn):
                self._gated("cse")
            else:
                changed += run("cse", local_cse, fn)
            changed += run("constprop", constant_propagation, fn)
            changed += run("cleanup_cfg", cleanup_cfg, fn)
            changed += run("dce", dead_code_elimination, fn)
            if not changed:
                break

    def spec_ir(self, rm: Any):
        """The post-inline opt2 IR specialization starts from, for
        analyses (:mod:`repro.opt.eqstate`) that must see exactly what
        ``specialize_ir`` will rewrite.

        Returns the general compile's snapshot when one exists; a
        cache-warm general compile links an artifact without ever
        lowering, so this builds (and snapshots) the IR on demand.
        Callers must treat the result as read-only — ``build_ir`` clones
        the snapshot before mutating it.
        """
        fn = self._ir_snapshots.get(id(rm))
        if fn is None:
            fn = self._pass(
                "lower", lambda _f: lower_method(rm.info), None
            )
            self._pass(
                "inline",
                lambda f: inline_calls(
                    f, self.vm, rm, self.config.inline
                ),
                fn,
            )
            self._ir_snapshots[id(rm)] = fn
        return fn

    def build_ir(
        self,
        rm: Any,
        opt_level: int,
        bindings: SpecBindings | None = None,
    ):
        """Produce optimized IR for ``rm`` at ``opt_level``.

        The post-inline IR of an opt2 *general* compile is snapshotted on
        the RuntimeMethod; specialized versions clone that snapshot
        instead of re-lowering and re-inlining (Fig. 5 generates the
        general and all special versions together, so the snapshot is
        always fresh when the manager asks for specials).
        """
        fn = None
        if opt_level >= 2 and bindings:
            snapshot = self._ir_snapshots.get(id(rm))
            if snapshot is not None:
                fn = clone_ir(snapshot)
        if fn is None:
            fn = self._pass(
                "lower", lambda _f: lower_method(rm.info), None
            )
            if opt_level >= 2:
                self._pass(
                    "inline",
                    lambda f: inline_calls(
                        f, self.vm, rm, self.config.inline
                    ),
                    fn,
                )
                self._ir_snapshots[id(rm)] = clone_ir(fn)
        if bindings:
            self._pass(
                "specialize", lambda f: specialize_ir(f, bindings), fn
            )
            if (bindings.tib is not None
                    and getattr(self.vm.config, "osr", False)):
                # Arm mid-frame deopt: after every TIB-re-evaluating
                # state write on `this`, guard that the receiver still
                # has the specialized-for TIB and bail to the
                # interpreter otherwise (OSR's reverse direction).
                from repro.vm.osr import insert_deopt_points

                self._pass(
                    "deoptpoints",
                    lambda f: insert_deopt_points(f, rm, bindings.tib),
                    fn,
                )
        self._run_core_pipeline(fn)
        if opt_level >= 2:
            self._pass("strength", strength_reduce, fn)
            if self.config.budget_gate and not _bounds_may_help(fn):
                self._gated("boundselim")
            else:
                self._pass("boundselim", eliminate_bounds_checks, fn)
            self._run_core_pipeline(fn)
        return fn

    def compile_osr_continuation(self, rm: Any, pc: int, opt_level: int):
        """Compile an OSR continuation of ``rm`` entered at bytecode
        ``pc`` and return ``(executor, code_size_bytes)``.

        The executor's signature matches the normal one —
        ``executor(vm, args)`` — but ``args`` is the *full captured
        locals frame* (``max_locals`` values), not the parameter list.
        Continuations are per-frame-shape artifacts keyed by runtime
        state, so they are never cached or snapshotted; the entry-point
        cache lives on the RuntimeMethod (``rm.osr_entries``)."""
        from repro.opt.lowering import lower_method_osr

        fn = lower_method_osr(rm.info, pc)
        if opt_level >= 2:
            self._pass(
                "inline",
                lambda f: inline_calls(f, self.vm, rm, self.config.inline),
                fn,
            )
        self._run_core_pipeline(fn)
        if opt_level >= 2:
            self._pass("strength", strength_reduce, fn)
            if self.config.budget_gate and not _bounds_may_help(fn):
                self._gated("boundselim")
            else:
                self._pass("boundselim", eliminate_bounds_checks, fn)
            self._run_core_pipeline(fn)
        if opt_level == 1:
            def executor(vm, args, _fn=fn, _rm=rm):
                return execute_ir(vm, _rm, _fn, args)

            return executor, fn.instr_count() * IR_INSTR_BYTES
        source, executor = PyCodegen(fn, func_name="_jx_osr").generate()
        return executor, len(source)

    def compile(
        self,
        rm: Any,
        opt_level: int,
        bindings: SpecBindings | None = None,
    ) -> OptCompiled:
        """Compile one version of ``rm`` (general, or specialized when
        ``bindings`` are given) and return the compiled method.  The
        caller installs it.

        With a compile cache attached to the VM, a prior compile of the
        same (program, method, tier, bindings, config, environment) is
        re-linked instead of recompiled; misses populate the cache."""
        if opt_level not in (1, 2):
            raise ValueError(f"opt_level must be 1 or 2, got {opt_level}")
        cache = getattr(self.vm, "compile_cache", None)
        key = None
        if cache is not None:
            key = cache.key_for(self.vm, rm, opt_level, bindings,
                                self.config)
            # The whole load→compile→store sequence runs under the
            # key's lock: a concurrent compiler of the same key waits
            # here and then hits what the first one stored, instead of
            # recompiling (and the load can never race a store).
            with cache.key_lock(key) as waited:
                if waited:
                    tel = _tel_maybe(self.vm.telemetry)
                    if tel is not None:
                        tel.observe("cache.lock_wait_seconds", waited)
                return self._compile_exclusive(
                    cache, key, rm, opt_level, bindings
                )
        return self._compile_exclusive(cache, key, rm, opt_level, bindings)

    def _compile_exclusive(
        self,
        cache: Any,
        key: str | None,
        rm: Any,
        opt_level: int,
        bindings: SpecBindings | None,
    ) -> OptCompiled:
        """The compile body; the caller holds ``key``'s lock when a
        cache is attached."""
        if cache is not None:
            cm = self._link_cached(cache, key, rm, opt_level, bindings)
            if cm is not None:
                return cm
        fn = self.build_ir(rm, opt_level, bindings)
        state_label = bindings.label if bindings else None
        artifact = None
        if opt_level == 1:
            def executor(vm, args, _fn=fn, _rm=rm):
                return execute_ir(vm, _rm, _fn, args)

            cm = OptCompiled(
                rm,
                executor,
                opt_level=1,
                specialized_state=state_label,
                code_size_bytes=fn.instr_count() * IR_INSTR_BYTES,
                ir=fn,
            )
            if cache is not None:
                try:
                    artifact = {"kind": "opt1", "ir": ir_to_dict(fn)}
                except UnlinkableArtifact:
                    cache.uncacheable += 1
        else:
            gen = PyCodegen(fn)
            source, executor = gen.generate()
            cm = OptCompiled(
                rm,
                executor,
                opt_level=2,
                specialized_state=state_label,
                code_size_bytes=len(source),
                ir=fn,
                source_text=source,
            )
            if cache is not None:
                if gen.uncacheable:
                    cache.uncacheable += 1
                else:
                    artifact = opt2_artifact(
                        gen.func_name, source, gen.pin_refs, gen.code
                    )
        if cache is not None and artifact is not None:
            cache.store(key, artifact, meta={
                "cls": rm.rclass.name,
                "method": rm.info.key,
                "opt_level": opt_level,
                "special": state_label,
            })
        # Under active telemetry, keep dispatch going through the
        # counting invoke() even for final-tier methods (the direct
        # executor binding would make their calls invisible).
        if _tel_maybe(self.vm.telemetry) is not None:
            cm.__dict__.pop("invoke", None)
        return cm

    def _link_cached(
        self,
        cache: Any,
        key: str,
        rm: Any,
        opt_level: int,
        bindings: SpecBindings | None,
    ) -> OptCompiled | None:
        """Try to build an OptCompiled from a cache entry.  Any failure
        (absent, corrupt, or unlinkable entry) is a miss and the caller
        compiles normally — correctness never depends on the cache."""
        tel = _tel_maybe(self.vm.telemetry)
        start = time.perf_counter()
        artifact = cache.load(key)
        cm = None
        if artifact is not None:
            state_label = bindings.label if bindings else None
            try:
                if artifact.get("kind") == "opt1" and opt_level == 1:
                    fn = ir_from_dict(self.vm, artifact["ir"])

                    def executor(vm, args, _fn=fn, _rm=rm):
                        return execute_ir(vm, _rm, _fn, args)

                    cm = OptCompiled(
                        rm,
                        executor,
                        opt_level=1,
                        specialized_state=state_label,
                        code_size_bytes=(
                            fn.instr_count() * IR_INSTR_BYTES
                        ),
                        ir=fn,
                    )
                elif artifact.get("kind") == "opt2" and opt_level == 2:
                    source, executor = link_opt2(self.vm, artifact)
                    cm = OptCompiled(
                        rm,
                        executor,
                        opt_level=2,
                        specialized_state=state_label,
                        code_size_bytes=len(source),
                        ir=None,
                        source_text=source,
                    )
            except Exception:
                # Mis-linked or corrupt entry: count it and recompile.
                cache.link_errors += 1
                cm = None
        if cm is None:
            cache.misses += 1
            if tel is not None:
                tel.count("cache.miss")
            return None
        cm.from_cache = True
        cache.hits += 1
        if tel is not None:
            tel.count("cache.hit")
            tel.observe(
                "cache.load_seconds", time.perf_counter() - start
            )
            cm.__dict__.pop("invoke", None)
        return cm
