"""The optimizing compiler driver.

Pass schedules (paper §3.2.1: Jikes opt compiler at levels opt0–opt2;
JxVM's opt0 is the interpreter, so the optimizing pipeline covers opt1
and opt2):

* **opt1** — lower, simplify, constant propagation, CFG cleanup, DCE;
  executed by the IR interpreter.
* **opt2** — opt1's pipeline plus inlining (with specialization
  inlining), strength reduction, and bounds-check elimination, iterated
  to a fixpoint; emitted as Python code.

Specialized versions (``compile(..., bindings=...)``) run the
specialization pass right after lowering/inlining so the bound state
fields feed the whole downstream pipeline — this is how "the mutable
functions can be compiled with grade specialized to 0, 1, 2, or 3"
(paper §2.2) happens here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.core import maybe as _tel_maybe

from repro.opt.boundselim import eliminate_bounds_checks
from repro.opt.branchfold import cleanup_cfg
from repro.opt.constprop import constant_propagation
from repro.opt.cse import local_cse
from repro.opt.dce import dead_code_elimination
from repro.opt.inline import InlineConfig, inline_calls
from repro.opt.ir import clone_ir
from repro.opt.irinterp import execute_ir
from repro.opt.lowering import lower_method
from repro.opt.pycodegen import generate_python
from repro.opt.simplify import simplify
from repro.opt.specialize import SpecBindings, specialize_ir
from repro.opt.strength import strength_reduce
from repro.vm.compiled import OptCompiled

#: Modeled bytes per IR instruction for the opt1 code-size metric.
IR_INSTR_BYTES = 16


@dataclass
class OptConfig:
    """Optimizing-compiler tunables."""

    inline: InlineConfig = field(default_factory=InlineConfig)
    #: Maximum simplify/constprop/cleanup/DCE fixpoint iterations.
    max_iterations: int = 5


class OptCompiler:
    """Compiles RuntimeMethods at opt1/opt2 for one VM."""

    def __init__(self, vm: Any, config: OptConfig | None = None) -> None:
        self.vm = vm
        self.config = config or OptConfig()
        #: id(RuntimeMethod) -> post-inline opt2 IR snapshot.
        self._ir_snapshots: dict[int, Any] = {}

    # ------------------------------------------------------------------

    def _pass(self, name: str, pass_fn, fn) -> int:
        """Run one optimizer pass, timing it when telemetry is active."""
        tel = _tel_maybe(self.vm.telemetry)
        if tel is None:
            return pass_fn(fn)
        start = time.perf_counter()
        result = pass_fn(fn)
        seconds = time.perf_counter() - start
        tel.emit(
            "opt_pass", dur=seconds, opt_pass=name,
            changed=result if isinstance(result, (int, bool)) else None,
        )
        tel.observe(f"opt.pass_seconds.{name}", seconds)
        return result

    def _run_core_pipeline(self, fn) -> None:
        run = self._pass
        for _ in range(self.config.max_iterations):
            changed = run("simplify", simplify, fn)
            changed += run("cse", local_cse, fn)
            changed += run("constprop", constant_propagation, fn)
            changed += run("cleanup_cfg", cleanup_cfg, fn)
            changed += run("dce", dead_code_elimination, fn)
            if not changed:
                break

    def build_ir(
        self,
        rm: Any,
        opt_level: int,
        bindings: SpecBindings | None = None,
    ):
        """Produce optimized IR for ``rm`` at ``opt_level``.

        The post-inline IR of an opt2 *general* compile is snapshotted on
        the RuntimeMethod; specialized versions clone that snapshot
        instead of re-lowering and re-inlining (Fig. 5 generates the
        general and all special versions together, so the snapshot is
        always fresh when the manager asks for specials).
        """
        fn = None
        if opt_level >= 2 and bindings:
            snapshot = self._ir_snapshots.get(id(rm))
            if snapshot is not None:
                fn = clone_ir(snapshot)
        if fn is None:
            fn = self._pass(
                "lower", lambda _f: lower_method(rm.info), None
            )
            if opt_level >= 2:
                self._pass(
                    "inline",
                    lambda f: inline_calls(
                        f, self.vm, rm, self.config.inline
                    ),
                    fn,
                )
                self._ir_snapshots[id(rm)] = clone_ir(fn)
        if bindings:
            self._pass(
                "specialize", lambda f: specialize_ir(f, bindings), fn
            )
        self._run_core_pipeline(fn)
        if opt_level >= 2:
            self._pass("strength", strength_reduce, fn)
            self._pass("boundselim", eliminate_bounds_checks, fn)
            self._run_core_pipeline(fn)
        return fn

    def compile(
        self,
        rm: Any,
        opt_level: int,
        bindings: SpecBindings | None = None,
    ) -> OptCompiled:
        """Compile one version of ``rm`` (general, or specialized when
        ``bindings`` are given) and return the compiled method.  The
        caller installs it."""
        if opt_level not in (1, 2):
            raise ValueError(f"opt_level must be 1 or 2, got {opt_level}")
        fn = self.build_ir(rm, opt_level, bindings)
        state_label = bindings.label if bindings else None
        if opt_level == 1:
            def executor(vm, args, _fn=fn, _rm=rm):
                return execute_ir(vm, _rm, _fn, args)

            cm = OptCompiled(
                rm,
                executor,
                opt_level=1,
                specialized_state=state_label,
                code_size_bytes=fn.instr_count() * IR_INSTR_BYTES,
                ir=fn,
            )
        else:
            source, executor = generate_python(fn, rm)
            cm = OptCompiled(
                rm,
                executor,
                opt_level=2,
                specialized_state=state_label,
                code_size_bytes=len(source),
                ir=fn,
                source_text=source,
            )
        # Under active telemetry, keep dispatch going through the
        # counting invoke() even for final-tier methods (the direct
        # executor binding would make their calls invisible).
        if _tel_maybe(self.vm.telemetry) is not None:
            cm.__dict__.pop("invoke", None)
        return cm
