"""Method inlining, including the paper's *specialization inlining*.

Candidate selection:

* ``callsp`` (invokespecial: constructors, private methods, ``super``)
  and ``calls`` (static) have exact targets;
* ``callv`` is devirtualized by class-hierarchy analysis — JxVM loads
  all classes up front, so a vtable slot with a single concrete
  occupant among the receiver class's subtree needs no guard.

Specialization interplay (paper §5):

* If the receiver is loaded from a private reference field with
  **object lifetime constants** (paper §4), the callee is inlined with
  those fields bound to constants — specialization and inlining
  compose, no guard needed.
* Otherwise, for a *mutable* method the two transformations compete:
  inlining destroys the TIB-dispatch point that specialization relies
  on.  The trade-off heuristic: let ``N`` be the number of constant
  arguments at the call site and ``M`` the number of specializable
  state fields in the callee; inline iff ``N > M + k`` (``k`` tunable;
  very negative k => always inline, very positive => always specialize).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.opt.ir import Const, Extra, IRFunction, IRInstr, Reg
from repro.opt.lowering import lower_method
from repro.opt.specialize import SpecBindings, specialize_ir, this_aliases


@dataclass
class InlineConfig:
    """Inliner tunables."""

    enabled: bool = True
    #: Maximum callee bytecode length considered for inlining.
    max_callee_size: int = 40
    #: Rounds of inlining (bounds transitive depth).
    max_depth: int = 2
    #: IR-instruction growth budget per compiled method.
    max_growth: int = 300
    #: The specialization-inlining trade-off constant (paper §5).
    k: int = 0
    #: Mutable callees at or below this bytecode size are inlined
    #: regardless of the N > M + k trade-off: for tiny methods the
    #: dispatch overhead exceeds any specialization payoff (the paper
    #: models the same pressure by choosing a negative ``k``).
    mutable_tiny_size: int = 28


class Inliner:
    """Performs inlining rounds over one function's IR."""

    def __init__(
        self,
        fn: IRFunction,
        vm: Any,
        root_rm: Any,
        config: InlineConfig,
    ) -> None:
        self.fn = fn
        self.vm = vm
        self.root_rm = root_rm
        self.config = config
        self.budget = config.max_growth
        self._rename_counter = 0
        self.inlined_count = 0
        #: Qualified names on the inline stack (recursion guard).
        self._stack = {root_rm.info.qualified_name}

    # -- target resolution ---------------------------------------------------

    def _resolve_target(self, instr: IRInstr) -> Any:
        if instr.op == "callsp":
            return instr.extra.rm
        if instr.op == "calls":
            return instr.extra.cell.compiled.rm
        if instr.op == "callv":
            return self._devirtualize(instr)
        return None

    def _devirtualize(self, instr: IRInstr) -> Any:
        """CHA: the single concrete target of a virtual call, or None."""
        decl = instr.extra.name
        offset = instr.extra.offset
        targets = set()
        for rc in self.vm.classes.values():
            if rc.is_interface or not rc.is_subtype_of(decl):
                continue
            if offset is None or offset >= len(rc.vtable_rms):
                continue
            targets.add(rc.vtable_rms[offset])
            if len(targets) > 1:
                return None
        return next(iter(targets)) if len(targets) == 1 else None

    # -- eligibility ------------------------------------------------------------

    def _receiver_lifetime_bindings(
        self, instr: IRInstr, producers: dict[str, IRInstr],
        aliases: set[str],
    ) -> SpecBindings | None:
        """Object-lifetime-constant bindings for this call's receiver.

        Applies when the receiver is ``this.<ref>`` where ``<ref>`` is a
        private reference field with proven lifetime constants (paper
        §4/§5, e.g. ``deliveryScreen.<anything>()`` gets rows/cols
        bound).
        """
        lifetime = getattr(self.vm, "lifetime_constants", None)
        if not lifetime:
            return None
        recv = instr.args[0]
        if not isinstance(recv, Reg):
            return None
        producer = producers.get(recv.name)
        if producer is None or producer.op != "getfield":
            return None
        obj = producer.args[0]
        if not (isinstance(obj, Reg) and obj.name in aliases):
            return None
        info = lifetime.get(producer.extra.key)
        if info is None:
            return None
        return SpecBindings(
            instance=dict(info.field_values), label=f"olc:{producer.extra.key}"
        )

    def _should_inline(
        self, instr: IRInstr, target_rm: Any, olc: SpecBindings | None
    ) -> bool:
        info = target_rm.info
        if info.is_abstract or not info.code:
            return False
        if info.qualified_name in self._stack:
            return False
        if len(info.code) > self.config.max_callee_size:
            return False
        if len(info.code) > self.budget:
            return False
        if target_rm.is_mutable and olc is None:
            if len(info.code) <= self.config.mutable_tiny_size:
                return True
            # The inline-vs-specialize trade-off (paper §5): N > M + k.
            n_const_args = sum(
                1 for a in instr.args[1:] if isinstance(a, Const)
            )
            m_spec_fields = getattr(target_rm, "num_state_fields", 0)
            if not n_const_args > m_spec_fields + self.config.k:
                return False
        return True

    # -- splicing -----------------------------------------------------------------

    def _clone_callee(
        self, callee_fn: IRFunction
    ) -> tuple[dict[int, int], dict[int, list[IRInstr]], str]:
        """Clone callee blocks with renamed registers and fresh block ids."""
        prefix = f"in{self._rename_counter}_"
        self._rename_counter += 1
        block_map: dict[int, int] = {}
        for bid in callee_fn.blocks:
            block_map[bid] = self.fn.new_block().id

        def rename_reg(reg: Reg) -> Reg:
            return Reg(prefix + reg.name)

        def rename_operand(operand):
            return rename_operand_inner(operand)

        def rename_operand_inner(operand):
            if isinstance(operand, Reg):
                return rename_reg(operand)
            return operand

        cloned: dict[int, list[IRInstr]] = {}
        for bid, block in callee_fn.blocks.items():
            out = []
            for instr in block.instrs:
                ex = instr.extra
                new_extra = Extra(
                    slot=ex.slot,
                    key=ex.key,
                    hook=ex.hook,
                    rc=ex.rc,
                    rm=ex.rm,
                    cell=ex.cell,
                    offset=ex.offset,
                    intrinsic=ex.intrinsic,
                    elem=ex.elem,
                    fill=ex.fill,
                    bounds=ex.bounds,
                    returns=ex.returns,
                    target=(
                        block_map[ex.target] if ex.target is not None else None
                    ),
                    if_true=(
                        block_map[ex.if_true]
                        if ex.if_true is not None
                        else None
                    ),
                    if_false=(
                        block_map[ex.if_false]
                        if ex.if_false is not None
                        else None
                    ),
                    name=ex.name,
                )
                out.append(
                    IRInstr(
                        instr.op,
                        rename_reg(instr.dest)
                        if instr.dest is not None
                        else None,
                        [rename_operand(a) for a in instr.args],
                        new_extra,
                        instr.line,
                    )
                )
            cloned[block_map[bid]] = out
        return block_map, cloned, prefix

    def _inline_site(
        self,
        block_id: int,
        call_index: int,
        target_rm: Any,
        olc: SpecBindings | None,
    ) -> None:
        fn = self.fn
        block = fn.blocks[block_id]
        call = block.instrs[call_index]

        callee_fn = lower_method(target_rm.info)
        if olc is not None and olc:
            specialize_ir(callee_fn, olc)
        self.budget -= callee_fn.instr_count()

        block_map, cloned, prefix = self._clone_callee(callee_fn)

        # Continuation block receives the instructions after the call.
        cont = fn.new_block()
        cont.instrs = block.instrs[call_index + 1:]

        # Caller block: bind parameters, jump to the cloned entry.
        head = block.instrs[:call_index]
        for i, arg in enumerate(call.args):
            head.append(
                IRInstr("mov", Reg(f"{prefix}l{i}"), [arg], line=call.line)
            )
        head.append(
            IRInstr(
                "jump", None, [],
                Extra(target=block_map[callee_fn.entry]), call.line,
            )
        )
        block.instrs = head

        # Rewrite callee rets into result-mov + jump to continuation.
        # An inlined hooked constructor carries its constructor-exit
        # hook along (paper Fig. 4: the check lives at the end of the
        # constructor, so it inlines with the body).
        hook = target_rm.ctor_exit_hook
        receiver = Reg(f"{prefix}l0")
        for new_bid, instrs in cloned.items():
            out = []
            for instr in instrs:
                if instr.op == "ret":
                    if hook is not None:
                        out.append(
                            IRInstr(
                                "hookcall", None, [receiver],
                                Extra(hook=hook), instr.line,
                            )
                        )
                    if call.dest is not None:
                        value = instr.args[0] if instr.args else Const(None)
                        out.append(
                            IRInstr("mov", call.dest, [value], line=instr.line)
                        )
                    out.append(
                        IRInstr(
                            "jump", None, [], Extra(target=cont.id),
                            instr.line,
                        )
                    )
                else:
                    out.append(instr)
            fn.blocks[new_bid].instrs = out
        self.inlined_count += 1

    # -- driver --------------------------------------------------------------------

    def run(self) -> int:
        if not self.config.enabled:
            return 0
        for _round in range(self.config.max_depth):
            producers = {
                instr.dest.name: instr
                for block in self.fn.block_order()
                for instr in block.instrs
                if instr.dest is not None
            }
            aliases = this_aliases(self.fn)
            site = self._find_site(producers, aliases)
            inlined_this_round = 0
            while site is not None:
                block_id, index, target_rm, olc = site
                self._inline_site(block_id, index, target_rm, olc)
                inlined_this_round += 1
                if self.budget <= 0:
                    return self.inlined_count
                producers = {
                    instr.dest.name: instr
                    for block in self.fn.block_order()
                    for instr in block.instrs
                    if instr.dest is not None
                }
                aliases = this_aliases(self.fn)
                site = self._find_site(producers, aliases)
            if not inlined_this_round:
                break
        return self.inlined_count

    def _find_site(self, producers, aliases):
        for block in self.fn.block_order():
            for i, instr in enumerate(block.instrs):
                if instr.op not in ("callsp", "calls", "callv"):
                    continue
                target_rm = self._resolve_target(instr)
                if target_rm is None:
                    continue
                olc = None
                if instr.op == "callv":
                    olc = self._receiver_lifetime_bindings(
                        instr, producers, aliases
                    )
                if self._should_inline(instr, target_rm, olc):
                    return (block.id, i, target_rm, olc)
        return None


def inline_calls(
    fn: IRFunction, vm: Any, rm: Any, config: InlineConfig | None = None
) -> int:
    """Run the inliner; returns the number of call sites inlined."""
    return Inliner(fn, vm, rm, config or InlineConfig()).run()
