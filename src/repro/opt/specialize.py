"""State-field specialization — the mutation payload.

Given *bindings* (known constant values for state fields of the
receiver's class, and/or static state fields), rewrite the IR so those
field loads become constants.  Constant propagation, branch folding,
and DCE then collapse the state-dispatch logic; **no value guard is
emitted** — correctness is maintained purely by the TIB-swap protocol
(paper §2.2: "No value guarding is needed for the specialized code").

Instance-field bindings only apply to loads whose receiver provably
aliases ``this`` (local 0): other instances of the same class may be in
other states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.opt.ir import Const, IRFunction, IRInstr, Reg


@dataclass
class SpecBindings:
    """Constant bindings for one specialization request.

    ``instance``: field slot -> value (applies to loads off ``this``).
    ``static``: JTOC slot -> value.
    ``label``: human-readable state description, for diagnostics.
    ``tib``: the special TIB this version speculates on, when the
    bindings cover instance state — the OSR pass guards mid-frame state
    writes against it (:func:`repro.vm.osr.insert_deopt_points`);
    ``None`` for static-only specials (no per-object TIB to guard).
    """

    instance: dict[int, Any] = field(default_factory=dict)
    static: dict[int, Any] = field(default_factory=dict)
    label: str = ""
    tib: Any = None

    def __bool__(self) -> bool:
        return bool(self.instance) or bool(self.static)

    def cache_key_payload(self) -> list:
        """The persistent-compile-cache key contribution: every slot
        and value that steers specialization, in canonical order.  The
        ``label`` is deliberately excluded — it is diagnostic text, and
        two requests binding the same slots to the same values must
        share one cache entry.  ``tib`` is excluded too: it is the
        runtime object *derived from* the instance bindings, so it adds
        no key information (the generated guard pins it symbolically,
        and the ``osr`` flag is part of the environment payload)."""
        return [
            sorted((slot, repr(v)) for slot, v in self.instance.items()),
            sorted((slot, repr(v)) for slot, v in self.static.items()),
        ]


def this_aliases(fn: IRFunction) -> set[str]:
    """Register names provably holding ``this`` (local 0).

    ``l0`` is never reassigned (Jx has no assignment to ``this``); a
    register aliases ``this`` iff *every* assignment to it is a mov from
    an aliasing register.
    """
    assignments: dict[str, list[IRInstr]] = {}
    for block in fn.block_order():
        for instr in block.instrs:
            if instr.dest is not None:
                assignments.setdefault(instr.dest.name, []).append(instr)
    if "l0" in assignments:
        return set()  # paranoia: someone wrote to the receiver slot
    aliases = {"l0"}
    changed = True
    while changed:
        changed = False
        for name, instrs in assignments.items():
            if name in aliases:
                continue
            if all(
                i.op == "mov"
                and isinstance(i.args[0], Reg)
                and i.args[0].name in aliases
                for i in instrs
            ):
                aliases.add(name)
                changed = True
    return aliases


def _written_instance_slots(fn: IRFunction, aliases: set[str]) -> set[int]:
    """Field slots this method itself writes through ``this``."""
    written: set[int] = set()
    for block in fn.block_order():
        for instr in block.instrs:
            if instr.op == "putfield":
                obj = instr.args[0]
                if isinstance(obj, Reg) and obj.name in aliases:
                    written.add(instr.extra.slot)
    return written


def _written_static_slots(fn: IRFunction) -> set[int]:
    return {
        instr.extra.slot
        for block in fn.block_order()
        for instr in block.instrs
        if instr.op == "putstatic"
    }


def specialize_ir(fn: IRFunction, bindings: SpecBindings) -> int:
    """Replace bound state-field loads with constants; returns count.

    Fields the method itself writes are conservatively left alone (a
    read after the write must observe the new value).
    """
    aliases = this_aliases(fn)
    skip_instance = _written_instance_slots(fn, aliases)
    skip_static = _written_static_slots(fn)
    replaced = 0
    for block in fn.block_order():
        for i, instr in enumerate(block.instrs):
            if (
                instr.op == "getfield"
                and instr.extra.slot in bindings.instance
                and instr.extra.slot not in skip_instance
            ):
                obj = instr.args[0]
                if isinstance(obj, Reg) and obj.name in aliases:
                    block.instrs[i] = IRInstr(
                        "mov",
                        instr.dest,
                        [Const(bindings.instance[instr.extra.slot])],
                        line=instr.line,
                    )
                    replaced += 1
            elif (
                instr.op == "getstatic"
                and instr.extra.slot in bindings.static
                and instr.extra.slot not in skip_static
            ):
                block.instrs[i] = IRInstr(
                    "mov",
                    instr.dest,
                    [Const(bindings.static[instr.extra.slot])],
                    line=instr.line,
                )
                replaced += 1
    return replaced
