"""Bytecode quickening and TIB-keyed inline caches.

The baseline interpreter re-resolves ``receiver.tib.entries[offset]``
(and a full IMT probe for interface calls) on every single call.  This
module rewrites each method's resolved call/field instructions into
*quickened* forms that carry a per-site inline-cache cell, and fuses the
hottest adjacent opcode pairs into superinstructions.  The rewritten
body lives in ``rm.quick_code`` — a shallow copy of ``rm.info.code`` —
so the pristine bytecode keeps serving the verifier, the IR lowering,
the cache digests, and the coalescing analysis untouched.

Why TIB identity is the cache key
---------------------------------

Inline caches are keyed on the receiver's **TIB object identity**, not
its class.  The paper's central mechanism swaps an object's TIB pointer
between the class TIB and per-hot-state special TIBs, so a mutation is
*automatically* an IC miss: the swapped object arrives with a different
key, the miss re-reads ``tib.entries[offset]``, and the site now calls
the special TIB's entry — deoptimization falls out for free, with no
invalidation protocol and no guards on the hit path.

The one hazard is in-place patching: the mutation manager and the code
installer overwrite TIB *entries* (and JTOC cells) while the TIB object
identity stays the same — a static-state re-evaluation, a recompile, or
a special-version install would leave a stale cached target behind.
Every such patch point calls :meth:`Quickener.flush`, which resets all
cache keys; instance TIB swaps need no flush because they change the
key itself.

Cache-cell state machine (per call site)::

    empty -> monomorphic -> 2-entry polymorphic -> megamorphic

A megamorphic site (third distinct TIB observed) is **de-quickened**:
the original resolved instruction is written back into ``quick_code``
and the site permanently uses today's table-walk path.

Superinstruction fusion is *slot-preserving*: the fused instruction at
slot ``i`` covers the pair ``(i, i+1)`` and skips one extra slot, while
slot ``i+1`` keeps its original (or standalone-quickened) instruction —
so a branch that lands on ``i+1`` still executes correctly and no
branch-target analysis is needed.  Every slot independently holds a
correct continuation of the program.
"""

from __future__ import annotations

from typing import Any

import threading

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.vm.compiled import BaselineCompiled

#: Fusable (first op, second op) -> fused opcode.  The top half are the
#: pairs picked from the measured dynamic adjacent-pair histogram (see
#: Op docstring); the bottom half are the accumulate tails that feed the
#: loop-idiom fusions below.
FUSION_PAIRS = {
    (Op.LOAD, Op.GETFIELD): Op.LOAD_GETFIELD,
    (Op.LOAD, Op.LOAD): Op.LOAD_LOAD,
    (Op.LOAD, Op.CONST): Op.LOAD_CONST,
    (Op.CMP_LT, Op.JUMP_IF_FALSE): Op.CMP_LT_JF,
    (Op.CMP_EQ, Op.JUMP_IF_FALSE): Op.CMP_EQ_JF,
    (Op.ADD, Op.STORE): Op.ADD_STORE,
    (Op.ADD, Op.PUTFIELD): Op.ADD_PUTFIELD,
    (Op.ADD, Op.RETURN): Op.ADD_RETURN,
    (Op.LOAD, Op.RETURN): Op.LOAD_RETURN,
    (Op.LOAD, Op.ADD): Op.LOAD_ADD,
    (Op.LOAD, Op.SUB): Op.LOAD_SUB,
    (Op.LOAD, Op.MUL): Op.LOAD_MUL,
}

#: Four-instruction loop idioms, tried before the pairs.  The Jx front
#: end emits ``LOAD i / CONST c / ADD / STORE i`` for every ``i += c``
#: and ``LOAD i / CONST c / CMP_LT / JUMP_IF_FALSE`` for every counted
#: loop head, so one fused instruction replaces four dispatches in the
#: hottest part of every loop.
_IDIOM_INC = (Op.LOAD, Op.CONST, Op.ADD, Op.STORE)
_IDIOM_ITER = (Op.LOAD, Op.CONST, Op.CMP_LT, Op.JUMP_IF_FALSE)
#: ``obj.f += c`` — six instructions down to one.
_IDIOM_FIELD_INC = (Op.LOAD, Op.LOAD, Op.GETFIELD, Op.CONST,
                    Op.ADD, Op.PUTFIELD)
#: Accessor body ``return this.f`` — the classic getter.
_IDIOM_GETTER = (Op.LOAD, Op.GETFIELD, Op.RETURN)


def _fast_rm(vm: Any, cm: Any) -> Any:
    """The IC's inline fast-path target for one resolved method, or None.

    When the target is quickened baseline code with no constructor-exit
    hook and the VM has no telemetry object, the IC records the target
    RuntimeMethod itself (``r0``/``r1``) and the interpreter's hit arm
    folds the ``BaselineCompiled.invoke`` wrapper's work (entry-tick
    sampling) inline, then jumps straight into ``interpret_quick`` —
    an IC hit then skips the generic invoke dispatch entirely.  Every
    in-place change that could invalidate this specialization (a
    recompile install replacing the table entry, a mid-run manager
    attach installing hooks) flushes the IC, so the target is
    re-examined on the next miss; otherwise ``None`` keeps the hit on
    the cached generic ``invoke``.
    """
    rm = cm.rm
    if (
        vm.telemetry is None
        and type(cm) is BaselineCompiled
        and rm.quick_code is not None
        and rm.ctor_exit_hook is None
    ):
        return rm
    return None


#: Serializes IC publication across concurrently-missing sessions
#: (repro.server).  Hits stay lock-free: inside the lock, values are
#: written *before* the key, and under the GIL attribute stores are
#: sequenced, so a reader that matches a key can never see a value
#: belonging to a different key.  Misses are rare after warmup, so one
#: process-wide lock costs nothing measurable.
_PUBLISH_LOCK = threading.Lock()


def _publish_ic(vm: Any, ic: Any, tib: Any, cm: Any) -> None:
    """Record ``tib -> cm`` in a (possibly shared) cell: mono, then
    2-entry poly, then megamorphic de-quicken on the third distinct
    key.  A concurrent flush can interleave harmlessly — it only
    clears keys, forcing a later re-miss."""
    with _PUBLISH_LOCK:
        if ic.k0 is None or ic.k0 is tib:
            ic.i0 = cm.invoke
            ic.r0 = _fast_rm(vm, cm)
            ic.k0 = tib
        elif ic.k1 is None or ic.k1 is tib:
            ic.i1 = cm.invoke
            ic.r1 = _fast_rm(vm, cm)
            ic.k1 = tib
        else:
            _go_megamorphic(vm, ic)


class VirtualIC:
    """Inline cache for one INVOKEVIRTUAL site.

    ``k0``/``k1`` are TIB objects (identity-compared); ``i0``/``i1``
    the matching cached ``invoke`` callables and ``r0``/``r1`` the
    inline fast-path targets (see :func:`_fast_rm`), so a hit pays two
    identity checks instead of a list index plus a bound-method
    allocation plus the generic invoke wrapper.
    """

    __slots__ = ("offset", "argc", "returns", "site_name", "code",
                 "index", "original", "k0", "i0", "r0", "k1", "i1", "r1")

    def __init__(self, offset: int, argc: int, returns: bool,
                 site_name: str, code: list, index: int,
                 original: Instr) -> None:
        self.offset = offset
        self.argc = argc
        self.returns = returns
        self.site_name = site_name
        self.code = code
        self.index = index
        self.original = original
        self.k0: Any = None
        self.i0: Any = None
        self.r0: Any = None
        self.k1: Any = None
        self.i1: Any = None
        self.r1: Any = None

    def flush(self) -> None:
        # Keys only: a concurrent session that already matched a key
        # may still read the value slots, so they must stay callable.
        # Every in-place patch replaces a target with a semantically
        # equivalent one, so the one stale call a racing hit can make
        # is still correct code; the cleared key forces the *next*
        # execution to miss and re-resolve.  (Values are overwritten on
        # that miss.)
        self.k0 = None
        self.k1 = None

    def lookup(self, receiver: Any) -> Any:
        tib = receiver.tib
        return tib.entries[self.offset]

    def miss(self, vm: Any, receiver: Any, callargs: list) -> Any:
        """Slow path: re-resolve, record the new key, invoke."""
        tib = receiver.tib
        cm = tib.entries[self.offset]
        _note_miss(vm, self, tib)
        _publish_ic(vm, self, tib, cm)
        return cm.invoke(vm, callargs)


class InterfaceIC:
    """Inline cache for one INVOKEINTERFACE site.

    A hit skips the whole IMT probe (slot load, conflict-stub search)
    in addition to the bound-method allocation.
    """

    __slots__ = ("slot", "key", "argc", "returns", "site_name", "code",
                 "index", "original", "k0", "i0", "r0", "k1", "i1", "r1")

    def __init__(self, slot: int, key: str, argc: int, returns: bool,
                 site_name: str, code: list, index: int,
                 original: Instr) -> None:
        self.slot = slot
        self.key = key
        self.argc = argc
        self.returns = returns
        self.site_name = site_name
        self.code = code
        self.index = index
        self.original = original
        self.k0: Any = None
        self.i0: Any = None
        self.r0: Any = None
        self.k1: Any = None
        self.i1: Any = None
        self.r1: Any = None

    def flush(self) -> None:
        # Keys only: a concurrent session that already matched a key
        # may still read the value slots, so they must stay callable.
        # Every in-place patch replaces a target with a semantically
        # equivalent one, so the one stale call a racing hit can make
        # is still correct code; the cleared key forces the *next*
        # execution to miss and re-resolve.  (Values are overwritten on
        # that miss.)
        self.k0 = None
        self.k1 = None

    def miss(self, vm: Any, receiver: Any, callargs: list) -> Any:
        tib = receiver.tib
        cm = tib.imt.dispatch(receiver, self.slot, self.key)
        _note_miss(vm, self, tib)
        _publish_ic(vm, self, tib, cm)
        return cm.invoke(vm, callargs)


def _note_miss(vm: Any, ic: Any, tib: Any) -> None:
    tel = vm.telemetry
    if tel is None or not tel.enabled:
        return
    tel.count("ic.miss")
    tel.emit(
        "ic_miss",
        site=ic.site_name,
        cls=tib.type_info.name,
        special=tib.is_special,
        state=str(tib.state) if tib.is_special else None,
    )
    hits = tel.metrics.counter("ic.hit").value
    misses = tel.metrics.counter("ic.miss").value
    tel.metrics.gauge("ic.hit_rate").set(hits / (hits + misses))


def _go_megamorphic(vm: Any, ic: Any) -> None:
    """Third distinct TIB at one site: write the original resolved
    instruction back so the site uses the plain table-walk path."""
    ic.code[ic.index] = ic.original
    ic.flush()
    tel = vm.telemetry
    if tel is not None and tel.enabled:
        tel.count("ic.megamorphic")


class Quickener:
    """Owns every inline-cache cell of one VM.

    Created by the VM when ``VMConfig.quicken`` is on; holds the flush
    registry that the code installer and the mutation manager notify
    when they patch dispatch-table entries in place.
    """

    def __init__(self, vm: Any) -> None:
        self.vm = vm
        self.caches: list[Any] = []
        self.flushes = 0
        self.methods_quickened = 0
        self.sites = 0
        self.fused = 0

    # ------------------------------------------------------------------

    def quicken_all(self) -> None:
        """Build ``quick_code`` for every non-abstract method."""
        for rm in self.vm.all_runtime_methods():
            self.quicken_method(rm)
        if getattr(self.vm.config, "tv", False):
            # Translation validation: prove every quickened body
            # observationally equivalent to its pristine bytecode;
            # unprovable bodies are de-quickened and run pristine.
            from repro.analysis.tv import enforce_quicken

            enforce_quicken(self.vm)
        tel = self.vm.telemetry
        if tel is not None and tel.enabled:
            tel.emit(
                "quicken",
                methods=self.methods_quickened,
                sites=self.sites,
                fused=self.fused,
            )
            tel.count("quicken.methods", self.methods_quickened)
            tel.count("quicken.sites", self.sites)
            tel.count("quicken.fused", self.fused)

    def quicken_method(self, rm: Any) -> None:
        """Rewrite one method's body into ``rm.quick_code``.

        Each slot is decided independently: either the fused form of the
        pair starting there, the standalone quickened form, or the
        original shared instruction (PUTFIELD/PUTSTATIC always keep the
        original object so state hooks installed later — e.g. by the
        online controller mid-run — stay live in quick code too).
        """
        code = rm.info.code
        quick: list[Instr] = list(code)
        n = len(code)
        qname = rm.qualified_name
        for i in range(n):
            instr = code[i]
            op = instr.op
            if (
                i + 5 < n
                and op is Op.LOAD
                and (code[i].op, code[i + 1].op, code[i + 2].op,
                     code[i + 3].op, code[i + 4].op,
                     code[i + 5].op) == _IDIOM_FIELD_INC
                and instr.arg == code[i + 1].arg
                and code[i + 2].arg == code[i + 5].arg
                and type(code[i + 5].resolved) is int
            ):
                # Keep the shared PUTFIELD Instr in the arg so its
                # resolved slot and state hook are read live.
                quick[i] = Instr(
                    Op.FIELD_INC,
                    (instr.arg, code[i + 5], code[i + 3].arg),
                    instr.line,
                )
                self.fused += 1
                continue
            if i + 3 < n:
                ops4 = (op, code[i + 1].op, code[i + 2].op, code[i + 3].op)
                if ops4 == _IDIOM_INC and instr.arg == code[i + 3].arg:
                    quick[i] = Instr(
                        Op.INC, (instr.arg, code[i + 1].arg), instr.line
                    )
                    self.fused += 1
                    continue
                if ops4 == _IDIOM_ITER:
                    quick[i] = Instr(
                        Op.ITER_LT_JF,
                        (instr.arg, code[i + 1].arg, code[i + 3].arg),
                        instr.line,
                    )
                    self.fused += 1
                    continue
            if (
                i + 2 < n
                and op is Op.LOAD
                and (op, code[i + 1].op, code[i + 2].op) == _IDIOM_GETTER
                and type(code[i + 1].resolved) is int
            ):
                second = code[i + 1]
                new_i = Instr(
                    Op.GETFIELD_RETURN,
                    (instr.arg, second.resolved, second.arg[1]),
                    second.line,
                )
                quick[i] = new_i
                self.fused += 1
                continue
            if i + 1 < n:
                fused_op = FUSION_PAIRS.get((op, code[i + 1].op))
                if (
                    fused_op in (Op.LOAD_ADD, Op.LOAD_SUB, Op.LOAD_MUL)
                    and i + 2 < n
                    and (code[i + 1].op, code[i + 2].op) in FUSION_PAIRS
                ):
                    # The arithmetic op fuses better with its successor
                    # (e.g. LOAD/ADD/PUTFIELD: keep ADD for ADD_PUTFIELD).
                    fused_op = None
                if (
                    fused_op in (Op.LOAD_GETFIELD, Op.ADD_PUTFIELD)
                    and type(code[i + 1].resolved) is not int
                ):
                    # Shape-managed slot (unboxed constant or pinned
                    # state field): the fused arms index ``obj.fields``
                    # directly, so leave the site unfused and let the
                    # standalone GETFIELD_SHAPE / PUTFIELD paths handle
                    # the indirection.
                    fused_op = None
                if fused_op is not None:
                    quick[i] = self._fuse(fused_op, instr, code[i + 1])
                    self.fused += 1
                    continue
            if op is Op.INVOKEVIRTUAL:
                offset, returns = instr.resolved
                new = Instr(Op.INVOKEVIRTUAL_QUICK, instr.arg, instr.line)
                new.resolved = VirtualIC(
                    offset, instr.arg[2], returns,
                    f"{qname}@{i}", quick, i, instr,
                )
                self.caches.append(new.resolved)
                quick[i] = new
                self.sites += 1
            elif op is Op.INVOKEINTERFACE:
                slot, key, returns = instr.resolved
                new = Instr(Op.INVOKEINTERFACE_QUICK, instr.arg, instr.line)
                new.resolved = InterfaceIC(
                    slot, key, instr.arg[2], returns,
                    f"{qname}@{i}", quick, i, instr,
                )
                self.caches.append(new.resolved)
                quick[i] = new
                self.sites += 1
            elif op is Op.GETFIELD:
                if type(instr.resolved) is int:
                    new = Instr(Op.GETFIELD_QUICK, instr.arg, instr.line)
                else:
                    new = Instr(Op.GETFIELD_SHAPE, instr.arg, instr.line)
                new.resolved = instr.resolved
                quick[i] = new
                self.sites += 1
        rm.quick_code = quick
        rm.quick_pad = [None] * (rm.info.max_locals - rm.info.num_args)
        self.methods_quickened += 1

    @staticmethod
    def _fuse(fused_op: Op, first: Instr, second: Instr) -> Instr:
        """Build the superinstruction covering ``(first, second)``."""
        if fused_op is Op.LOAD_GETFIELD:
            # Carry the GETFIELD's line so a null-receiver error points
            # at the same source line the unfused pair would.
            new = Instr(
                fused_op,
                (first.arg, second.resolved, second.arg[1]),
                second.line,
            )
        elif fused_op in (Op.LOAD_LOAD, Op.LOAD_CONST):
            new = Instr(fused_op, (first.arg, second.arg), first.line)
        elif fused_op is Op.ADD_STORE:
            new = Instr(fused_op, second.arg, first.line)
        elif fused_op is Op.ADD_PUTFIELD:
            # Carry the shared PUTFIELD Instr itself: the interpreter
            # reads its ``resolved`` slot and — live, on every execution
            # — its ``state_hook``, so hooks installed mid-run by the
            # online controller fire through the fused form too.
            new = Instr(fused_op, second, second.line)
        elif fused_op is Op.ADD_RETURN:
            new = Instr(fused_op, None, first.line)
        elif fused_op in (Op.LOAD_RETURN, Op.LOAD_ADD, Op.LOAD_SUB,
                          Op.LOAD_MUL):
            new = Instr(fused_op, first.arg, first.line)
        else:  # CMP_LT_JF / CMP_EQ_JF: carry the branch target
            new = Instr(fused_op, second.arg, first.line)
        return new

    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Reset every cache key: the next execution of each site misses
        and re-resolves.  Called whenever dispatch-table entries are
        patched in place (recompile installs, special-version installs,
        static-state re-evaluations) — TIB *swaps* never need this."""
        for ic in self.caches:
            ic.flush()
        self.flushes += 1
        tel = self.vm.telemetry
        if tel is not None and tel.enabled:
            tel.count("ic.flush")

    def dequicken(self, rm: Any) -> None:
        """Drop a method's quickened body (it reverts to plain
        interpretation); its cache cells stay registered but inert."""
        rm.quick_code = None
        rm.quick_pad = None
