"""Class-file model: types, fields, methods, classes, and programs.

This is the unit of exchange between the Jx frontend (:mod:`repro.lang`),
the offline analyses (:mod:`repro.mutation`), and the JxVM runtime
(:mod:`repro.vm`).  It corresponds to a parsed-and-verified ``.class``
file set in a real JVM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.bytecode.instructions import Instr


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JxType:
    """A Jx static type.

    ``name`` is a primitive name (``int``, ``double``, ``boolean``,
    ``string``, ``void``), a class or interface name, or an array type
    with ``dims > 0``.
    """

    name: str
    dims: int = 0

    PRIMITIVES = frozenset({"int", "double", "boolean", "string", "void"})

    @property
    def is_array(self) -> bool:
        return self.dims > 0

    @property
    def is_primitive(self) -> bool:
        return self.dims == 0 and self.name in self.PRIMITIVES

    @property
    def is_reference(self) -> bool:
        return self.is_array or (not self.is_primitive)

    @property
    def is_numeric(self) -> bool:
        return self.dims == 0 and self.name in ("int", "double")

    def element_type(self) -> "JxType":
        """Return the element type of this array type."""
        if not self.is_array:
            raise ValueError(f"{self} is not an array type")
        return JxType(self.name, self.dims - 1)

    def array_of(self) -> "JxType":
        return JxType(self.name, self.dims + 1)

    def default_value(self) -> Any:
        """The zero value an uninitialized field/array slot holds."""
        if self.is_array or not self.is_primitive:
            return None
        return {
            "int": 0,
            "double": 0.0,
            "boolean": False,
            "string": None,
            "void": None,
        }[self.name]

    def __str__(self) -> str:
        return self.name + "[]" * self.dims


INT = JxType("int")
DOUBLE = JxType("double")
BOOLEAN = JxType("boolean")
STRING = JxType("string")
VOID = JxType("void")
NULL_T = JxType("<null>")


# ---------------------------------------------------------------------------
# Members
# ---------------------------------------------------------------------------

@dataclass
class FieldInfo:
    """A declared field.

    Attributes:
        access: ``"public"``, ``"private"``, or ``"default"``
            (package-private); the lifetime-constant analysis (paper §4)
            uses this to prove non-modifiability from other classes.
    """

    name: str
    type: JxType
    declaring_class: str
    is_static: bool = False
    access: str = "default"
    #: Slot index in the object field layout / static storage; linker-set.
    slot: int = -1

    @property
    def key(self) -> tuple[str, str]:
        """(declaring class, name) — the canonical field identity."""
        return (self.declaring_class, self.name)

    def __str__(self) -> str:
        mods = ("static " if self.is_static else "") + self.access
        return f"{mods} {self.type} {self.declaring_class}.{self.name}"


CONSTRUCTOR_NAME = "<init>"
STATIC_INIT_NAME = "<clinit>"


@dataclass
class MethodInfo:
    """A declared method with its bytecode body.

    Jx does not allow method overloading (one method per name per class),
    but constructors may be overloaded by arity; the canonical method key
    is ``name`` for ordinary methods and ``("<init>", arity)`` for
    constructors.
    """

    name: str
    param_types: list[JxType]
    return_type: JxType
    declaring_class: str
    is_static: bool = False
    access: str = "public"
    code: list[Instr] = field(default_factory=list)
    max_locals: int = 0
    #: Declared parameter/local names, index-aligned with locals; debugging.
    local_names: list[str] = field(default_factory=list)
    #: Interface methods have no body.
    is_abstract: bool = False

    @property
    def is_constructor(self) -> bool:
        return self.name == CONSTRUCTOR_NAME

    @property
    def is_private(self) -> bool:
        return self.access == "private"

    @property
    def arity(self) -> int:
        """Number of declared parameters (excluding the receiver)."""
        return len(self.param_types)

    @property
    def key(self) -> str:
        """Lookup key within a class: plain name, or name/arity for ctors."""
        if self.is_constructor:
            return f"{CONSTRUCTOR_NAME}/{self.arity}"
        return self.name

    @property
    def qualified_name(self) -> str:
        return f"{self.declaring_class}.{self.key}"

    @property
    def num_args(self) -> int:
        """Total argument count including the receiver for instance methods."""
        return self.arity + (0 if self.is_static else 1)

    def bytecode_size(self) -> int:
        return len(self.code)

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        return f"{self.return_type} {self.qualified_name}({params})"


@dataclass
class ClassInfo:
    """A declared class or interface."""

    name: str
    super_name: str | None = None
    interface_names: list[str] = field(default_factory=list)
    is_interface: bool = False
    fields: dict[str, FieldInfo] = field(default_factory=dict)
    #: Keyed by :attr:`MethodInfo.key`.
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    source_name: str = "<unknown>"

    def add_field(self, f: FieldInfo) -> None:
        if f.name in self.fields:
            raise ValueError(f"duplicate field {self.name}.{f.name}")
        self.fields[f.name] = f

    def add_method(self, m: MethodInfo) -> None:
        if m.key in self.methods:
            raise ValueError(f"duplicate method {self.name}.{m.key}")
        self.methods[m.key] = m

    def constructors(self) -> list[MethodInfo]:
        return [m for m in self.methods.values() if m.is_constructor]

    def instance_methods(self) -> list[MethodInfo]:
        return [
            m
            for m in self.methods.values()
            if not m.is_static and not m.is_constructor
        ]

    def static_methods(self) -> list[MethodInfo]:
        return [m for m in self.methods.values() if m.is_static]

    def __str__(self) -> str:
        kind = "interface" if self.is_interface else "class"
        return f"{kind} {self.name}"


class ProgramUnit:
    """A linkable set of classes — the output of one frontend run.

    The unit also records, per class, which fields the offline analysis
    designated as state fields; this is attached by the mutation pipeline
    before the program is handed to the VM.
    """

    def __init__(self, classes: dict[str, ClassInfo] | None = None,
                 entry_class: str = "Main", entry_method: str = "main") -> None:
        self.classes: dict[str, ClassInfo] = dict(classes or {})
        self.entry_class = entry_class
        self.entry_method = entry_method

    def add_class(self, cls: ClassInfo) -> None:
        if cls.name in self.classes:
            raise ValueError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls

    def get_class(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(f"unknown class {name!r}") from None

    def lookup_method(self, class_name: str, key: str) -> MethodInfo | None:
        """Resolve ``key`` against ``class_name`` walking up the hierarchy."""
        cls: ClassInfo | None = self.classes.get(class_name)
        while cls is not None:
            if key in cls.methods:
                return cls.methods[key]
            cls = self.classes.get(cls.super_name) if cls.super_name else None
        return None

    def lookup_field(self, class_name: str, field_name: str) -> FieldInfo | None:
        """Resolve a field name against a class, walking up the hierarchy."""
        cls: ClassInfo | None = self.classes.get(class_name)
        while cls is not None:
            if field_name in cls.fields:
                return cls.fields[field_name]
            cls = self.classes.get(cls.super_name) if cls.super_name else None
        return None

    def supertypes(self, class_name: str) -> Iterator[str]:
        """Yield ``class_name`` and all its superclasses, bottom-up."""
        cls = self.classes.get(class_name)
        while cls is not None:
            yield cls.name
            cls = self.classes.get(cls.super_name) if cls.super_name else None

    def is_subtype(self, sub: str, sup: str) -> bool:
        """True if ``sub`` is ``sup`` or extends/implements it transitively."""
        if sub == sup:
            return True
        seen: set[str] = set()
        work = [sub]
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            if name == sup:
                return True
            cls = self.classes.get(name)
            if cls is None:
                continue
            if cls.super_name:
                work.append(cls.super_name)
            work.extend(cls.interface_names)
        return False

    def subclasses_of(self, class_name: str) -> list[str]:
        """Direct and transitive subclasses of ``class_name`` (excl. itself)."""
        out = []
        for name in self.classes:
            if name != class_name and self.is_subtype(name, class_name):
                if not self.classes[name].is_interface:
                    out.append(name)
        return sorted(out)

    def all_methods(self) -> Iterator[MethodInfo]:
        for cls in self.classes.values():
            yield from cls.methods.values()

    def class_count(self) -> int:
        return len(self.classes)

    def method_count(self) -> int:
        return sum(len(c.methods) for c in self.classes.values())

    def __repr__(self) -> str:
        return (
            f"ProgramUnit({self.class_count()} classes, "
            f"{self.method_count()} methods, entry={self.entry_class}."
            f"{self.entry_method})"
        )
