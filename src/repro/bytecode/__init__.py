"""Jx bytecode: instruction set, class-file model, builder, verifier."""

from repro.bytecode.classfile import (
    BOOLEAN,
    CONSTRUCTOR_NAME,
    DOUBLE,
    INT,
    STRING,
    VOID,
    ClassInfo,
    FieldInfo,
    JxType,
    MethodInfo,
    ProgramUnit,
)
from repro.bytecode.builder import CodeBuilder, Label, make_method
from repro.bytecode.disasm import (
    disassemble_class,
    disassemble_method,
    disassemble_program,
    disassemble_quick,
)
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.verify import (
    VerifyError,
    verify_method,
    verify_program,
    verify_quick,
    verify_quick_method,
)

__all__ = [
    "BOOLEAN",
    "CONSTRUCTOR_NAME",
    "DOUBLE",
    "INT",
    "STRING",
    "VOID",
    "ClassInfo",
    "CodeBuilder",
    "FieldInfo",
    "Instr",
    "JxType",
    "Label",
    "MethodInfo",
    "Op",
    "ProgramUnit",
    "VerifyError",
    "disassemble_class",
    "disassemble_method",
    "disassemble_program",
    "disassemble_quick",
    "make_method",
    "verify_method",
    "verify_program",
    "verify_quick",
    "verify_quick_method",
]
