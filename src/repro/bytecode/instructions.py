"""Instruction objects for Jx bytecode.

An :class:`Instr` is one executable unit in a method's linear code array.
Branch targets are absolute indices into that array.  Instructions carry a
``resolved`` slot that the linker fills in with pre-resolved runtime
metadata (vtable offsets, field slots, intrinsic callables) so the
interpreter does not re-resolve names on every execution.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.opcodes import OP_INFO, Op


class Instr:
    """A single bytecode instruction.

    Attributes:
        op: The opcode.
        arg: The immediate argument (literal, local index, name tuple,
            branch target), or ``None`` for argument-less opcodes.
        line: Source line number for diagnostics, or 0.
        resolved: Link-time resolution product; filled by the linker.
        state_hook: Set by the linker on PUTFIELD/PUTSTATIC instructions
            that write a *state field* of a mutable class; the interpreter
            and compiled code invoke the mutation manager at these writes
            (paper Fig. 4).
    """

    __slots__ = ("op", "arg", "line", "resolved", "state_hook")

    def __init__(self, op: Op, arg: Any = None, line: int = 0) -> None:
        self.op = op
        self.arg = arg
        self.line = line
        self.resolved: Any = None
        self.state_hook: Any = None

    def copy(self) -> "Instr":
        """Return an unlinked copy of this instruction."""
        return Instr(self.op, self.arg, self.line)

    @property
    def is_branch(self) -> bool:
        return OP_INFO[self.op].is_branch

    @property
    def is_call(self) -> bool:
        return self.op in (
            Op.INVOKEVIRTUAL,
            Op.INVOKESPECIAL,
            Op.INVOKESTATIC,
            Op.INVOKEINTERFACE,
        )

    def __repr__(self) -> str:
        info = OP_INFO[self.op]
        if self.arg is None:
            return f"<{info.mnemonic}>"
        return f"<{info.mnemonic} {self.arg!r}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instr):
            return NotImplemented
        return self.op == other.op and self.arg == other.arg

    def __hash__(self) -> int:
        return hash((self.op, repr(self.arg)))


def relink_targets(code: list[Instr], index_map: dict[int, int]) -> None:
    """Rewrite branch targets through ``index_map`` after code motion.

    ``index_map`` maps old instruction indices to new ones.  Used by code
    transforms that delete or reorder instructions.
    """
    for instr in code:
        if instr.is_branch and instr.op != Op.RETURN and instr.arg is not None:
            instr.arg = index_map[instr.arg]
