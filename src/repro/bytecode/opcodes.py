"""The Jx bytecode instruction set.

Jx bytecode is a small stack-machine ISA in the spirit of JVM bytecode.
It is deliberately symbolic: call and field instructions carry class /
member *names*, which the linker (:mod:`repro.vm.linker`) resolves to
offsets and slots before execution.  This mirrors the constant-pool
resolution step of a real JVM while keeping the code model simple.

Each opcode has a :class:`OpInfo` record describing its stack effect,
which the structural verifier (:mod:`repro.bytecode.verify`) and the
bytecode-to-IR lowering (:mod:`repro.opt.lowering`) both rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.IntEnum):
    """Opcode numbering for Jx bytecode instructions."""

    # -- constants and locals ------------------------------------------------
    CONST = 1          # arg: literal value (int/float/bool/str/None) -> push
    LOAD = 2           # arg: local index -> push locals[i]
    STORE = 3          # arg: local index; pop -> locals[i]

    # -- stack manipulation --------------------------------------------------
    POP = 10
    DUP = 11
    SWAP = 12

    # -- arithmetic ----------------------------------------------------------
    ADD = 20           # numeric add
    SUB = 21
    MUL = 22
    IDIV = 23          # integer division (Java truncation semantics)
    FDIV = 24          # floating division
    IREM = 25          # integer remainder (Java semantics)
    NEG = 26
    I2D = 27           # int -> double
    D2I = 28           # double -> int (truncate)

    # -- bitwise / shifts ----------------------------------------------------
    SHL = 30
    SHR = 31           # arithmetic shift right
    BAND = 32
    BOR = 33
    BXOR = 34

    # -- comparisons and boolean ---------------------------------------------
    CMP_LT = 40
    CMP_LE = 41
    CMP_GT = 42
    CMP_GE = 43
    CMP_EQ = 44        # works on numbers, bools, strings, refs (identity)
    CMP_NE = 45
    NOT = 46

    # -- strings --------------------------------------------------------------
    CONCAT = 50        # pop b, a -> push str(a) + str(b) with Java-ish coercion

    # -- control flow ----------------------------------------------------------
    JUMP = 60          # arg: target instruction index
    JUMP_IF_TRUE = 61
    JUMP_IF_FALSE = 62
    RETURN = 63        # pop return value
    RETURN_VOID = 64

    # -- objects ----------------------------------------------------------------
    NEW = 70           # arg: class name -> push fresh instance (fields defaulted)
    GETFIELD = 71      # arg: (class name, field name); pop ref -> push value
    PUTFIELD = 72      # arg: (class name, field name); pop value, ref
    GETSTATIC = 73     # arg: (class name, field name) -> push value
    PUTSTATIC = 74     # arg: (class name, field name); pop value
    INVOKEVIRTUAL = 75  # arg: (class name, method name, nargs incl. receiver)
    INVOKESPECIAL = 76  # arg: (class name, method name, nargs incl. receiver)
    INVOKESTATIC = 77  # arg: (class name, method name, nargs)
    INVOKEINTERFACE = 78  # arg: (interface name, method name, nargs incl. recv)
    INSTANCEOF = 79    # arg: class name; pop ref -> push bool
    CHECKCAST = 80     # arg: class name; pop ref -> push ref or raise

    # -- arrays --------------------------------------------------------------
    NEWARRAY = 90      # arg: element type name; pop length -> push array
    ALOAD = 91         # pop index, array -> push element
    ASTORE = 92        # pop value, index, array
    ARRAYLEN = 93      # pop array -> push length

    # -- intrinsics ----------------------------------------------------------
    INTRINSIC = 100    # arg: (name, nargs) -> pop nargs, push result (or None)

    # -- no-op / markers -------------------------------------------------------
    NOP = 110

    # -- quickened forms (runtime-only; never appear in ``info.code``) ---------
    # The quickener (:mod:`repro.bytecode.quicken`) rewrites resolved
    # call/field instructions into these in a method's ``quick_code``
    # shadow array.  They are never verified, lowered, or persisted.
    GETFIELD_QUICK = 120        # GETFIELD with a pre-resolved slot
    INVOKEVIRTUAL_QUICK = 121   # resolved: a TIB-keyed VirtualIC cell
    INVOKEINTERFACE_QUICK = 122  # resolved: a TIB-keyed InterfaceIC cell

    # -- superinstructions (fused adjacent pairs, runtime-only) ----------------
    # Chosen from the dynamic adjacent-pair histogram over salarydb +
    # jbb2000 (LOAD+GETFIELD 10.1%, LOAD+LOAD 6.5%, LOAD+CONST 3.7%,
    # CMP_EQ+JUMP_IF_FALSE 3.2%, CMP_LT+JUMP_IF_FALSE 2.9%).
    LOAD_GETFIELD = 130  # arg: (local index, field slot, field name)
    LOAD_LOAD = 131      # arg: (local index, local index)
    LOAD_CONST = 132     # arg: (local index, literal)
    CMP_LT_JF = 133      # arg: branch target; pop b, a; jump unless a < b
    CMP_EQ_JF = 134      # arg: branch target; pop b, a; jump unless a == b

    # -- idiom superinstructions (fused straight-line sequences) ---------------
    # Loop idioms the Jx front end emits for every counted loop, plus the
    # accumulate-into-target tails; fusing them removes whole dispatch
    # sequences (an INC site is four instructions collapsed into one with
    # no stack traffic at all).
    INC = 140            # LOAD i/CONST c/ADD/STORE i; arg: (i, c)
    ITER_LT_JF = 141     # LOAD i/CONST c/CMP_LT/JF; arg: (i, c, target)
    ADD_STORE = 142      # ADD/STORE i; arg: i; pop b, a -> locals[i] = a + b
    ADD_PUTFIELD = 143   # ADD/PUTFIELD; arg: the shared PUTFIELD Instr
    ADD_RETURN = 144     # ADD/RETURN; pop b, a -> return a + b
    LOAD_RETURN = 145    # LOAD i/RETURN; arg: i -> return locals[i]
    LOAD_ADD = 146       # LOAD i/ADD; arg: i -> stack[-1] += locals[i]
    LOAD_SUB = 147       # LOAD i/SUB; arg: i -> stack[-1] -= locals[i]
    LOAD_MUL = 148       # LOAD i/MUL; arg: i -> stack[-1] *= locals[i]
    GETFIELD_RETURN = 149  # LOAD i/GETFIELD f/RETURN (accessor body);
    #                        arg: (i, slot, fname) -> return obj field
    FIELD_INC = 150      # LOAD i/LOAD i/GETFIELD f/CONST c/ADD/
    #                      PUTFIELD f (field increment); arg: (i, pf, c)
    GETFIELD_SHAPE = 151  # GETFIELD of a shape-managed slot (resolved:
    #                       a ShapeField/UnboxedField, repro.vm.shapes)


#: Placeholder for "stack effect depends on the instruction argument".
VARIABLE = None


@dataclass(frozen=True)
class OpInfo:
    """Static metadata about one opcode.

    ``pops``/``pushes`` of :data:`VARIABLE` means the effect depends on
    the instruction argument (calls and intrinsics).
    """

    mnemonic: str
    pops: int | None
    pushes: int | None
    is_branch: bool = False
    is_terminator: bool = False
    has_arg: bool = True


OP_INFO: dict[Op, OpInfo] = {
    Op.CONST: OpInfo("const", 0, 1),
    Op.LOAD: OpInfo("load", 0, 1),
    Op.STORE: OpInfo("store", 1, 0),
    Op.POP: OpInfo("pop", 1, 0, has_arg=False),
    Op.DUP: OpInfo("dup", 1, 2, has_arg=False),
    Op.SWAP: OpInfo("swap", 2, 2, has_arg=False),
    Op.ADD: OpInfo("add", 2, 1, has_arg=False),
    Op.SUB: OpInfo("sub", 2, 1, has_arg=False),
    Op.MUL: OpInfo("mul", 2, 1, has_arg=False),
    Op.IDIV: OpInfo("idiv", 2, 1, has_arg=False),
    Op.FDIV: OpInfo("fdiv", 2, 1, has_arg=False),
    Op.IREM: OpInfo("irem", 2, 1, has_arg=False),
    Op.NEG: OpInfo("neg", 1, 1, has_arg=False),
    Op.I2D: OpInfo("i2d", 1, 1, has_arg=False),
    Op.D2I: OpInfo("d2i", 1, 1, has_arg=False),
    Op.SHL: OpInfo("shl", 2, 1, has_arg=False),
    Op.SHR: OpInfo("shr", 2, 1, has_arg=False),
    Op.BAND: OpInfo("band", 2, 1, has_arg=False),
    Op.BOR: OpInfo("bor", 2, 1, has_arg=False),
    Op.BXOR: OpInfo("bxor", 2, 1, has_arg=False),
    Op.CMP_LT: OpInfo("cmp_lt", 2, 1, has_arg=False),
    Op.CMP_LE: OpInfo("cmp_le", 2, 1, has_arg=False),
    Op.CMP_GT: OpInfo("cmp_gt", 2, 1, has_arg=False),
    Op.CMP_GE: OpInfo("cmp_ge", 2, 1, has_arg=False),
    Op.CMP_EQ: OpInfo("cmp_eq", 2, 1, has_arg=False),
    Op.CMP_NE: OpInfo("cmp_ne", 2, 1, has_arg=False),
    Op.NOT: OpInfo("not", 1, 1, has_arg=False),
    Op.CONCAT: OpInfo("concat", 2, 1, has_arg=False),
    Op.JUMP: OpInfo("jump", 0, 0, is_branch=True, is_terminator=True),
    Op.JUMP_IF_TRUE: OpInfo("jump_if_true", 1, 0, is_branch=True),
    Op.JUMP_IF_FALSE: OpInfo("jump_if_false", 1, 0, is_branch=True),
    Op.RETURN: OpInfo("return", 1, 0, is_terminator=True, has_arg=False),
    Op.RETURN_VOID: OpInfo("return_void", 0, 0, is_terminator=True, has_arg=False),
    Op.NEW: OpInfo("new", 0, 1),
    Op.GETFIELD: OpInfo("getfield", 1, 1),
    Op.PUTFIELD: OpInfo("putfield", 2, 0),
    Op.GETSTATIC: OpInfo("getstatic", 0, 1),
    Op.PUTSTATIC: OpInfo("putstatic", 1, 0),
    Op.INVOKEVIRTUAL: OpInfo("invokevirtual", VARIABLE, VARIABLE),
    Op.INVOKESPECIAL: OpInfo("invokespecial", VARIABLE, VARIABLE),
    Op.INVOKESTATIC: OpInfo("invokestatic", VARIABLE, VARIABLE),
    Op.INVOKEINTERFACE: OpInfo("invokeinterface", VARIABLE, VARIABLE),
    Op.INSTANCEOF: OpInfo("instanceof", 1, 1),
    Op.CHECKCAST: OpInfo("checkcast", 1, 1),
    Op.NEWARRAY: OpInfo("newarray", 1, 1),
    Op.ALOAD: OpInfo("aload", 2, 1, has_arg=False),
    Op.ASTORE: OpInfo("astore", 3, 0, has_arg=False),
    Op.ARRAYLEN: OpInfo("arraylen", 1, 1, has_arg=False),
    Op.INTRINSIC: OpInfo("intrinsic", VARIABLE, VARIABLE),
    Op.NOP: OpInfo("nop", 0, 0, has_arg=False),
    Op.GETFIELD_QUICK: OpInfo("getfield_quick", 1, 1),
    Op.INVOKEVIRTUAL_QUICK: OpInfo("invokevirtual_quick", VARIABLE, VARIABLE),
    Op.INVOKEINTERFACE_QUICK: OpInfo(
        "invokeinterface_quick", VARIABLE, VARIABLE
    ),
    Op.LOAD_GETFIELD: OpInfo("load_getfield", 0, 1),
    Op.LOAD_LOAD: OpInfo("load_load", 0, 2),
    Op.LOAD_CONST: OpInfo("load_const", 0, 2),
    Op.CMP_LT_JF: OpInfo("cmp_lt_jf", 2, 0, is_branch=True),
    Op.CMP_EQ_JF: OpInfo("cmp_eq_jf", 2, 0, is_branch=True),
    Op.INC: OpInfo("inc", 0, 0),
    Op.ITER_LT_JF: OpInfo("iter_lt_jf", 0, 0, is_branch=True),
    Op.ADD_STORE: OpInfo("add_store", 2, 0),
    Op.ADD_PUTFIELD: OpInfo("add_putfield", 3, 0),
    Op.ADD_RETURN: OpInfo("add_return", 2, 0, is_terminator=True,
                          has_arg=False),
    Op.LOAD_RETURN: OpInfo("load_return", 0, 0, is_terminator=True),
    Op.LOAD_ADD: OpInfo("load_add", 1, 1),
    Op.LOAD_SUB: OpInfo("load_sub", 1, 1),
    Op.LOAD_MUL: OpInfo("load_mul", 1, 1),
    Op.GETFIELD_RETURN: OpInfo("getfield_return", 0, 0,
                               is_terminator=True),
    Op.FIELD_INC: OpInfo("field_inc", 0, 0),
    Op.GETFIELD_SHAPE: OpInfo("getfield_shape", 1, 1),
}

#: Opcodes that invoke another method (share call-shaped arguments).
CALL_OPS = frozenset(
    {Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC, Op.INVOKEINTERFACE}
)

#: Opcodes that end a basic block.
BRANCH_OPS = frozenset(
    {Op.JUMP, Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE, Op.RETURN, Op.RETURN_VOID}
)

#: Commutative binary arithmetic opcodes (used by algebraic simplification).
COMMUTATIVE_OPS = frozenset({Op.ADD, Op.MUL, Op.BAND, Op.BOR, Op.BXOR,
                             Op.CMP_EQ, Op.CMP_NE})

#: Code-array slots covered by each opcode.  Superinstructions span the
#: slots of the instructions they fused (fusion is slot-preserving: the
#: covered slots keep their original, standalone-correct instructions so
#: branches may land inside a fused region); every other op covers one.
#: The widths mirror the ``pc`` increments in ``interpret_quick``.
OP_WIDTH: dict[Op, int] = {
    Op.LOAD_GETFIELD: 2,
    Op.LOAD_LOAD: 2,
    Op.LOAD_CONST: 2,
    Op.CMP_LT_JF: 2,
    Op.CMP_EQ_JF: 2,
    Op.ADD_STORE: 2,
    Op.ADD_PUTFIELD: 2,
    Op.ADD_RETURN: 2,
    Op.LOAD_RETURN: 2,
    Op.LOAD_ADD: 2,
    Op.LOAD_SUB: 2,
    Op.LOAD_MUL: 2,
    Op.GETFIELD_RETURN: 3,
    Op.INC: 4,
    Op.ITER_LT_JF: 4,
    Op.FIELD_INC: 6,
}


def op_width(op: Op) -> int:
    """Code-array slots covered by ``op`` (see :data:`OP_WIDTH`)."""
    return OP_WIDTH.get(op, 1)


def branch_target(instr) -> int | None:
    """The branch-target index of a (possibly quickened) branch
    instruction, or ``None`` for non-branches and RETURN-likes.

    Plain branches and the fused compare-jumps carry the target as the
    whole arg; ``ITER_LT_JF`` packs it as ``arg[2]``.
    """
    op = instr.op
    if op in (Op.JUMP, Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE,
              Op.CMP_LT_JF, Op.CMP_EQ_JF):
        return instr.arg if isinstance(instr.arg, int) else None
    if op is Op.ITER_LT_JF:
        return instr.arg[2]
    return None


#: Runtime-only opcodes produced by the quickener; the verifier, the
#: bytecode-to-IR lowering, and the persistent cache must never see one.
QUICK_OPS = frozenset({
    Op.GETFIELD_QUICK,
    Op.INVOKEVIRTUAL_QUICK,
    Op.INVOKEINTERFACE_QUICK,
    Op.LOAD_GETFIELD,
    Op.LOAD_LOAD,
    Op.LOAD_CONST,
    Op.CMP_LT_JF,
    Op.CMP_EQ_JF,
    Op.INC,
    Op.ITER_LT_JF,
    Op.ADD_STORE,
    Op.ADD_PUTFIELD,
    Op.ADD_RETURN,
    Op.LOAD_RETURN,
    Op.LOAD_ADD,
    Op.LOAD_SUB,
    Op.LOAD_MUL,
    Op.GETFIELD_RETURN,
    Op.FIELD_INC,
    Op.GETFIELD_SHAPE,
})


def mnemonic(op: Op) -> str:
    """Return the assembler mnemonic for ``op``."""
    return OP_INFO[op].mnemonic
