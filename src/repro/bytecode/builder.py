"""Programmatic bytecode assembly.

The frontend's code generator and many tests build method bodies through
:class:`CodeBuilder`, which manages labels and local-variable allocation
so callers never deal with raw instruction indices.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.classfile import JxType, MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op


class Label:
    """A forward-referenceable branch target."""

    __slots__ = ("name", "index")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.index: int | None = None

    def __repr__(self) -> str:
        return f"Label({self.name or id(self)}@{self.index})"


class CodeBuilder:
    """Accumulates instructions for one method body.

    Typical use::

        cb = CodeBuilder()
        done = cb.new_label("done")
        cb.load(0)
        cb.const(0)
        cb.emit(Op.CMP_LT)
        cb.jump_if_false(done)
        ...
        cb.place(done)
        cb.emit(Op.RETURN_VOID)
        code, max_locals = cb.finish()
    """

    def __init__(self, num_params: int = 0) -> None:
        self.code: list[Instr] = []
        self._pending: dict[int, Label] = {}
        self._next_local = num_params
        self._line = 0

    # -- locals ---------------------------------------------------------------

    def alloc_local(self) -> int:
        """Reserve a fresh local slot and return its index."""
        idx = self._next_local
        self._next_local += 1
        return idx

    @property
    def max_locals(self) -> int:
        return self._next_local

    # -- lines -----------------------------------------------------------------

    def set_line(self, line: int) -> None:
        self._line = line

    # -- emission ---------------------------------------------------------------

    def emit(self, op: Op, arg: Any = None) -> Instr:
        instr = Instr(op, arg, self._line)
        self.code.append(instr)
        return instr

    def const(self, value: Any) -> Instr:
        return self.emit(Op.CONST, value)

    def load(self, index: int) -> Instr:
        return self.emit(Op.LOAD, index)

    def store(self, index: int) -> Instr:
        return self.emit(Op.STORE, index)

    # -- labels and branches -----------------------------------------------------

    def new_label(self, name: str = "") -> Label:
        return Label(name)

    def place(self, label: Label) -> None:
        """Bind ``label`` to the next instruction index."""
        if label.index is not None:
            raise ValueError(f"label {label!r} placed twice")
        label.index = len(self.code)
        for pos, pending in list(self._pending.items()):
            if pending is label:
                self.code[pos].arg = label.index
                del self._pending[pos]

    def _branch(self, op: Op, label: Label) -> Instr:
        instr = self.emit(op, label.index)
        if label.index is None:
            self._pending[len(self.code) - 1] = label
        return instr

    def jump(self, label: Label) -> Instr:
        return self._branch(Op.JUMP, label)

    def jump_if_true(self, label: Label) -> Instr:
        return self._branch(Op.JUMP_IF_TRUE, label)

    def jump_if_false(self, label: Label) -> Instr:
        return self._branch(Op.JUMP_IF_FALSE, label)

    # -- calls and members --------------------------------------------------------

    def invokevirtual(self, cls: str, method: str, nargs: int) -> Instr:
        return self.emit(Op.INVOKEVIRTUAL, (cls, method, nargs))

    def invokespecial(self, cls: str, method: str, nargs: int) -> Instr:
        return self.emit(Op.INVOKESPECIAL, (cls, method, nargs))

    def invokestatic(self, cls: str, method: str, nargs: int) -> Instr:
        return self.emit(Op.INVOKESTATIC, (cls, method, nargs))

    def invokeinterface(self, iface: str, method: str, nargs: int) -> Instr:
        return self.emit(Op.INVOKEINTERFACE, (iface, method, nargs))

    def getfield(self, cls: str, name: str) -> Instr:
        return self.emit(Op.GETFIELD, (cls, name))

    def putfield(self, cls: str, name: str) -> Instr:
        return self.emit(Op.PUTFIELD, (cls, name))

    def getstatic(self, cls: str, name: str) -> Instr:
        return self.emit(Op.GETSTATIC, (cls, name))

    def putstatic(self, cls: str, name: str) -> Instr:
        return self.emit(Op.PUTSTATIC, (cls, name))

    def intrinsic(self, name: str, nargs: int) -> Instr:
        return self.emit(Op.INTRINSIC, (name, nargs))

    # -- finish ---------------------------------------------------------------------

    def finish(self) -> tuple[list[Instr], int]:
        """Validate label resolution and return ``(code, max_locals)``."""
        if self._pending:
            unresolved = sorted(self._pending)
            raise ValueError(f"unresolved branch targets at {unresolved}")
        return self.code, self.max_locals


def make_method(
    name: str,
    declaring_class: str,
    param_types: list[JxType],
    return_type: JxType,
    builder: CodeBuilder,
    *,
    is_static: bool = False,
    access: str = "public",
    local_names: list[str] | None = None,
) -> MethodInfo:
    """Package a finished :class:`CodeBuilder` into a :class:`MethodInfo`."""
    code, max_locals = builder.finish()
    return MethodInfo(
        name=name,
        param_types=list(param_types),
        return_type=return_type,
        declaring_class=declaring_class,
        is_static=is_static,
        access=access,
        code=code,
        max_locals=max_locals,
        local_names=list(local_names or []),
    )
