"""Structural bytecode verifier.

Checks the properties the rest of the system relies on:

* every branch target is a valid instruction index;
* execution cannot fall off the end of the code array;
* the operand-stack depth at each instruction is consistent across all
  paths reaching it (a requirement for the stack-to-register lowering in
  :mod:`repro.opt.lowering`);
* local indices are within ``max_locals``;
* call/intrinsic argument counts are non-negative;
* pristine code contains no runtime-only quickened opcode
  (:data:`~repro.bytecode.opcodes.QUICK_OPS`).

The verifier returns the per-instruction entry stack depth map, which the
IR lowering reuses.

Quickened bodies (``rm.quick_code``) have their own entry,
:func:`verify_quick`: the same structural rules, but execution is
width-aware (a superinstruction covers several slots and the next
instruction executed is ``pc + width``), branch targets come from the
packed args (:func:`~repro.bytecode.opcodes.branch_target`) and may
legally land *inside* a fused region (fusion is slot-preserving), and
call push-counts come from the linked resolution state instead of a
frontend-provided map.
"""

from __future__ import annotations

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import (
    CALL_OPS,
    OP_INFO,
    QUICK_OPS,
    Op,
    branch_target,
    op_width,
)


class VerifyError(Exception):
    """Raised when a method body violates bytecode structural rules."""

    def __init__(self, method: MethodInfo, index: int, message: str) -> None:
        self.method = method
        self.index = index
        super().__init__(f"{method.qualified_name} @{index}: {message}")


def stack_effect(instr: Instr, *, returns_value: bool | None = None) -> tuple[int, int]:
    """Return ``(pops, pushes)`` for ``instr``.

    For call instructions the pop count comes from the encoded ``nargs``;
    whether the call pushes depends on the callee's return type, which the
    verifier does not know — callers pass ``returns_value`` when they do.
    The verifier itself treats unknown-return calls as pushing a value if
    followed by anything other than an immediate POP-less terminator; to
    stay sound it instead requires the *frontend* to emit an explicit POP
    after void-returning expression statements, so here a call is assumed
    to push exactly when ``returns_value`` is not ``False``.
    """
    info = OP_INFO[instr.op]
    if instr.op in CALL_OPS:
        nargs = instr.arg[2]
        pushes = 1 if returns_value in (True, None) else 0
        return nargs, pushes
    if instr.op is Op.INTRINSIC:
        nargs = instr.arg[1]
        pushes = 1 if returns_value in (True, None) else 0
        return nargs, pushes
    return info.pops, info.pushes


def verify_method(
    method: MethodInfo,
    call_returns: dict[int, bool] | None = None,
) -> list[int]:
    """Verify ``method`` and return the entry stack depth per instruction.

    Args:
        method: The method to verify (abstract methods verify trivially).
        call_returns: Optional map from instruction index to whether the
            call/intrinsic at that index pushes a result.  When provided
            (the frontend records this), depth checking is exact.

    Raises:
        VerifyError: On any structural violation.
    """
    if method.is_abstract:
        return []
    code = method.code
    if not code:
        raise VerifyError(method, 0, "empty code array")
    call_returns = call_returns or {}

    n = len(code)
    # Branch-target validity.
    for i, instr in enumerate(code):
        if instr.op in QUICK_OPS:
            raise VerifyError(
                method, i,
                f"runtime-only quickened opcode {instr.op.name} "
                f"in pristine code",
            )
        if instr.is_branch and instr.op not in (Op.RETURN, Op.RETURN_VOID):
            if not isinstance(instr.arg, int) or not (0 <= instr.arg < n):
                raise VerifyError(method, i, f"bad branch target {instr.arg!r}")
        if instr.op in (Op.LOAD, Op.STORE):
            if not (0 <= instr.arg < method.max_locals):
                raise VerifyError(
                    method, i,
                    f"local index {instr.arg} out of range "
                    f"(max_locals={method.max_locals})",
                )
        if instr.op in CALL_OPS or instr.op is Op.INTRINSIC:
            nargs = instr.arg[2] if instr.op in CALL_OPS else instr.arg[1]
            if nargs < 0:
                raise VerifyError(method, i, f"negative arg count {nargs}")

    # Fall-through-off-the-end check.
    last = code[-1]
    if not OP_INFO[last.op].is_terminator and last.op not in (
        Op.JUMP_IF_TRUE,
        Op.JUMP_IF_FALSE,
    ):
        raise VerifyError(method, n - 1, "control can fall off end of code")
    if last.op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
        raise VerifyError(method, n - 1, "conditional branch at end of code")

    # Stack-depth dataflow.
    depths: list[int | None] = [None] * n
    depths[0] = 0
    work = [0]
    while work:
        i = work.pop()
        depth = depths[i]
        assert depth is not None
        instr = code[i]
        returns_value = call_returns.get(i)
        pops, pushes = stack_effect(instr, returns_value=returns_value)
        if depth < pops:
            raise VerifyError(
                method, i, f"stack underflow (depth={depth}, pops={pops})"
            )
        out = depth - pops + pushes
        successors: list[int] = []
        if instr.op is Op.JUMP:
            successors = [instr.arg]
        elif instr.op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
            successors = [instr.arg, i + 1]
        elif instr.op in (Op.RETURN, Op.RETURN_VOID):
            successors = []
        else:
            successors = [i + 1]
        for s in successors:
            if depths[s] is None:
                depths[s] = out
                work.append(s)
            elif depths[s] != out:
                raise VerifyError(
                    method, s,
                    f"inconsistent stack depth at join: {depths[s]} vs {out}",
                )
    return [d if d is not None else 0 for d in depths]


# ---------------------------------------------------------------------------
# Quickened bodies.

#: Ops that end execution of a quickened body (fused returns included).
_QUICK_TERMINATORS = frozenset({
    Op.RETURN,
    Op.RETURN_VOID,
    Op.ADD_RETURN,
    Op.LOAD_RETURN,
    Op.GETFIELD_RETURN,
})

#: Two-successor ops in quickened code (fall-through is ``i + width``).
_QUICK_COND_BRANCHES = frozenset({
    Op.JUMP_IF_TRUE,
    Op.JUMP_IF_FALSE,
    Op.CMP_LT_JF,
    Op.CMP_EQ_JF,
    Op.ITER_LT_JF,
})


def _quick_local_indices(instr: Instr) -> tuple[int, ...]:
    """Local-variable indices a (possibly fused) quick op reads/writes.

    Mirrors the ``locals_[...]`` accesses in ``interpret_quick``:
    superinstructions pack locals into tuple args (``ITER_LT_JF`` packs
    ``(local, limit, target)`` — only ``a[0]`` is a local; ``FIELD_INC``
    packs ``(local, putfield_instr, const)``).
    """
    op, a = instr.op, instr.arg
    if op in (Op.LOAD, Op.STORE, Op.ADD_STORE, Op.LOAD_RETURN,
              Op.LOAD_ADD, Op.LOAD_SUB, Op.LOAD_MUL):
        return (a,)
    if op in (Op.LOAD_GETFIELD, Op.LOAD_CONST, Op.GETFIELD_RETURN,
              Op.INC, Op.ITER_LT_JF, Op.FIELD_INC):
        return (a[0],)
    if op is Op.LOAD_LOAD:
        return (a[0], a[1])
    return ()


def stack_effect_quick(instr: Instr) -> tuple[int, int]:
    """``(pops, pushes)`` for an instruction in a quickened body.

    Unlike :func:`stack_effect`, call push-counts come from the *linked*
    resolution state (``instr.resolved``) — a quickened body only exists
    after the method ran, so every call site is resolved.  An unresolved
    call (possible in hand-built test code) falls back to "pushes".
    """
    op = instr.op
    if op in CALL_OPS:
        resolved = instr.resolved
        pushes = 1
        if isinstance(resolved, tuple):
            pushes = 1 if resolved[-1] else 0
        return instr.arg[2], pushes
    if op in (Op.INVOKEVIRTUAL_QUICK, Op.INVOKEINTERFACE_QUICK):
        ic = instr.resolved
        if ic is None:
            return instr.arg[2], 1
        return ic.argc, 1 if ic.returns else 0
    if op is Op.INTRINSIC:
        intr = instr.resolved
        if intr is None:
            return instr.arg[1], 1
        return intr.nargs, 1 if intr.returns else 0
    info = OP_INFO[instr.op]
    return info.pops, info.pushes


def _check_slot_kind(method: MethodInfo, i: int, instr: Instr) -> None:
    """Field-slot discrimination rules for quickened bodies.

    Shape-based layouts (:mod:`repro.vm.shapes`) split field access into
    two regimes: plain ``int`` slots index ``obj.fields`` directly, and
    shape-managed slots (``ShapeField``/``UnboxedField`` — recognized
    structurally by their ``read``/``store`` methods, since this module
    sits below :mod:`repro.vm`) must go through the managed path.  A
    direct-indexing quick form carrying a managed slot would misread
    truncated storage under a pinning shape; a ``GETFIELD_SHAPE``
    carrying a plain int would pay the managed indirection for nothing
    and hide a resolution bug.  (``ShapeField`` subclasses ``int``, so
    the discrimination must be on exact type, mirroring the quickener's
    and interpreter's ``type(resolved) is int`` checks.)
    """
    op = instr.op
    if op is Op.GETFIELD_SHAPE:
        r = instr.resolved
        if type(r) is int or not (
            callable(getattr(r, "read", None))
            and callable(getattr(r, "store", None))
        ):
            raise VerifyError(
                method, i,
                f"GETFIELD_SHAPE must carry a shape-managed slot "
                f"(read/store), got {r!r}",
            )
    elif op is Op.GETFIELD_QUICK:
        if type(instr.resolved) is not int:
            raise VerifyError(
                method, i,
                f"GETFIELD_QUICK must carry a plain int slot, "
                f"got {instr.resolved!r}",
            )
    elif op in (Op.LOAD_GETFIELD, Op.GETFIELD_RETURN):
        if type(instr.arg[1]) is not int:
            raise VerifyError(
                method, i,
                f"{op.name} packs a non-int slot {instr.arg[1]!r}; "
                f"shape-managed fields must stay unfused",
            )
    elif op is Op.ADD_PUTFIELD:
        if type(instr.arg.resolved) is not int:
            raise VerifyError(
                method, i,
                f"ADD_PUTFIELD wraps a PUTFIELD with non-int slot "
                f"{instr.arg.resolved!r}; shape-managed fields must "
                f"stay unfused",
            )
    elif op is Op.FIELD_INC:
        if type(instr.arg[1].resolved) is not int:
            raise VerifyError(
                method, i,
                f"FIELD_INC wraps a PUTFIELD with non-int slot "
                f"{instr.arg[1].resolved!r}; shape-managed fields must "
                f"stay unfused",
            )


def verify_quick(method: MethodInfo, code: list[Instr]) -> list[int]:
    """Verify a quickened body and return entry stack depth per slot.

    The structural rules of :func:`verify_method`, adapted to quickened
    execution:

    * traversal is width-aware — after a fused op at slot ``i`` the next
      instruction executed is ``i + op_width(op)``;
    * branch targets come from :func:`~repro.bytecode.opcodes.branch_target`
      (``ITER_LT_JF`` packs its target) and may land *inside* a fused
      region, because fusion is slot-preserving: every covered slot still
      holds its original standalone instruction, which this traversal
      then verifies along that path;
    * local indices packed into superinstruction args are range-checked
      for **every** slot (covered slots included — they must stay valid
      branch-landing pads);
    * stack depth must be path-consistent over all *executed* slots.

    Raises:
        VerifyError: On any structural violation.
    """
    if not code:
        raise VerifyError(method, 0, "empty quickened code array")
    n = len(code)

    # Per-slot checks: every slot (covered or not) must hold a valid
    # standalone-executable instruction.
    for i, instr in enumerate(code):
        target = branch_target(instr)
        if target is not None and not (0 <= target < n):
            raise VerifyError(method, i, f"bad branch target {target!r}")
        for local in _quick_local_indices(instr):
            if not (0 <= local < method.max_locals):
                raise VerifyError(
                    method, i,
                    f"local index {local} out of range "
                    f"(max_locals={method.max_locals})",
                )
        if instr.op in CALL_OPS or instr.op is Op.INTRINSIC:
            nargs = (instr.arg[2] if instr.op in CALL_OPS
                     else instr.arg[1])
            if nargs < 0:
                raise VerifyError(method, i, f"negative arg count {nargs}")
        _check_slot_kind(method, i, instr)

    # Width-aware stack-depth dataflow over executed slots.
    depths: list[int | None] = [None] * n
    depths[0] = 0
    work = [0]
    while work:
        i = work.pop()
        depth = depths[i]
        assert depth is not None
        instr = code[i]
        op = instr.op
        pops, pushes = stack_effect_quick(instr)
        if depth < pops:
            raise VerifyError(
                method, i, f"stack underflow (depth={depth}, pops={pops})"
            )
        out = depth - pops + pushes
        if op in _QUICK_TERMINATORS:
            successors: list[int] = []
        elif op is Op.JUMP:
            successors = [instr.arg]
        elif op in _QUICK_COND_BRANCHES:
            successors = [branch_target(instr), i + op_width(op)]
        else:
            successors = [i + op_width(op)]
        for s in successors:
            if s >= n:
                raise VerifyError(
                    method, i, "control can fall off end of quickened code"
                )
            if depths[s] is None:
                depths[s] = out
                work.append(s)
            elif depths[s] != out:
                raise VerifyError(
                    method, s,
                    f"inconsistent stack depth at join: {depths[s]} vs {out}",
                )
    return [d if d is not None else 0 for d in depths]


def verify_quick_method(rm) -> list[int]:
    """Verify ``rm.quick_code`` (a no-op empty result when the method
    has not been quickened)."""
    if not getattr(rm, "quick_code", None):
        return []
    return verify_quick(rm.info, rm.quick_code)


def verify_program(program, call_returns_by_method=None) -> None:
    """Verify every concrete method in ``program``.

    Args:
        program: A :class:`~repro.bytecode.classfile.ProgramUnit`.
        call_returns_by_method: Optional ``{qualified_name: {index: bool}}``.
    """
    call_returns_by_method = call_returns_by_method or {}
    for method in program.all_methods():
        if not method.is_abstract:
            verify_method(
                method, call_returns_by_method.get(method.qualified_name)
            )
