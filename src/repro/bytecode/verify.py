"""Structural bytecode verifier.

Checks the properties the rest of the system relies on:

* every branch target is a valid instruction index;
* execution cannot fall off the end of the code array;
* the operand-stack depth at each instruction is consistent across all
  paths reaching it (a requirement for the stack-to-register lowering in
  :mod:`repro.opt.lowering`);
* local indices are within ``max_locals``;
* call/intrinsic argument counts are non-negative.

The verifier returns the per-instruction entry stack depth map, which the
IR lowering reuses.
"""

from __future__ import annotations

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import CALL_OPS, OP_INFO, Op


class VerifyError(Exception):
    """Raised when a method body violates bytecode structural rules."""

    def __init__(self, method: MethodInfo, index: int, message: str) -> None:
        self.method = method
        self.index = index
        super().__init__(f"{method.qualified_name} @{index}: {message}")


def stack_effect(instr: Instr, *, returns_value: bool | None = None) -> tuple[int, int]:
    """Return ``(pops, pushes)`` for ``instr``.

    For call instructions the pop count comes from the encoded ``nargs``;
    whether the call pushes depends on the callee's return type, which the
    verifier does not know — callers pass ``returns_value`` when they do.
    The verifier itself treats unknown-return calls as pushing a value if
    followed by anything other than an immediate POP-less terminator; to
    stay sound it instead requires the *frontend* to emit an explicit POP
    after void-returning expression statements, so here a call is assumed
    to push exactly when ``returns_value`` is not ``False``.
    """
    info = OP_INFO[instr.op]
    if instr.op in CALL_OPS:
        nargs = instr.arg[2]
        pushes = 1 if returns_value in (True, None) else 0
        return nargs, pushes
    if instr.op is Op.INTRINSIC:
        nargs = instr.arg[1]
        pushes = 1 if returns_value in (True, None) else 0
        return nargs, pushes
    return info.pops, info.pushes


def verify_method(
    method: MethodInfo,
    call_returns: dict[int, bool] | None = None,
) -> list[int]:
    """Verify ``method`` and return the entry stack depth per instruction.

    Args:
        method: The method to verify (abstract methods verify trivially).
        call_returns: Optional map from instruction index to whether the
            call/intrinsic at that index pushes a result.  When provided
            (the frontend records this), depth checking is exact.

    Raises:
        VerifyError: On any structural violation.
    """
    if method.is_abstract:
        return []
    code = method.code
    if not code:
        raise VerifyError(method, 0, "empty code array")
    call_returns = call_returns or {}

    n = len(code)
    # Branch-target validity.
    for i, instr in enumerate(code):
        if instr.is_branch and instr.op not in (Op.RETURN, Op.RETURN_VOID):
            if not isinstance(instr.arg, int) or not (0 <= instr.arg < n):
                raise VerifyError(method, i, f"bad branch target {instr.arg!r}")
        if instr.op in (Op.LOAD, Op.STORE):
            if not (0 <= instr.arg < method.max_locals):
                raise VerifyError(
                    method, i,
                    f"local index {instr.arg} out of range "
                    f"(max_locals={method.max_locals})",
                )
        if instr.op in CALL_OPS or instr.op is Op.INTRINSIC:
            nargs = instr.arg[2] if instr.op in CALL_OPS else instr.arg[1]
            if nargs < 0:
                raise VerifyError(method, i, f"negative arg count {nargs}")

    # Fall-through-off-the-end check.
    last = code[-1]
    if not OP_INFO[last.op].is_terminator and last.op not in (
        Op.JUMP_IF_TRUE,
        Op.JUMP_IF_FALSE,
    ):
        raise VerifyError(method, n - 1, "control can fall off end of code")
    if last.op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
        raise VerifyError(method, n - 1, "conditional branch at end of code")

    # Stack-depth dataflow.
    depths: list[int | None] = [None] * n
    depths[0] = 0
    work = [0]
    while work:
        i = work.pop()
        depth = depths[i]
        assert depth is not None
        instr = code[i]
        returns_value = call_returns.get(i)
        pops, pushes = stack_effect(instr, returns_value=returns_value)
        if depth < pops:
            raise VerifyError(
                method, i, f"stack underflow (depth={depth}, pops={pops})"
            )
        out = depth - pops + pushes
        successors: list[int] = []
        if instr.op is Op.JUMP:
            successors = [instr.arg]
        elif instr.op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
            successors = [instr.arg, i + 1]
        elif instr.op in (Op.RETURN, Op.RETURN_VOID):
            successors = []
        else:
            successors = [i + 1]
        for s in successors:
            if depths[s] is None:
                depths[s] = out
                work.append(s)
            elif depths[s] != out:
                raise VerifyError(
                    method, s,
                    f"inconsistent stack depth at join: {depths[s]} vs {out}",
                )
    return [d if d is not None else 0 for d in depths]


def verify_program(program, call_returns_by_method=None) -> None:
    """Verify every concrete method in ``program``.

    Args:
        program: A :class:`~repro.bytecode.classfile.ProgramUnit`.
        call_returns_by_method: Optional ``{qualified_name: {index: bool}}``.
    """
    call_returns_by_method = call_returns_by_method or {}
    for method in program.all_methods():
        if not method.is_abstract:
            verify_method(
                method, call_returns_by_method.get(method.qualified_name)
            )
