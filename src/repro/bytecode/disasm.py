"""Human-readable disassembly of Jx bytecode."""

from __future__ import annotations

from repro.bytecode.classfile import ClassInfo, MethodInfo, ProgramUnit
from repro.bytecode.opcodes import OP_INFO


def disassemble_method(method: MethodInfo) -> str:
    """Return a numbered listing of ``method``'s code."""
    lines = [f"{method}  (max_locals={method.max_locals})"]
    targets = {
        instr.arg
        for instr in method.code
        if instr.is_branch and isinstance(instr.arg, int)
    }
    for i, instr in enumerate(method.code):
        marker = "->" if i in targets else "  "
        info = OP_INFO[instr.op]
        arg = "" if instr.arg is None else f" {instr.arg!r}"
        hook = "  ; state-field write" if instr.state_hook is not None else ""
        lines.append(f"{marker}{i:4d}: {info.mnemonic}{arg}{hook}")
    return "\n".join(lines)


def disassemble_class(cls: ClassInfo) -> str:
    """Return a listing of every method in ``cls``."""
    header = str(cls)
    if cls.super_name:
        header += f" extends {cls.super_name}"
    if cls.interface_names:
        header += " implements " + ", ".join(cls.interface_names)
    parts = [header]
    for f in cls.fields.values():
        parts.append(f"  {f}")
    for m in cls.methods.values():
        body = disassemble_method(m) if not m.is_abstract else f"{m}  (abstract)"
        parts.append("  " + body.replace("\n", "\n  "))
    return "\n".join(parts)


def disassemble_program(program: ProgramUnit) -> str:
    """Return a listing of every class in ``program``."""
    return "\n\n".join(
        disassemble_class(cls) for cls in program.classes.values()
    )
