"""Human-readable disassembly of Jx bytecode.

Two listings: :func:`disassemble_method` renders pristine frontend
bytecode; :func:`disassemble_quick` renders a RuntimeMethod's quickened
body (``jx disasm --quick``), where superinstructions span several
slots — covered slots keep their original standalone instructions (legal
branch-landing pads) and are annotated instead of hidden.
"""

from __future__ import annotations

from repro.bytecode.classfile import ClassInfo, MethodInfo, ProgramUnit
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import OP_INFO, Op, branch_target, op_width


def disassemble_method(method: MethodInfo) -> str:
    """Return a numbered listing of ``method``'s code."""
    lines = [f"{method}  (max_locals={method.max_locals})"]
    targets = {
        t for instr in method.code
        if (t := branch_target(instr)) is not None
    }
    for i, instr in enumerate(method.code):
        marker = "->" if i in targets else "  "
        info = OP_INFO[instr.op]
        arg = "" if instr.arg is None else f" {instr.arg!r}"
        hook = "  ; state-field write" if instr.state_hook is not None else ""
        lines.append(f"{marker}{i:4d}: {info.mnemonic}{arg}{hook}")
    return "\n".join(lines)


def _quick_arg(instr: Instr) -> str:
    """Pretty-print a quick op's arg: superinstructions pack shared
    ``Instr`` objects (ADD_PUTFIELD's arg IS the fused PUTFIELD;
    FIELD_INC packs ``(local, putfield, const)``) which would otherwise
    render as opaque object reprs."""
    op, a = instr.op, instr.arg
    if op is Op.ADD_PUTFIELD:
        return f" putfield {a.arg!r}"
    if op is Op.FIELD_INC:
        return f" (local {a[0]}, putfield {a[1].arg!r}, +{a[2]!r})"
    if a is None:
        return ""
    return f" {a!r}"


def _slot_note(instr: Instr) -> str:
    """Annotate a field op's resolved slot kind — the same taxonomy the
    translation validator's shapes client checks (packed index vs
    ``ShapeField`` pinned slot vs ``UnboxedField`` constant)."""
    r = instr.resolved
    if r is None:
        return ""
    if type(r) is int:
        return f"  ; slot {r}"
    kind = type(r).__name__
    if kind == "UnboxedField":
        return f"  ; unboxed {r.value!r}"
    if kind == "ShapeField":
        return f"  ; shape slot {int(r)}"
    return ""


def _quick_hook(instr: Instr):
    """The live state hook a quick op fires, if any (fused forms read it
    off the shared PUTFIELD Instr they pack)."""
    if instr.op is Op.ADD_PUTFIELD:
        return instr.arg.state_hook
    if instr.op is Op.FIELD_INC:
        return instr.arg[1].state_hook
    return instr.state_hook


def disassemble_quick(rm) -> str:
    """Return a numbered listing of ``rm.quick_code``.

    Slots covered by a preceding superinstruction are annotated
    ``; covered by <mnemonic>@<start>`` — they are skipped by
    straight-line execution but remain valid branch targets.
    """
    code = rm.quick_code
    if not code:
        return f"{rm.info}  (not quickened)"
    lines = [f"{rm.info}  (max_locals={rm.info.max_locals}, quickened)"]
    targets = {
        t for instr in code if (t := branch_target(instr)) is not None
    }
    covered_by: dict[int, int] = {}
    i, n = 0, len(code)
    while i < n:
        width = op_width(code[i].op)
        for k in range(i + 1, min(i + width, n)):
            covered_by[k] = i
        i += width
    for j, instr in enumerate(code):
        marker = "->" if j in targets else "  "
        info = OP_INFO[instr.op]
        arg = _quick_arg(instr)
        slot = _slot_note(instr)
        hook = "  ; state-field write" if _quick_hook(instr) is not None else ""
        note = ""
        start = covered_by.get(j)
        if start is not None:
            note = f"  ; covered by {OP_INFO[code[start].op].mnemonic}@{start}"
        lines.append(f"{marker}{j:4d}: {info.mnemonic}{arg}{slot}{hook}{note}")
    return "\n".join(lines)


def disassemble_class(cls: ClassInfo) -> str:
    """Return a listing of every method in ``cls``."""
    header = str(cls)
    if cls.super_name:
        header += f" extends {cls.super_name}"
    if cls.interface_names:
        header += " implements " + ", ".join(cls.interface_names)
    parts = [header]
    for f in cls.fields.values():
        parts.append(f"  {f}")
    for m in cls.methods.values():
        body = disassemble_method(m) if not m.is_abstract else f"{m}  (abstract)"
        parts.append("  " + body.replace("\n", "\n  "))
    return "\n".join(parts)


def disassemble_program(program: ProgramUnit) -> str:
    """Return a listing of every class in ``program``."""
    return "\n\n".join(
        disassemble_class(cls) for cls in program.classes.values()
    )
