"""Exporters: Chrome ``trace_event`` JSON, flat metrics JSON, and a
human ``--stats``-style text report.

The Chrome format is the JSON Array/Object format consumed by
``chrome://tracing`` and Perfetto: a top-level ``traceEvents`` list
whose entries carry ``name``/``ph``/``ts`` (microseconds)/``pid``/
``tid``.  Duration events export as *complete* events (``ph: "X"`` with
``dur``); everything else as thread-scoped instants (``ph: "i"``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.core import Telemetry
from repro.telemetry.events import EVENT_CATEGORIES

#: Synthetic ids — JxVM is single-process, single-thread.
TRACE_PID = 1
TRACE_TID = 1


def to_chrome_trace(telemetry: Telemetry,
                    process_name: str = "JxVM") -> dict[str, Any]:
    """The retained events as a Chrome-trace dict (JSON Object format)."""
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": "vm"},
        },
    ]
    for event in telemetry.bus.events():
        ts_us = event.ts * 1e6
        entry: dict[str, Any] = {
            "name": event.name,
            "cat": EVENT_CATEGORIES.get(event.name, "vm"),
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": dict(event.args),
        }
        if event.dur is not None:
            # Complete event: ts is the start, dur the extent.
            dur_us = event.dur * 1e6
            entry["ph"] = "X"
            entry["ts"] = ts_us - dur_us
            entry["dur"] = dur_us
        else:
            entry["ph"] = "i"
            entry["ts"] = ts_us
            entry["s"] = "t"
        trace_events.append(entry)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "emitted": telemetry.bus.total_emitted,
            "dropped": telemetry.bus.dropped,
        },
    }


def write_chrome_trace(telemetry: Telemetry, path: str,
                       process_name: str = "JxVM") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(telemetry, process_name), handle)


def to_metrics_json(telemetry: Telemetry) -> dict[str, Any]:
    """Flat JSON dump: counters, gauges, histograms, event totals."""
    return telemetry.summary()


def format_text_report(telemetry: Telemetry,
                       title: str = "JxVM telemetry") -> str:
    """The human report ``jx stats`` prints."""
    summary = telemetry.summary()
    lines = [f"== {title} =="]
    ev = summary["events"]
    lines.append(
        f"events: {ev['total']} emitted, {ev['retained']} retained, "
        f"{ev['dropped']} dropped (capacity {ev['capacity']})"
    )
    for name, count in ev["by_name"].items():
        lines.append(f"  {name:24s} {count:>10d}")
    if summary["counters"]:
        lines.append("counters:")
        for name, value in summary["counters"].items():
            lines.append(f"  {name:40s} {value:>12d}")
    if summary["gauges"]:
        lines.append("gauges:")
        for name, value in summary["gauges"].items():
            lines.append(f"  {name:40s} {value!r:>12s}")
    if summary["histograms"]:
        lines.append("histograms:")
        for name, h in summary["histograms"].items():
            lines.append(
                f"  {name}: count={h['count']} sum={h['sum']:.6g} "
                f"mean={h['mean']:.6g} min={_fmt(h['min'])} "
                f"max={_fmt(h['max'])}"
            )
            populated = [
                b for b in h["buckets"] if b["count"]
            ]
            if populated:
                lines.append(
                    "    "
                    + " | ".join(
                        f"<={_fmt(b['le'])}: {b['count']}"
                        if b["le"] is not None
                        else f"+Inf: {b['count']}"
                        for b in populated
                    )
                )
    return "\n".join(lines)


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}"
