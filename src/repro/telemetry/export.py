"""Exporters: Chrome ``trace_event`` JSON, flat metrics JSON, and a
human ``--stats``-style text report.

The Chrome format is the JSON Array/Object format consumed by
``chrome://tracing`` and Perfetto: a top-level ``traceEvents`` list
whose entries carry ``name``/``ph``/``ts`` (microseconds)/``pid``/
``tid``.  Duration events export as *complete* events (``ph: "X"`` with
``dur``); everything else as thread-scoped instants (``ph: "i"``).
Gauge histories export as counter events (``ph: "C"``) so swap rate,
cumulative compile seconds, and IC hit rate render as counter tracks
over the same timeline in Perfetto.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.core import Telemetry
from repro.telemetry.events import EVENT_CATEGORIES

#: Synthetic ids — JxVM is single-process, single-thread.
TRACE_PID = 1
TRACE_TID = 1


def to_chrome_trace(telemetry: Telemetry,
                    process_name: str = "JxVM") -> dict[str, Any]:
    """The retained events as a Chrome-trace dict (JSON Object format)."""
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": "vm"},
        },
    ]
    for event in telemetry.bus.events():
        ts_us = event.ts * 1e6
        entry: dict[str, Any] = {
            "name": event.name,
            "cat": EVENT_CATEGORIES.get(event.name, "vm"),
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": dict(event.args),
        }
        if event.dur is not None:
            # Complete event: ts is the start, dur the extent.
            dur_us = event.dur * 1e6
            entry["ph"] = "X"
            entry["ts"] = ts_us - dur_us
            entry["dur"] = dur_us
        else:
            entry["ph"] = "i"
            entry["ts"] = ts_us
            entry["s"] = "t"
        trace_events.append(entry)
    # Counter tracks: replay each gauge's bounded history as "C" events.
    # Gauge samples carry raw perf_counter timestamps; rebase them onto
    # the event-bus epoch so they share the events' time axis.  Samples
    # taken before the bus existed clamp to 0, non-numeric gauges skip.
    epoch = telemetry.bus.epoch
    for name, gauge in sorted(telemetry.metrics.gauges.items()):
        for sample_ts, value in gauge.history:
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            trace_events.append({
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": max(0.0, (sample_ts - epoch) * 1e6),
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": {"value": value},
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "emitted": telemetry.bus.total_emitted,
            "dropped": telemetry.bus.dropped,
        },
    }


def write_chrome_trace(telemetry: Telemetry, path: str,
                       process_name: str = "JxVM") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(telemetry, process_name), handle)


def to_metrics_json(telemetry: Telemetry) -> dict[str, Any]:
    """Flat JSON dump: counters, gauges, histograms, event totals."""
    return telemetry.summary()


def format_text_report(telemetry: Telemetry,
                       title: str = "JxVM telemetry") -> str:
    """The human report ``jx stats`` prints."""
    summary = telemetry.summary()
    lines = [f"== {title} =="]
    ev = summary["events"]
    lines.append(
        f"events: {ev['total']} emitted, {ev['retained']} retained, "
        f"{ev['dropped']} dropped (capacity {ev['capacity']})"
    )
    for name, count in ev["by_name"].items():
        lines.append(f"  {name:24s} {count:>10d}")
    if summary["counters"]:
        lines.append("counters:")
        for name, value in summary["counters"].items():
            lines.append(f"  {name:40s} {value:>12d}")
    if summary["gauges"]:
        lines.append("gauges:")
        for name, value in summary["gauges"].items():
            lines.append(f"  {name:40s} {value!r:>12s}")
    if summary["histograms"]:
        lines.append("histograms:")
        for name, h in summary["histograms"].items():
            lines.append(
                f"  {name}: count={h['count']} sum={h['sum']:.6g} "
                f"mean={h['mean']:.6g} min={_fmt(h['min'])} "
                f"max={_fmt(h['max'])}"
            )
            populated = [
                b for b in h["buckets"] if b["count"]
            ]
            if populated:
                lines.append(
                    "    "
                    + " | ".join(
                        f"<={_fmt(b['le'])}: {b['count']}"
                        if b["le"] is not None
                        else f"+Inf: {b['count']}"
                        for b in populated
                    )
                )
    return "\n".join(lines)


def format_opt_pass_report(telemetry: Telemetry) -> str:
    """The optimizer-pass budget report ``jx stats`` appends.

    Ranks every ``opt.pass_seconds.*`` histogram by total seconds spent,
    so the most expensive pass tops the table, and lists how many runs
    the ``OptConfig.budget_gate`` estimate skipped.  Empty string when
    the run never invoked the optimizer.
    """
    summary = telemetry.summary()
    prefix = "opt.pass_seconds."
    rows = [
        (name[len(prefix):], h["count"], h["sum"], h["mean"])
        for name, h in summary["histograms"].items()
        if name.startswith(prefix)
    ]
    if not rows:
        return ""
    rows.sort(key=lambda r: r[2], reverse=True)
    total = sum(r[2] for r in rows) or 1.0
    lines = ["opt pass budget (ranked by total seconds):"]
    lines.append(
        f"  {'pass':12s} {'runs':>6s} {'total s':>11s} "
        f"{'mean s':>11s} {'share':>7s}"
    )
    for name, count, total_s, mean in rows:
        lines.append(
            f"  {name:12s} {count:>6d} {total_s:>11.6f} "
            f"{mean:>11.6f} {total_s / total:>6.1%}"
        )
    gated = {
        name.rsplit(".", 1)[1]: value
        for name, value in summary["counters"].items()
        if name.startswith("opt.pass_gated.")
    }
    if gated:
        lines.append(
            "  budget-gated (skipped as provably no-op): "
            + ", ".join(f"{k}={v}" for k, v in sorted(gated.items()))
        )
    return "\n".join(lines)


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}"
