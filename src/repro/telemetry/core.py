"""The Telemetry facade one VM (or harness run) carries around.

Overhead contract (verified by ``benchmarks/test_telemetry_overhead.py``):

* a VM constructed without telemetry holds ``vm.telemetry is None``;
  every instrumentation site is guarded by ``tel is not None`` (and
  ``tel.enabled``) *before any event or argument is constructed*, so
  the disabled cost is one attribute load + identity check on paths
  that are already function-call heavy — and literally zero on the
  interpreter's inner dispatch loop, which is never touched;
* the module-level :data:`enabled` flag is a global kill switch: when
  False, ``Telemetry.enabled`` reads False everywhere, newly built
  mutation hooks compile to their uninstrumented fast forms, and
  :func:`maybe` returns None so shared code paths skip telemetry
  wholesale without consulting per-VM state.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any

from repro.telemetry.events import DEFAULT_CAPACITY, EventBus
from repro.telemetry.metrics import Metrics, TIME_BUCKETS

#: Module-level master switch, checked before event construction.
enabled: bool = True


def set_enabled(flag: bool) -> None:
    """Flip the module-level master switch (affects every Telemetry)."""
    global enabled
    enabled = flag


def maybe(telemetry: "Telemetry | None") -> "Telemetry | None":
    """``telemetry`` if it is active, else None — the one-line guard
    shared code paths use: ``tel = maybe(vm.telemetry)``."""
    if telemetry is not None and enabled and telemetry._enabled:
        return telemetry
    return None


class Telemetry:
    """Event bus + metrics registry + the per-instance enabled flag."""

    def __init__(self, enabled: bool = True,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._enabled = enabled
        self.bus = EventBus(capacity)
        self.metrics = Metrics()

    @property
    def enabled(self) -> bool:
        """True only when both this instance and the module switch are on."""
        return self._enabled and enabled

    @enabled.setter
    def enabled(self, flag: bool) -> None:
        self._enabled = flag

    # ------------------------------------------------------------------
    # Emission shorthands (callers must have checked ``enabled``)
    # ------------------------------------------------------------------

    def emit(self, name: str, dur: float | None = None,
             **args: Any) -> None:
        self.bus.emit(name, dur=dur, **args)

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def observe(self, name: str, value: float,
                bounds: tuple = TIME_BUCKETS) -> None:
        self.metrics.histogram(name, bounds).observe(value)

    @contextmanager
    def span(self, name: str, **args: Any):
        """Time a block; emits one duration event when it exits."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.bus.emit(
                name, dur=time.perf_counter() - start, **args
            )

    # ------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Metrics snapshot plus event totals (the flat JSON dump)."""
        out = self.metrics.snapshot()
        out["events"] = {
            "total": self.bus.total_emitted,
            "retained": len(self.bus.events()),
            "dropped": self.bus.dropped,
            "capacity": self.bus.capacity,
            "by_name": self.bus.counts_by_name(),
        }
        return out
