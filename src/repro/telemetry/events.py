"""Typed, timestamped VM events with ring-buffer retention.

The event taxonomy mirrors the runtime actions the paper's evaluation
counts (TIB swaps, recompilations, specialized-version installs) plus
the adaptive-system transitions that explain *when* they happen:

========================= ==================================================
name                      emitted when
========================= ==================================================
``tib_swap``              an object's TIB pointer moves to a special TIB
``deopt_to_class_tib``    an object's TIB pointer moves back to the class TIB
``swap_coalesced``        a deferred hook skipped a redundant re-evaluation
``hook_fired``            any state-field / constructor-exit hook runs
``state_reeval``          a class's static-side state match is re-applied
``tier_promote``          the adaptive system promotes a method's tier
``osr_enter``             a running interpreter frame transfers into
                          compiled code at a hot loop back-edge
``osr_deopt``             a specialized compiled frame bails back to the
                          interpreter after a TIB swap invalidated it
``compile_begin``         the optimizing compiler starts one version
``compile_end``           ... and finishes it (carries the duration)
``special_install``       a specialized version is installed for a hot state
``special_shared``        a hot state reuses another state's compiled body
``memo_fill``             a pure specialized call computed and cached a result
``memo_hit``              a pure specialized call replayed a cached result
``online_activate``       the online controller derives and attaches a plan
``opt_pass``              one optimizer pass ran (carries the duration)
``vm_run``                one entry-point execution (carries the duration)
``quicken``               the quickener rewrote the program's bytecode
``ic_miss``               a quickened call site's inline cache missed and
                          re-resolved (carries the receiver's TIB kind)
``plan_downgraded``       the attach-time specialization-safety audit
                          detached a class's plan (carries the findings)
``shape_transition``      a TIB swap physically migrated an object's
                          packed storage (pinned tail dropped/restored)
``field_unboxed``         layout installation removed a proven
                          lifetime-constant field from instances
========================= ==================================================

Events live in a bounded ring buffer (:class:`EventBus`); when full, the
oldest events are dropped and counted, so telemetry memory is O(capacity)
no matter how long the VM runs.
"""

from __future__ import annotations

import time
from collections import Counter as _TallyCounter
from collections import deque
from typing import Any, Callable

#: The canonical event names (emitters may add more; exporters do not
#: care, but the README taxonomy table documents this set).
EVENT_NAMES = (
    "tib_swap",
    "deopt_to_class_tib",
    "swap_coalesced",
    "hook_fired",
    "state_reeval",
    "tier_promote",
    "osr_enter",
    "osr_deopt",
    "compile_begin",
    "compile_end",
    "special_install",
    "special_shared",
    "memo_fill",
    "memo_hit",
    "online_activate",
    "opt_pass",
    "vm_run",
    "quicken",
    "ic_miss",
    "plan_downgraded",
    "shape_transition",
    "field_unboxed",
)

#: Event name -> Chrome-trace category, for trace-viewer filtering.
EVENT_CATEGORIES = {
    "tib_swap": "mutation",
    "deopt_to_class_tib": "mutation",
    "swap_coalesced": "mutation",
    "hook_fired": "mutation",
    "state_reeval": "mutation",
    "special_install": "mutation",
    "special_shared": "mutation",
    "memo_fill": "vm",
    "memo_hit": "vm",
    "online_activate": "mutation",
    "tier_promote": "adaptive",
    "osr_enter": "adaptive",
    "osr_deopt": "adaptive",
    "compile_begin": "compile",
    "compile_end": "compile",
    "opt_pass": "compile",
    "vm_run": "vm",
    "quicken": "dispatch",
    "ic_miss": "dispatch",
    "plan_downgraded": "analysis",
    "shape_transition": "heap",
    "field_unboxed": "heap",
}

#: Default ring-buffer capacity.
DEFAULT_CAPACITY = 65536


class Event:
    """One timestamped VM event.

    ``ts`` is seconds since the owning bus's epoch; ``dur`` (when not
    None) is the event's duration in seconds — exporters render such
    events as Chrome-trace *complete* ("X") events, instants otherwise.
    """

    __slots__ = ("name", "seq", "ts", "dur", "args")

    def __init__(self, name: str, seq: int, ts: float,
                 dur: float | None = None,
                 args: dict[str, Any] | None = None) -> None:
        self.name = name
        self.seq = seq
        self.ts = ts
        self.dur = dur
        self.args = args or {}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Event #{self.seq} {self.name} ts={self.ts:.6f} {self.args}>"


class EventBus:
    """Ordered event sink with bounded retention and subscribers.

    Emission order is total (monotonic ``seq``); the ring buffer keeps
    the most recent ``capacity`` events and counts the rest in
    ``dropped``.  Per-name tallies survive truncation so counters stay
    exact even when the raw events age out.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.epoch = time.perf_counter()
        self.dropped = 0
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._tally: _TallyCounter[str] = _TallyCounter()
        self._subscribers: list[Callable[[Event], None]] = []

    def emit(self, name: str, dur: float | None = None,
             **args: Any) -> Event:
        """Record one event; returns it (mostly for tests)."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        event = Event(
            name, self._seq, time.perf_counter() - self.epoch, dur, args
        )
        self._seq += 1
        self._events.append(event)
        self._tally[name] += 1
        for fn in self._subscribers:
            fn(event)
        return event

    def subscribe(self, fn: Callable[[Event], None]) -> None:
        """Call ``fn(event)`` on every subsequent emit (live sinks)."""
        self._subscribers.append(fn)

    # ------------------------------------------------------------------

    def events(self, name: str | None = None) -> list[Event]:
        """The retained events (oldest first), optionally by name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def count(self, name: str) -> int:
        """Total emissions of ``name``, including truncated ones."""
        return self._tally[name]

    @property
    def total_emitted(self) -> int:
        return self._seq

    def counts_by_name(self) -> dict[str, int]:
        return dict(sorted(self._tally.items()))

    def clear(self) -> None:
        self._events.clear()
        self._tally.clear()
        self.dropped = 0
