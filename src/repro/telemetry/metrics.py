"""Counters, gauges, and fixed-bucket histograms.

The registry is deliberately dumb: metrics are named slots created on
first use, cheap enough to update from VM hot paths *when telemetry is
enabled* (the enabled check happens at the instrumentation site, before
any metric lookup — see the overhead contract in DESIGN.md).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Iterable

#: Samples retained per gauge for counter-track export; when full the
#: oldest samples drop, so gauge memory stays O(capacity) like events.
GAUGE_HISTORY_CAPACITY = 1024

#: Default histogram bucket upper bounds for second-valued timings:
#: 1µs .. 10s, decade-spaced with a 3x midpoint (fine enough for both
#: TIB-swap latencies and opt2 compile times).
TIME_BUCKETS = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
    1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

#: Default buckets for count-valued observations (ticks, sizes).
COUNT_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins).

    Every ``set`` also appends a ``(perf_counter, value)`` sample to a
    bounded history, so exporters can replay the gauge as a counter
    track over the run's timeline (Chrome-trace ``"C"`` events — see
    ``repro.telemetry.export.to_chrome_trace``).  Timestamps are raw
    :func:`time.perf_counter` readings; the exporter rebases them onto
    the event bus epoch.
    """

    __slots__ = ("name", "value", "history")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = 0
        self.history: deque[tuple[float, Any]] = deque(
            maxlen=GAUGE_HISTORY_CAPACITY
        )

    def set(self, value: Any) -> None:
        self.value = value
        self.history.append((time.perf_counter(), value))


class Histogram:
    """Fixed-bucket histogram: counts of observations <= each bound,
    plus an overflow bucket and running sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Iterable[float] = TIME_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        #: One count per bound, plus the trailing +Inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.bucket_counts)
            ] + [{"le": None, "count": self.bucket_counts[-1]}],
        }


class Metrics:
    """Named registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  bounds: Iterable[float] = TIME_BUCKETS) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable dump of every metric."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self.histograms.items())
            },
        }
