"""repro.telemetry — VM-wide tracing & metrics for JxVM.

The measurement substrate behind the paper's quantitative story (TIB
swaps, recompilations, code-size / compile-time overheads): a typed
:class:`EventBus` with ring-buffer retention, a :class:`Metrics`
registry (counters / gauges / fixed-bucket histograms), and exporters
for Chrome ``trace_event`` JSON, a flat metrics JSON, and a human text
report.

Quick tour::

    from repro import VM, compile_source
    from repro.telemetry import Telemetry, format_text_report

    vm = VM(compile_source(src), telemetry=Telemetry())
    vm.run()
    print(format_text_report(vm.telemetry))

or from the shell: ``jx trace salarydb -o trace.json`` (load the file
in chrome://tracing or https://ui.perfetto.dev) and ``jx stats salarydb``.

Zero-overhead-when-disabled: instrumentation sites check the telemetry
handle (and its ``enabled`` flag) before constructing any event; see
the contract note in DESIGN.md and the module docstring of
:mod:`repro.telemetry.core`.
"""

from repro.telemetry.core import Telemetry, maybe, set_enabled
from repro.telemetry.events import (
    DEFAULT_CAPACITY,
    EVENT_CATEGORIES,
    EVENT_NAMES,
    Event,
    EventBus,
)
from repro.telemetry.export import (
    format_opt_pass_report,
    format_text_report,
    to_chrome_trace,
    to_metrics_json,
    write_chrome_trace,
)
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_CAPACITY",
    "EVENT_CATEGORIES",
    "EVENT_NAMES",
    "TIME_BUCKETS",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "Metrics",
    "Telemetry",
    "format_opt_pass_report",
    "format_text_report",
    "maybe",
    "set_enabled",
    "to_chrome_trace",
    "to_metrics_json",
    "write_chrome_trace",
]
