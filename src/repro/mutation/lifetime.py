"""Object lifetime constant analysis (paper §4, Fig. 8).

Finds instance state fields that are, for all objects reachable through
a given private reference field, compile-time constants:

1. **Constructor assignment analysis** — record ``<field, ctor, value>``
   tuples for fields of mutable classes assigned literal constants in
   constructors, and verify no non-constructor code ever assigns them.
2. **Private reference field analysis** — for each private field ``g``
   in another class ``D`` whose every assignment is ``new M(...)``
   through one specific constructor: prove ``D`` never modifies the
   candidate fields and that ``g`` never escapes ``D`` (never stored to
   another field/array, never passed as a call argument — receiver
   position excepted — never returned).

The surviving fields are object lifetime constants for ``g``: any
method invoked with ``g`` as receiver may be inlined with them bound
(paper §5's specialization inlining).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.classfile import (
    CONSTRUCTOR_NAME,
    MethodInfo,
    ProgramUnit,
)
from repro.bytecode.instructions import Instr
from repro.mutation.plan import LifetimeConstInfo
from repro.mutation.stacksim import StackEvent, SymValue, walk_method


def _field_key(unit: ProgramUnit, cls_name: str, field_name: str) -> str:
    finfo = unit.lookup_field(cls_name, field_name)
    if finfo is None:
        return f"{cls_name}.{field_name}"
    return f"{finfo.declaring_class}.{finfo.name}"


# ---------------------------------------------------------------------------
# Step 1: constructor-assigned constants
# ---------------------------------------------------------------------------

class _CtorAssignCollector(StackEvent):
    def __init__(self, unit: ProgramUnit) -> None:
        self.unit = unit
        #: field key -> constant value (last assignment wins)
        self.constants: dict[str, object] = {}
        #: field keys assigned non-constants or via non-this receivers
        self.disqualified: set[str] = set()

    def on_putfield(self, index, instr, receiver, value) -> None:
        cls_name, field_name = instr.arg
        key = _field_key(self.unit, cls_name, field_name)
        if receiver.kind != ("this",):
            self.disqualified.add(key)
            return
        if value.kind[0] == "const":
            self.constants[key] = value.kind[1]
        else:
            self.disqualified.add(key)


def ctor_constant_fields(
    unit: ProgramUnit, class_name: str
) -> dict[str, dict[str, object]]:
    """``ctor key -> {field key: constant}`` for one class's constructors."""
    cls = unit.classes.get(class_name)
    if cls is None:
        return {}
    out: dict[str, dict[str, object]] = {}
    for key, method in cls.methods.items():
        if not method.is_constructor:
            continue
        collector = _CtorAssignCollector(unit)
        walk_method(method, collector, unit=unit)
        constants = {
            fk: v
            for fk, v in collector.constants.items()
            if fk not in collector.disqualified
        }
        out[key] = constants
    return out


def fields_assigned_outside_ctors(
    unit: ProgramUnit, class_name: str
) -> set[str]:
    """Field keys of ``class_name``'s hierarchy written by any
    non-constructor method anywhere in the program (or by another
    class's constructor)."""
    written: set[str] = set()
    for method in unit.all_methods():
        if method.is_abstract or not method.code:
            continue
        is_own_ctor = (
            method.is_constructor and method.declaring_class == class_name
        )
        if is_own_ctor:
            continue
        for instr in method.code:
            if instr.op.name == "PUTFIELD":
                cls_name, field_name = instr.arg
                written.add(_field_key(unit, cls_name, field_name))
    return written


# ---------------------------------------------------------------------------
# Step 2: private reference field + escape analysis
# ---------------------------------------------------------------------------

@dataclass
class _RefFieldFacts:
    """Per private-reference-field facts gathered from its declaring
    class's code."""

    assignments: list[tuple[str, str]] = field(default_factory=list)
    #: ctor keys seen in `new` assignments: (class, ctor key)
    escaped: bool = False
    modified_fields: set[str] = field(default_factory=set)


class _RefFieldCollector(StackEvent):
    """Walks one method of class D, updating facts for D's candidate
    private reference fields."""

    def __init__(
        self,
        unit: ProgramUnit,
        facts: dict[str, _RefFieldFacts],
        g_locals: dict[str, set[int]],
    ) -> None:
        self.unit = unit
        self.facts = facts
        self.g_locals = g_locals
        self.grew = False

    def _g_keys_of(self, value: SymValue) -> list[str]:
        """Candidate field keys this value is a direct load of."""
        kind = value.kind
        if kind[0] == "fieldload" and kind[1] in self.facts:
            return [kind[1]]
        if kind[0] == "local":
            return [
                key
                for key, locals_ in self.g_locals.items()
                if kind[1] in locals_
            ]
        return []

    def on_local_store(self, index, instr, local, value) -> None:
        for key in self._g_keys_of(value):
            if local not in self.g_locals[key]:
                self.g_locals[key].add(local)
                self.grew = True

    def on_putfield(self, index, instr, receiver, value) -> None:
        cls_name, field_name = instr.arg
        key = _field_key(self.unit, cls_name, field_name)
        # Record modifications of *any* field (checked against olc sets).
        for facts in self.facts.values():
            facts.modified_fields.add(key)
        if key in self.facts:
            if value.kind[0] == "new":
                self.facts[key].assignments.append(
                    (value.kind[1], value.kind[2])
                )
            else:
                self.facts[key].escaped = True  # non-`new` assignment
        # Storing a g value into another field escapes it.
        for gk in self._g_keys_of(value):
            self.facts[gk].escaped = True

    def on_putstatic(self, index, instr, value) -> None:
        for gk in self._g_keys_of(value):
            self.facts[gk].escaped = True

    def on_astore(self, index, instr, value) -> None:
        for gk in self._g_keys_of(value):
            self.facts[gk].escaped = True

    def on_return(self, index, instr, value) -> None:
        for gk in self._g_keys_of(value):
            self.facts[gk].escaped = True

    def on_call(self, index, instr, args) -> None:
        from repro.bytecode.opcodes import Op

        receiver_ok = instr.op in (Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE)
        for pos, arg in enumerate(args):
            if pos == 0 and receiver_ok:
                continue  # calling a method *on* g is the whole point
            for gk in self._g_keys_of(arg):
                self.facts[gk].escaped = True


def _syntactic_ref_facts(
    unit: ProgramUnit, cls, candidates: dict
) -> dict[str, _RefFieldFacts]:
    """The original linear-walk escape collector (kept for differential
    testing against the CFG engine; see ``tests/test_analysis.py``).

    Known blind spot: the walker resets its stack at block leaders, so a
    candidate value that crosses a branch join — e.g. ``g`` below a
    ternary sub-expression in a call's argument list — is anonymized
    and its escape can be missed.  The CFG engine has no such reset.
    """
    facts = {key: _RefFieldFacts() for key in candidates}
    g_locals: dict[str, set[int]] = {key: set() for key in candidates}
    # Fixpoint over g-holding locals (loops can defeat one pass).
    for _ in range(4):
        grew = False
        for method in cls.methods.values():
            if method.is_abstract or not method.code:
                continue
            collector = _RefFieldCollector(unit, facts, g_locals)
            walk_method(method, collector, unit=unit)
            grew = grew or collector.grew
        if not grew:
            break
    return facts


def analyze_lifetime_constants(
    unit: ProgramUnit, mutable_classes: list[str], *, engine: str = "cfg"
) -> dict[str, LifetimeConstInfo]:
    """Run the full Fig. 8 algorithm; returns ref-field key -> info.

    ``engine`` selects the escape analysis backing step 2: ``"cfg"``
    (default) uses the flow-sensitive engine from
    :mod:`repro.analysis.escape`; ``"syntactic"`` keeps the original
    linear-scan collector for cross-checking.
    """
    # Step 1 per mutable class.
    ctor_consts: dict[str, dict[str, dict[str, object]]] = {}
    outside_writes: dict[str, set[str]] = {}
    for m in mutable_classes:
        ctor_consts[m] = ctor_constant_fields(unit, m)
        outside_writes[m] = fields_assigned_outside_ctors(unit, m)

    results: dict[str, LifetimeConstInfo] = {}
    mutable_set = set(mutable_classes)

    for cls in unit.classes.values():
        if cls.is_interface:
            continue
        candidates = {
            f"{cls.name}.{finfo.name}": finfo
            for finfo in cls.fields.values()
            if not finfo.is_static
            and finfo.access == "private"
            and not finfo.type.is_array
            and finfo.type.name in mutable_set
        }
        if not candidates:
            continue
        if engine == "cfg":
            from repro.analysis.escape import analyze_ref_fields

            facts = analyze_ref_fields(unit, cls, set(candidates))
        else:
            facts = _syntactic_ref_facts(unit, cls, candidates)

        for key, finfo in candidates.items():
            f = facts[key]
            if f.escaped or not f.assignments:
                continue
            target_classes = {a[0] for a in f.assignments}
            ctor_keys = {a[1] for a in f.assignments}
            if len(target_classes) != 1 or len(ctor_keys) != 1:
                continue  # must always be `new M(...)` via one constructor
            target = next(iter(target_classes))
            if target != finfo.type.name or target not in mutable_set:
                continue
            ctor_key = next(iter(ctor_keys))
            constants = dict(ctor_consts[target].get(ctor_key, {}))
            # Drop fields modified outside target ctors, or by D itself.
            constants = {
                fk: v
                for fk, v in constants.items()
                if fk not in outside_writes[target]
                and fk not in f.modified_fields
            }
            if not constants:
                continue
            results[key] = LifetimeConstInfo(
                ref_field_key=key,
                target_class=target,
                field_values_by_name={
                    fk.rpartition(".")[2]: v for fk, v in constants.items()
                },
            )
    return results
