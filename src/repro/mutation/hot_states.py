"""Hot-state derivation from value profiles (paper §3.1).

Turns per-class joint value histograms into the hot-state lists that
drive special-TIB creation, in two steps:

1. **Marginal filtering** — a field whose own value distribution has no
   dominant value (e.g. an id counter) can never support a hot state;
   such fields are dropped and the histogram is marginalized onto the
   survivors.  This matches the paper's per-field sampling ("each field
   has a number of values sampled, the frequency of the occurrence of
   each value is recorded") before states are formed.
2. **Joint selection** — a remaining value combination is hot when its
   sample share clears the threshold, with a cap per class (each hot
   state costs one special TIB and one specialized version of every
   mutable method).  The paper observes "surprisingly, many classes
   analyzed have a distinct hot state" — the defaults keep exactly such
   dominant states.
"""

from __future__ import annotations

from collections import Counter

from repro.mutation.plan import HotState, MutationConfig, StateFieldSpec
from repro.profiling.value_profiler import ClassValueProfile


def _specializable_values(values: tuple) -> bool:
    """Only immediate-representable values can be compiled in as
    constants (ints, bools, strings, null)."""
    return all(
        v is None or isinstance(v, (int, bool, str)) for v in values
    )


def _dominant_field_indices(
    histogram: Counter, samples: int, width: int, threshold: float,
    offset: int,
) -> list[int]:
    """Indices (within one tuple part) whose marginal has a value with
    share >= threshold."""
    kept = []
    for i in range(width):
        marginal: Counter = Counter()
        for (inst, stat), count in histogram.items():
            joined = inst + stat
            marginal[joined[offset + i]] += count
        if marginal and max(marginal.values()) / samples >= threshold:
            kept.append(i)
    return kept


def derive_hot_states(
    profile: ClassValueProfile, config: MutationConfig | None = None
) -> tuple[list[StateFieldSpec], list[StateFieldSpec], list[HotState]]:
    """Filter fields by marginal dominance, then select hot states.

    Returns ``(kept instance fields, kept static fields, hot states)``
    with hot-state value tuples index-aligned to the kept field lists.
    """
    config = config or MutationConfig()
    if not profile.samples:
        return [], [], []
    n_inst = len(profile.instance_fields)
    n_stat = len(profile.static_fields)

    keep_inst = _dominant_field_indices(
        profile.histogram, profile.samples, n_inst,
        config.hot_state_share, 0,
    )
    keep_stat = _dominant_field_indices(
        profile.histogram, profile.samples, n_stat,
        config.hot_state_share, n_inst,
    )
    if not keep_inst and not keep_stat:
        return [], [], []

    # Marginalize the joint histogram onto the kept fields.
    reduced: Counter = Counter()
    for (inst, stat), count in profile.histogram.items():
        key = (
            tuple(inst[i] for i in keep_inst),
            tuple(stat[i] for i in keep_stat),
        )
        reduced[key] += count

    shares = sorted(
        (
            (inst, stat, count / profile.samples)
            for (inst, stat), count in reduced.items()
        ),
        key=lambda t: (-t[2], repr(t[:2])),
    )
    out: list[HotState] = []
    for instance_values, static_values, share in shares:
        if share < config.hot_state_share:
            break
        if not _specializable_values(instance_values + static_values):
            continue
        out.append(
            HotState(
                instance_values=instance_values,
                static_values=static_values,
                share=share,
            )
        )
        if len(out) >= config.max_hot_states:
            break
    kept_instance = [profile.instance_fields[i] for i in keep_inst]
    kept_static = [profile.static_fields[i] for i in keep_stat]
    return kept_instance, kept_static, out
