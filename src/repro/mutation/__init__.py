"""Dynamic class hierarchy mutation — the paper's core contribution."""

from repro.mutation.hot_states import derive_hot_states
from repro.mutation.lifetime import (
    analyze_lifetime_constants,
    ctor_constant_fields,
)
from repro.mutation.manager import MutationManager
from repro.mutation.online import OnlineMutationController
from repro.mutation.pipeline import build_mutation_plan
from repro.mutation.plan import (
    HotState,
    LifetimeConstInfo,
    MutableClassPlan,
    MutationConfig,
    MutationPlan,
    StateFieldSpec,
)
from repro.mutation.state_fields import (
    collect_field_usage,
    derive_state_fields,
)

__all__ = [
    "HotState",
    "LifetimeConstInfo",
    "MutableClassPlan",
    "MutationConfig",
    "MutationManager",
    "OnlineMutationController",
    "MutationPlan",
    "StateFieldSpec",
    "analyze_lifetime_constants",
    "build_mutation_plan",
    "collect_field_usage",
    "ctor_constant_fields",
    "derive_hot_states",
    "derive_state_fields",
]
