"""The offline pipeline (paper Fig. 3):

1. identify a list of hot methods               (profiling run #1);
2. derive state fields for hot classes          (EQ1 static analysis);
3. find hot states for hot classes              (profiling run #2);
4. object lifetime constant analysis            (static);
5. assemble the :class:`~repro.mutation.plan.MutationPlan` that is fed
   to the VM at startup.

Profiling runs execute a (typically scaled-down) build of the same
source; the plan references program entities by name, so it applies to
any later VM running that source.
"""

from __future__ import annotations

from typing import Callable

from repro.bytecode.classfile import ProgramUnit
from repro.bytecode.opcodes import Op
from repro.lang import compile_source
from repro.mutation.hot_states import derive_hot_states
from repro.mutation.lifetime import analyze_lifetime_constants
from repro.mutation.plan import (
    MutableClassPlan,
    MutationConfig,
    MutationPlan,
    StateFieldSpec,
)
from repro.mutation.state_fields import derive_state_fields
from repro.profiling.method_profiler import ProfileResult, profile_methods
from repro.profiling.value_profiler import ValueProfiler


def _methods_reading_fields(
    unit: ProgramUnit,
    class_name: str,
    field_keys: set[str],
    has_instance_fields: bool,
) -> list[str]:
    """Keys of methods declared by ``class_name`` that read any of the
    given state fields — the mutation-method candidates (paper §3.2.2:
    "Only the methods declared by a mutable class are candidates").

    Private instance methods are excluded when the class depends on any
    instance field: their ``invokespecial`` dispatch is statically bound
    and cannot reach a special TIB (paper §3.2.3 — they are mutable only
    for classes "solely dependent on static state fields").
    """
    cls = unit.classes[class_name]
    out = []
    for key, method in cls.methods.items():
        if method.is_abstract or method.is_constructor:
            continue
        if (
            method.is_private
            and not method.is_static
            and has_instance_fields
        ):
            continue
        reads = False
        for instr in method.code:
            if instr.op in (Op.GETFIELD, Op.GETSTATIC):
                c, f = instr.arg
                finfo = unit.lookup_field(c, f)
                if (
                    finfo is not None
                    and f"{finfo.declaring_class}.{finfo.name}" in field_keys
                ):
                    reads = True
                    break
        if reads:
            out.append(key)
    return sorted(out)


def build_mutation_plan(
    source: str,
    entry_class: str = "Main",
    entry_method: str = "main",
    config: MutationConfig | None = None,
    seed: int = 42,
    compile_fn: Callable[..., ProgramUnit] | None = None,
) -> MutationPlan:
    """Run the full offline pipeline over ``source``.

    Two instrumented executions are performed (hot methods, then state
    field values); both use fresh compilations of the source since a
    linked unit is owned by its VM.
    """
    config = config or MutationConfig()
    compile_fn = compile_fn or (
        lambda: compile_source(
            source, entry_class=entry_class, entry_method=entry_method
        )
    )

    # Step 1: hot methods.
    unit1 = compile_fn()
    profile: ProfileResult = profile_methods(unit1, seed=seed)
    hotness = profile.hotness_by_method()
    hot_methods = [
        m.qualified_name for m in profile.hot_methods(config.hot_method_share)
    ]
    hot_classes = profile.hot_classes(config.hot_method_share)
    # The stdlib is infrastructure (the paper's boot classpath), not a
    # mutation target.
    from repro.lang import compile_stdlib

    hot_classes -= {c.name for c in compile_stdlib()}

    # Step 2: state fields via EQ1 (on the already-linked unit1).
    state_fields = derive_state_fields(unit1, hot_classes, hotness, config)
    if not state_fields:
        return MutationPlan(config=config, hot_methods=hot_methods)

    # Step 3: hot states via value profiling (fresh unit).
    unit2 = compile_fn()
    candidates = {}
    for cls_name, specs in state_fields.items():
        instance = [s for s in specs if not s.is_static]
        static = [s for s in specs if s.is_static]
        candidates[cls_name] = (instance, static)
    profiler = ValueProfiler(unit2, candidates, seed=seed)
    value_profiles = profiler.run()

    plan = MutationPlan(config=config, hot_methods=hot_methods)
    for cls_name, profile2 in value_profiles.items():
        inst, stat, hot_states = derive_hot_states(profile2, config)
        if not hot_states:
            continue
        keys = {s.key for s in inst} | {s.key for s in stat}
        mutable_methods = _methods_reading_fields(
            unit1, cls_name, keys, has_instance_fields=bool(inst)
        )
        if not mutable_methods:
            continue
        plan.classes[cls_name] = MutableClassPlan(
            class_name=cls_name,
            instance_fields=list(inst),
            static_fields=list(stat),
            hot_states=hot_states,
            mutable_methods=mutable_methods,
        )

    # Step 4: object lifetime constants for the mutable classes.
    if plan.classes:
        plan.lifetime_constants = analyze_lifetime_constants(
            unit1, plan.mutable_class_names
        )
    return plan
