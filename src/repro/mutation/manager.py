"""The online mutation manager — paper §3.2.2's distributed dynamic
class mutation algorithm (Fig. 4 + Fig. 5).

At VM startup (:meth:`MutationManager.attach`):

* each mutable class that depends on at least one **instance** state
  field gets one special TIB per hot state, replicated from the class
  TIB (entries initially alias the class TIB's — lazy compilation is
  preserved);
* every PUTFIELD/PUTSTATIC writing a state field gets a state hook, and
  every constructor of a mutable class gets a constructor-exit hook
  (Fig. 4's patch points);
* mutable-class IMT entries are converted to offset entries so one IMT
  serves the class TIB and all special TIBs (paper §3.2.3);
* mutable methods are flagged for the inliner's trade-off heuristic and
  the plan's lifetime constants are published to the VM.

At runtime:

* **instance state-field writes / constructor exits** re-evaluate the
  object's instance state values and swap its TIB pointer between the
  matching special TIB and the class TIB (Fig. 4, first two clauses);
* **static state-field writes** re-evaluate each dependent class's
  static match and repoint compiled-code pointers: special-TIB entries
  for instance+static classes, class-TIB entries for static-only
  classes, JTOC cells for mutable static methods, and the
  RuntimeMethod's active pointer for private methods of static-only
  classes (Fig. 4, third clause; §3.2.3);
* **opt2 recompilation of a mutable method** (Fig. 5) generates every
  specialized version alongside the general code — with no value
  guards — then re-applies the current static match.

Three refinements over the literal Fig. 4/5:

* **Swap coalescing** (``MutationConfig.coalesce_swaps``): when a
  method writes several state fields of the same object back-to-back,
  all but the last write get a lightweight *deferred* hook that only
  counts the avoided re-evaluation; the last write of the region swaps
  once, from the final field values.  Region legality is decided
  conservatively at hook-installation time (:mod:`.coalesce`): any
  call, branch, or potentially-raising instruction between the writes
  is a barrier, so dispatch never sees a stale TIB.
* **Specialization sharing** (``VMConfig.spec_share``, default on):
  hot states equivalent modulo the state a method actually reads
  (:mod:`repro.opt.eqstate`) share one compiled body, and states
  equivalent modulo the class's whole read union share one special TIB
  — Fig. 10/12's linear code/TIB growth turns sublinear, with
  byte-identical execution.  Independently, ``VMConfig.memo`` wraps
  specialized bodies proven pure in a per-session memo table
  (:mod:`repro.vm.memo`), invalidated by class epoch on every swap.
* **Unified accounting**: every swap path — the class-specialized
  re-evaluation closures, :meth:`MutationManager.reevaluate_object`,
  and the opt2 inline fast path — bumps ``vm.mutation_stats.tib_swaps``
  through :meth:`MutationManager.record_swap` (the inline path bumps
  the same field directly).  ``manager.tib_swaps`` is a read-only alias
  and the ``mutation.tib_swap`` telemetry counter mirrors it in
  instrumented runs, so all three reporters agree.

**Per-session accounting** (``repro.server``): every hook and
re-evaluation closure charges the ``vm`` *it was invoked with*, never a
captured VM.  One manager may serve many sessions sharing a code space
(:class:`repro.server.CodeSpace`); each session owns its own
``mutation_stats``, so two sessions' swap counts can never bleed into
each other.  For a solo :class:`~repro.vm.runtime.VM` the invoking vm
is the owning vm and nothing changes.
"""

from __future__ import annotations

import time
import warnings
from typing import Any

from repro.bytecode.opcodes import CALL_OPS as BYTECODE_CALL_OPS
from repro.bytecode.opcodes import Op
from repro.mutation.plan import HotState, MutableClassPlan, MutationPlan
from repro.opt.eqstate import ir_is_pure, state_reads
from repro.opt.specialize import SpecBindings
from repro.telemetry.core import maybe as _tel_maybe
from repro.vm.imt import ConflictStub, DirectEntry, OffsetEntry
from repro.vm.shapes import pinned_shape, transition as _shape_transition
from repro.vm.tib import TIB

#: Paper §6: "Mutation occurs at opt2."
MUTATION_OPT_LEVEL = 2


class MutableClassRuntime:
    """Link-time resolution of one :class:`MutableClassPlan`."""

    def __init__(self, vm: Any, plan: MutableClassPlan) -> None:
        self.plan = plan
        self.rc = vm.classes[plan.class_name]
        unit = vm.unit
        self.instance_slots = [
            unit.lookup_field(s.declaring_class, s.field_name).slot
            for s in plan.instance_fields
        ]
        self.static_slots = [
            unit.lookup_field(s.declaring_class, s.field_name).slot
            for s in plan.static_fields
        ]
        self.hot_states = list(plan.hot_states)
        #: instance-values tuple -> special TIB (shared by states that
        #: differ only in static values).
        self.tib_by_instance: dict[tuple, TIB] = {}
        #: Current static-side values matched against hot states.
        self.current_static_values: tuple = ()

    @property
    def class_name(self) -> str:
        return self.plan.class_name

    def read_static_values(self, vm: Any) -> tuple:
        return tuple(vm.jtoc.fields[slot] for slot in self.static_slots)

    def read_instance_values(self, obj: Any) -> tuple:
        f = obj.fields
        n = len(f)
        # A pinning shape (repro.vm.shapes) drops tail storage while the
        # object sits in a hot state; truncated slots read through the
        # TIB's pinned table.  With shapes off, ``n`` always covers.
        return tuple(
            f[s] if s < n else obj.tib.shape.pinned[s]
            for s in self.instance_slots
        )

    def states_matching_static(self, static_values: tuple) -> list[HotState]:
        return [
            hs for hs in self.hot_states if hs.static_values == static_values
        ]

    def mutable_rms(self) -> list[Any]:
        out = []
        for key in self.plan.mutable_methods:
            rm = self.rc.own_methods.get(key)
            if rm is not None:
                out.append(rm)
        return out


class MutationManager:
    """Owns all mutation state for one VM."""

    def __init__(self, vm: Any, plan: MutationPlan) -> None:
        self.vm = vm
        self.plan = plan
        self.mcrs: dict[str, MutableClassRuntime] = {}
        self._attached = False
        #: Hook registries, keyed symbolically so cached compiled code
        #: can re-link against this VM's hooks (repro.cache).
        self._instance_hook: Any = None
        self._deferred_hook: Any = None
        self.static_hooks: dict[str, Any] = {}
        self.ctor_hooks: dict[str, Any] = {}
        #: class name -> findings that caused the specialization-safety
        #: audit to downgrade its plan (see :meth:`_audit_hooks`).
        self.downgraded_classes: dict[str, list] = {}

    @property
    def tib_swaps(self) -> int:
        """Total TIB-pointer swaps, both directions — a read-only alias
        of ``vm.mutation_stats.tib_swaps``, the single counter every
        swap path updates (see :meth:`record_swap`)."""
        return self.vm.mutation_stats.tib_swaps

    @property
    def swaps_coalesced(self) -> int:
        """Re-evaluations skipped by swap coalescing (alias of
        ``vm.mutation_stats.swaps_coalesced``)."""
        return self.vm.mutation_stats.swaps_coalesced

    @property
    def special_versions_compiled(self) -> int:
        """Specialized versions actually compiled — a read-only alias of
        ``vm.mutation_stats.specials_compiled``, unified the same way
        swap accounting is: the generate loop bumps the VMStats field,
        the ``mutation.specials_compiled`` telemetry counter mirrors it,
        and this property reports it, so all three agree (and per-session
        numbers stay correct under ``jx serve``)."""
        return self.vm.mutation_stats.specials_compiled

    @property
    def specials_shared(self) -> int:
        """``rm.specials`` entries aliasing an existing body instead of
        compiling (alias of ``vm.mutation_stats.specials_shared``)."""
        return self.vm.mutation_stats.specials_shared

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        vm = self.vm
        for name, class_plan in self.plan.classes.items():
            if name not in vm.classes:
                continue
            mcr = MutableClassRuntime(vm, class_plan)
            self.mcrs[name] = mcr
            self._create_special_tibs(mcr)
            self._mark_mutable_methods(mcr)
            self._convert_imt(mcr)
        self._install_field_hooks()
        if self.plan.config.audit_hooks:
            self._audit_hooks()
        self._install_ctor_hooks()
        self._publish_lifetime_constants()
        vm.adaptive.recompile_listeners.append(self.on_recompiled)
        # Mid-run attach (the online controller) converts IMT entries
        # and installs hooks under live inline caches; flush them so no
        # site keeps a pre-attach target.  A no-op at VM construction
        # (the quickener does not exist yet) and when quickening is off.
        vm.flush_inline_caches()
        tel = _tel_maybe(vm.telemetry)
        if tel is not None:
            tel.metrics.gauge("mutation.mutable_classes").set(
                len(self.mcrs)
            )
            tel.metrics.gauge("mutation.special_tibs").set(
                vm.mutation_stats.special_tibs_created
            )

    def _create_special_tibs(self, mcr: MutableClassRuntime) -> None:
        """One special TIB per hot state; states sharing instance values
        share a TIB (the static side selects the code pointers).  Classes
        depending only on static fields need no special TIB (§3.2.2).

        With ``VMConfig.spec_share``, states equivalent modulo the
        class's state-read union additionally share one TIB: if no
        mutable method can distinguish two instance-value tuples (equal
        projections onto the union of slots any mutable method reads)
        and the two tuples match the same set of hot static values (so
        :meth:`apply_static_state` patches them identically), both map
        to a single TIB object — that is the Fig. 12 TIB-space cost
        turning sublinear in hot-state count.  The merged TIB's
        ``state`` is the first (leader) tuple; all member tuples resolve
        to it through ``tib_by_instance``, so cache pins and re-eval
        tables are unaffected.
        """
        if not mcr.instance_slots:
            return
        union = None
        if getattr(self.vm.config, "spec_share", False):
            union = self._attach_read_union(mcr)
        static_sets: dict[tuple, frozenset] = {}
        if union is not None:
            for hs in mcr.hot_states:
                static_sets.setdefault(hs.instance_values, set()).add(  # type: ignore[attr-defined]
                    hs.static_values
                )
            static_sets = {
                iv: frozenset(s) for iv, s in static_sets.items()
            }
        merged: dict[tuple, TIB] = {}
        for hs in mcr.hot_states:
            iv = hs.instance_values
            if iv in mcr.tib_by_instance:
                continue
            tib = None
            group_key = None
            if union is not None:
                projection = tuple(
                    (slot, type(v).__name__, v)
                    for slot, v in zip(mcr.instance_slots, iv)
                    if slot in union
                )
                group_key = (projection, static_sets[iv])
                tib = merged.get(group_key)
            if tib is None:
                tib = TIB.special_from(mcr.rc.class_tib, state=iv)
                # Pinning layout (repro.vm.shapes): the hot state's shape
                # bakes the class's own state-field values into its
                # pinned tail, so instances entering this TIB drop that
                # storage.  Falls back to the base shape (or None) when
                # the class has no pinnable tail or shapes are off.
                tib.shape = pinned_shape(
                    mcr.rc, iv, dict(zip(mcr.instance_slots, iv))
                )
                self.vm.tib_space.record_special_tib(tib)
                self.vm.mutation_stats.special_tibs_created += 1
                if group_key is not None:
                    merged[group_key] = tib
            else:
                self.vm.mutation_stats.special_tibs_shared += 1
                if tib.shape is not None and tib.shape.is_pinning:
                    # A second instance-value tuple joined this merged
                    # TIB; a pinning shape bakes exactly one tuple's
                    # values into its tail, so demote to the base shape
                    # (full storage, no pinned reads) for correctness.
                    tib.shape = mcr.rc.class_tib.shape
            mcr.tib_by_instance[iv] = tib
            mcr.rc.special_tibs[iv] = tib

    def _attach_read_union(self, mcr: MutableClassRuntime):
        """Union of instance state slots any mutable method of the class
        may read, computed on raw bytecode at attach time (before any IR
        exists); ``None`` is ⊤ — unanalyzable, disabling TIB merging.

        Any call makes the set ⊤: opt2 inlining could pull a callee's
        state reads into a mutable method's body, and bytecode-level
        analysis cannot bound them.  Method bodies (``rm.info.code``)
        are never rewritten in place (quickening builds a separate
        ``quick_code``), so plain GETFIELD is the only instance read at
        this level.  The receiver is deliberately ignored — a read
        through *any* reference of a slot keeps it in the union — which
        over-approximates the per-method this-aliased read sets, so

            TIB merged  =>  every mutable method's body shared,

        and a merged TIB never needs two different code pointers in one
        vtable slot.
        """
        slots = set(mcr.instance_slots)
        unit = self.vm.unit
        union: set[int] = set()
        for rm in mcr.mutable_rms():
            for instr in rm.info.code:
                if instr.op in BYTECODE_CALL_OPS:
                    return None
                if instr.op is Op.GETFIELD:
                    cls_name, field_name = instr.arg
                    finfo = unit.lookup_field(cls_name, field_name)
                    if finfo is None:
                        return None
                    if not finfo.is_static and finfo.slot in slots:
                        union.add(finfo.slot)
        return union

    def _mark_mutable_methods(self, mcr: MutableClassRuntime) -> None:
        for rm in mcr.mutable_rms():
            rm.is_mutable = True
            rm.num_state_fields = mcr.plan.num_state_fields  # type: ignore[attr-defined]

    def _convert_imt(self, mcr: MutableClassRuntime) -> None:
        """Mutable classes dispatch interface calls through TIB offsets so
        special TIBs are honored and one IMT serves them all (§3.2.3)."""
        rc = mcr.rc
        if rc.imt is None:
            return
        for key, slot in rc.imt_slot_of.items():
            offset = rc.vtable_layout[key]
            entry = rc.imt.slots[slot]
            if isinstance(entry, DirectEntry):
                rc.imt.slots[slot] = OffsetEntry(offset)
            elif isinstance(entry, ConflictStub):
                entry.targets[key] = OffsetEntry(offset)

    def _state_field_keys(self) -> tuple[dict[str, list], dict[str, list]]:
        """(instance field key -> interested mcrs,
        static field key -> interested mcrs)."""
        instance: dict[str, list] = {}
        static: dict[str, list] = {}
        for mcr in self.mcrs.values():
            for spec in mcr.plan.instance_fields:
                instance.setdefault(spec.key, []).append(mcr)
            for spec in mcr.plan.static_fields:
                static.setdefault(spec.key, []).append(mcr)
        return instance, static

    def instance_state_hook(self):
        """The shared PUTFIELD state hook (one per manager; it already
        dispatches on the written object's exact class)."""
        if self._instance_hook is None:
            hook = self._make_instance_hook()
            hook.cache_ref = ("instance_hook",)  # type: ignore[attr-defined]
            self._instance_hook = hook
        return self._instance_hook

    def deferred_state_hook(self):
        """The shared hook for coalesced (all-but-last) state writes of
        an update region: counts the avoided re-evaluation and returns.
        The region's final write re-evaluates from the then-current
        field values, so deferral loses nothing."""
        if self._deferred_hook is None:
            hook = self._make_deferred_hook()
            hook.cache_ref = ("deferred_hook",)  # type: ignore[attr-defined]
            self._deferred_hook = hook
        return self._deferred_hook

    def _make_deferred_hook(self):
        tel = self.vm.telemetry

        if tel is None:

            def deferred(vm: Any, obj: Any) -> None:
                vm.mutation_stats.swaps_coalesced += 1

            # opt2 inlines the count so the deferred write costs no call.
            deferred.inline_spec = ("deferred",)  # type: ignore[attr-defined]
            return deferred

        def deferred_tel(vm: Any, obj: Any) -> None:
            vm.mutation_stats.swaps_coalesced += 1
            if tel.enabled:
                tel.count("mutation.swaps_coalesced")
                tel.emit(
                    "swap_coalesced",
                    cls=obj.tib.type_info.name if obj is not None else None,
                )

        return deferred_tel

    def _install_field_hooks(self) -> None:
        instance_keys, static_keys = self._state_field_keys()
        unit = self.vm.unit
        coalesce = self.plan.config.coalesce_swaps
        for method in unit.all_methods():
            if method.is_abstract:
                continue
            hooked_putfields = False
            for instr in method.code:
                if instr.op is Op.PUTFIELD:
                    cls_name, field_name = instr.arg
                    finfo = unit.lookup_field(cls_name, field_name)
                    if finfo is None:
                        self._warn_unresolved(method, cls_name, field_name)
                        continue
                    key = f"{finfo.declaring_class}.{finfo.name}"
                    if key in instance_keys:
                        instr.state_hook = self.instance_state_hook()
                        hooked_putfields = True
                elif instr.op is Op.PUTSTATIC:
                    cls_name, field_name = instr.arg
                    finfo = unit.lookup_field(cls_name, field_name)
                    if finfo is None:
                        self._warn_unresolved(method, cls_name, field_name)
                        continue
                    key = f"{finfo.declaring_class}.{finfo.name}"
                    mcrs = static_keys.get(key)
                    if mcrs:
                        hook = self.static_hooks.get(key)
                        if hook is None:
                            hook = self._make_static_hook(mcrs)
                            hook.cache_ref = (  # type: ignore[attr-defined]
                                "static_hook", key
                            )
                            self.static_hooks[key] = hook
                        instr.state_hook = hook
            if hooked_putfields and coalesce:
                self._coalesce_method(method)

    @staticmethod
    def _warn_unresolved(method: Any, cls_name: str, field_name: str) -> None:
        """An unresolvable field write cannot be a state-field write
        (the plan only names resolvable fields), so skipping the hook is
        safe — but it points at a stale plan or program, so say so."""
        warnings.warn(
            f"mutation: cannot resolve field {cls_name}.{field_name} "
            f"written by {method.key}; no state hook installed",
            RuntimeWarning,
            stacklevel=3,
        )

    def _coalesce_method(self, method: Any) -> None:
        """Replace the re-evaluating hook with the deferred hook on every
        all-but-last write of a provably-safe update region."""
        from repro.mutation.coalesce import deferrable_writes

        deferred = None
        for index in deferrable_writes(method, self._instance_hook):
            if deferred is None:
                deferred = self.deferred_state_hook()
            method.code[index].state_hook = deferred

    def _audit_hooks(self) -> None:
        """Specialization-safety audit (paper-soundness backstop): after
        hook installation, re-prove on the instruction CFG that every
        reachable state-field write of every attached plan carries its
        hook and that every coalesce-deferred hook's barrier-free region
        holds (:func:`repro.analysis.specsafety.audit_attached_plans`).

        The installer establishes this by construction, so a finding
        means an installer/coalescer regression or a hand-patched
        program; either way running specialized code behind an unproven
        hook set is unsound, so the violating class is **downgraded**
        instead: its special TIBs are detached and its objects keep the
        class TIB (correct, merely unspecialized)."""
        from repro.analysis.specsafety import audit_attached_plans

        for name, findings in sorted(audit_attached_plans(self).items()):
            self._downgrade_class(name, findings)
        if getattr(self.vm.config, "tv", False):
            # Translation validation of the shape surface: layouts,
            # pinning shapes, and the plan class's own field sites must
            # be provable, else the plan is downgraded the same way.
            from repro.analysis.tv import attach_findings

            for name in sorted(self.mcrs):
                findings = attach_findings(self, name, self.mcrs[name])
                if findings:
                    self._downgrade_class(name, findings)

    def _downgrade_class(self, name: str, findings: list) -> None:
        mcr = self.mcrs.pop(name, None)
        if mcr is None:
            return
        self.downgraded_classes[name] = list(findings)
        rc = mcr.rc
        rc.special_tibs.clear()
        mcr.tib_by_instance.clear()
        for rm in mcr.mutable_rms():
            rm.is_mutable = False
        # Installed hooks stay on the bytecode (harmless: the shared
        # hooks consult the registries below, which no longer know the
        # class), but the swap machinery is detached.
        hook = self._instance_hook
        if hook is not None:
            hook.reeval_by_class.pop(name, None)
        for static_hook in self.static_hooks.values():
            static_hook.mcrs[:] = [
                m for m in static_hook.mcrs if m is not mcr
            ]
        self.vm.mutation_stats.plans_downgraded += 1
        tel = _tel_maybe(self.vm.telemetry)
        if tel is not None:
            tel.count("analysis.plan_downgraded")
            tel.emit(
                "plan_downgraded",
                cls=name,
                findings=[f.format() for f in findings],
            )

    def _install_ctor_hooks(self) -> None:
        """Fig. 4, first clause: at the end of the constructors of a
        mutable class whose state depends on any instance field.  The
        exact-class check matters: a subclass construction runs this
        constructor via super(), but only exact instances mutate."""
        tel = self.vm.telemetry
        for mcr in self.mcrs.values():
            if not mcr.instance_slots:
                continue
            reeval = self._make_reeval(mcr)
            rc = mcr.rc

            if tel is None:

                def ctor_hook(vm: Any, obj: Any, _rc=rc,
                              _reeval=reeval) -> None:
                    if obj.tib.type_info is _rc:
                        _reeval(vm, obj)

            else:

                def ctor_hook(vm: Any, obj: Any, _rc=rc,
                              _reeval=reeval, _tel=tel) -> None:
                    if obj.tib.type_info is _rc:
                        if _tel.enabled:
                            _tel.count("mutation.hooks_fired")
                            _tel.emit(
                                "hook_fired", kind="ctor_exit",
                                cls=_rc.name,
                            )
                        _reeval(vm, obj)

            spec = getattr(reeval, "inline_spec", None)
            if spec is not None:
                ctor_hook.inline_spec = spec  # type: ignore[attr-defined]
            ctor_hook.cache_ref = (  # type: ignore[attr-defined]
                "ctor_hook", rc.name
            )
            self.ctor_hooks[rc.name] = ctor_hook
            for rm in mcr.rc.own_methods.values():
                if rm.info.is_constructor:
                    rm.ctor_exit_hook = ctor_hook

    def _publish_lifetime_constants(self) -> None:
        unit = self.vm.unit
        published = {}
        for key, info in self.plan.lifetime_constants.items():
            target = info.target_class
            info.field_values = {}
            for fname, value in info.field_values_by_name.items():
                finfo = unit.lookup_field(target, fname)
                if finfo is not None and not finfo.is_static:
                    info.field_values[finfo.slot] = value
            if info.field_values:
                published[key] = info
        self.vm.lifetime_constants = published

    # ------------------------------------------------------------------
    # Fig. 4: actions at state-field assignments
    # ------------------------------------------------------------------

    def _make_instance_hook(self):
        """The generic state-field-write hook (Fig. 4, second clause).

        Dispatches on the object's exact class; single-state-field
        classes (the common case) take a tuple-free fast path — this
        hook runs on every mutable-object allocation, so its cost is the
        mutation technique's main runtime tax.
        """
        reeval_by_class: dict[str, Any] = {}
        for name, mcr in self.mcrs.items():
            if mcr.instance_slots:
                reeval_by_class[name] = self._make_reeval(mcr)
        tel = self.vm.telemetry

        if tel is None:

            def hook(vm: Any, obj: Any) -> None:
                if obj is None:
                    return
                reeval = reeval_by_class.get(obj.tib.type_info.name)
                if reeval is not None:
                    reeval(vm, obj)

            # Exposed (same dict the closure reads) so a plan downgrade
            # can detach one class without rebuilding the hook.
            hook.reeval_by_class = reeval_by_class  # type: ignore[attr-defined]
            return hook

        def hook_tel(vm: Any, obj: Any) -> None:
            if obj is None:
                return
            cls_name = obj.tib.type_info.name
            if tel.enabled:
                tel.count("mutation.hooks_fired")
                tel.emit("hook_fired", kind="putfield", cls=cls_name)
            reeval = reeval_by_class.get(cls_name)
            if reeval is not None:
                reeval(vm, obj)

        hook_tel.reeval_by_class = reeval_by_class  # type: ignore[attr-defined]
        return hook_tel

    def _make_reeval(self, mcr: MutableClassRuntime):
        """Class-specialized TIB re-evaluation closure ``f(vm, obj)``.

        Single-state-field classes (the common case) dispatch on the raw
        field value — no tuple allocation on the per-object-birth path.
        The closure charges the ``vm`` it is invoked with, so sessions
        sharing this manager's code space each keep their own counts.
        """
        if getattr(mcr.rc, "pin_slots", ()):
            return self._make_reeval_migrating(mcr)
        record = self.record_swap
        class_tib = mcr.rc.class_tib
        tel = self.vm.telemetry
        cls_name = mcr.class_name
        memo_on = bool(getattr(self.vm.config, "memo", False))
        if len(mcr.instance_slots) == 1:
            slot = mcr.instance_slots[0]
            table1 = {
                key[0]: tib for key, tib in mcr.tib_by_instance.items()
            }

            if tel is None:
                if memo_on:
                    # Memoizing VMs bump the class's memo epoch on every
                    # swap; the "single_memo" inline_spec keeps the opt2
                    # inline fast path and emits the same bump inline.
                    def reeval1_memo(vm: Any, obj: Any) -> None:
                        tib = table1.get(obj.fields[slot], class_tib)
                        if obj.tib is not tib:
                            obj.tib = tib
                            vm.mutation_stats.tib_swaps += 1
                            vm.memo.bump(cls_name)

                    reeval1_memo.inline_spec = (  # type: ignore[attr-defined]
                        "single_memo", mcr.rc, slot, table1, class_tib
                    )
                    return reeval1_memo

                def reeval1(vm: Any, obj: Any) -> None:
                    tib = table1.get(obj.fields[slot], class_tib)
                    if obj.tib is not tib:
                        obj.tib = tib
                        vm.mutation_stats.tib_swaps += 1

                reeval1.inline_spec = (  # type: ignore[attr-defined]
                    "single", mcr.rc, slot, table1, class_tib
                )
                return reeval1

            # Instrumented variant: timed, event-emitting, and — on
            # purpose — without inline_spec, so opt2 code keeps calling
            # the closure and swaps stay observable.  Memo epochs bump
            # inside record_swap.
            def reeval1_tel(vm: Any, obj: Any) -> None:
                start = time.perf_counter()
                tib = table1.get(obj.fields[slot], class_tib)
                if obj.tib is not tib:
                    obj.tib = tib
                    record(tib is not class_tib, cls_name, start, vm)

            return reeval1_tel
        slots = tuple(mcr.instance_slots)
        table = mcr.tib_by_instance

        if tel is None:
            if memo_on:

                def reeval_memo(vm: Any, obj: Any) -> None:
                    fields = obj.fields
                    tib = table.get(
                        tuple(fields[s] for s in slots), class_tib
                    )
                    if obj.tib is not tib:
                        obj.tib = tib
                        vm.mutation_stats.tib_swaps += 1
                        vm.memo.bump(cls_name)

                return reeval_memo

            def reeval(vm: Any, obj: Any) -> None:
                fields = obj.fields
                tib = table.get(
                    tuple(fields[s] for s in slots), class_tib
                )
                if obj.tib is not tib:
                    obj.tib = tib
                    vm.mutation_stats.tib_swaps += 1

            return reeval

        def reeval_tel(vm: Any, obj: Any) -> None:
            start = time.perf_counter()
            fields = obj.fields
            tib = table.get(
                tuple(fields[s] for s in slots), class_tib
            )
            if obj.tib is not tib:
                obj.tib = tib
                record(tib is not class_tib, cls_name, start, vm)

        return reeval_tel

    def _make_reeval_migrating(self, mcr: MutableClassRuntime):
        """Re-evaluation for classes whose shapes pin state fields
        (``rc.pin_slots`` non-empty, :mod:`repro.vm.shapes`).

        Differences from the fast closures above: state reads are
        guarded (a pinned slot's storage may be dropped), every swap is
        followed by a layout :func:`~repro.vm.shapes.transition`, and —
        deliberately — there is no ``inline_spec``: opt2 code must call
        the closure so storage migrates, exactly like the instrumented
        variants.  All accounting funnels through :meth:`record_swap`.
        """
        record = self.record_swap
        class_tib = mcr.rc.class_tib
        cls_name = mcr.class_name
        table = mcr.tib_by_instance
        read = mcr.read_instance_values

        def reeval_migrating(vm: Any, obj: Any) -> None:
            start = time.perf_counter()
            tib = table.get(read(obj), class_tib)
            old = obj.tib
            if old is not tib:
                obj.tib = tib
                record(tib is not class_tib, cls_name, start, vm)
                _shape_transition(vm, obj, old.shape, tib.shape)

        return reeval_migrating

    def record_swap(self, to_special: bool, cls_name: str,
                    start: float | None = None,
                    vm: Any = None) -> None:
        """The single accounting point for a TIB-pointer swap.

        Bumps ``vm.mutation_stats.tib_swaps`` of the *invoking* vm —
        the session that performed the swap, defaulting to the owning
        vm for solo runs (``manager.tib_swaps`` aliases the owning
        vm's count) — and, in instrumented runs, the
        ``mutation.tib_swap`` counter for *every* swap plus
        ``mutation.deopt_to_class_tib`` for the swap-back subset, with
        the matching directional event.  The uninstrumented closures and
        the opt2 inline fast path bump the same VMStats field directly —
        they exist only when telemetry is off, so the counter and the
        telemetry mirror cannot diverge.
        """
        if vm is None:
            vm = self.vm
        vm.mutation_stats.tib_swaps += 1
        # Invalidate memoized results for the class: a swap means some
        # instance's state changed (repro.vm.memo's epoch guard).  The
        # memo-aware uninstrumented closures bump directly; this covers
        # every path that reaches record_swap.
        memo = getattr(vm, "memo", None)
        if memo is not None:
            memo.bump(cls_name)
        tel = _tel_maybe(vm.telemetry)
        if tel is not None:
            name = "tib_swap" if to_special else "deopt_to_class_tib"
            tel.emit(name, cls=cls_name)
            tel.count("mutation.tib_swap")
            elapsed = time.perf_counter() - tel.bus.epoch
            if elapsed > 0:
                tel.metrics.gauge("mutation.swap_rate").set(
                    vm.mutation_stats.tib_swaps / elapsed
                )
            if not to_special:
                tel.count("mutation.deopt_to_class_tib")
            if start is not None:
                tel.observe(
                    "mutation.swap_seconds", time.perf_counter() - start
                )

    def _make_static_hook(self, mcrs: list[MutableClassRuntime]):
        tel = self.vm.telemetry

        def hook(vm: Any, _obj: Any) -> None:
            if tel is not None and tel.enabled:
                tel.count("mutation.hooks_fired")
                tel.emit(
                    "hook_fired", kind="putstatic",
                    classes=[m.class_name for m in mcrs],
                )
            for mcr in mcrs:
                self.apply_static_state(mcr, vm)

        # Exposed (same list the closure iterates) so a plan downgrade
        # can detach one class without rebuilding the hook.
        hook.mcrs = mcrs  # type: ignore[attr-defined]
        return hook

    def reevaluate_object(self, mcr: MutableClassRuntime, obj: Any,
                          vm: Any = None) -> None:
        """Swap the object's TIB pointer per its instance state values."""
        start = time.perf_counter()
        values = mcr.read_instance_values(obj)
        tib = mcr.tib_by_instance.get(values)
        new_tib = tib if tib is not None else mcr.rc.class_tib
        if obj.tib is not new_tib:
            old = obj.tib
            obj.tib = new_tib
            self.record_swap(
                new_tib is not mcr.rc.class_tib, mcr.class_name, start, vm
            )
            _shape_transition(
                vm if vm is not None else self.vm,
                obj, old.shape, new_tib.shape,
            )

    def apply_static_state(self, mcr: MutableClassRuntime,
                           vm: Any = None) -> None:
        """Fig. 4, third clause (also reused by Fig. 5): repoint compiled
        code according to the current static state-field values.

        Static-state mutation patches *shared* dispatch structures
        (special-TIB entries, class TIBs, JTOC cells), which is exactly
        why classes depending on static state fields are excluded from
        multi-session code spaces (:mod:`repro.server.shareable`); the
        ``vm`` parameter only selects whose JTOC supplies the values.

        Every branch falls back to ``rm.general`` when no special
        matches.  ``rm.general`` is the invariant fallback: the
        installer keeps it pointing at the one valid general compiled
        method, whereas ``rm.compiled`` is *repointed at a special* by
        the static-only private-method branch below — falling back to
        it (as the first two branches once did) risks resurrecting a
        stale special after the class leaves all hot states.  The
        guard at the top makes the two equivalent today (specials imply
        an opt2 recompile, which set both to the same object), so this
        is unification against the latent trap, not a behavior change.
        """
        if vm is None:
            vm = self.vm
        static_values = mcr.read_static_values(vm)
        mcr.current_static_values = static_values
        tel = _tel_maybe(vm.telemetry)
        if tel is not None:
            tel.count("mutation.state_reevals")
            tel.emit(
                "state_reeval",
                cls=mcr.class_name,
                static_values=list(static_values),
            )
        for rm in mcr.mutable_rms():
            if not rm.specials:
                continue
            info = rm.info
            if info.is_static:
                # Static methods: JTOC patching; they can only depend on
                # static fields, so the state key has empty instance part.
                special = rm.specials.get(((), static_values))
                rm.jtoc_cell.compiled = (
                    special if special is not None else rm.general
                )
            elif mcr.instance_slots:
                # Instance+static classes: patch each special TIB.
                # Private instance methods have no TIB slot and cannot be
                # mutated here (paper §3.2.3); the plan builder filters
                # them, and this guard protects hand-written plans.
                if rm.vtable_offset < 0:
                    continue
                for inst_values, tib in mcr.tib_by_instance.items():
                    special = rm.specials.get((inst_values, static_values))
                    tib.entries[rm.vtable_offset] = (
                        special if special is not None else rm.general
                    )
            else:
                # Static-only classes: patch the class TIB itself; all
                # instances share the mutation state (§3.2.2).  Private
                # instance methods swap the invokespecial pointer
                # (§3.2.3: the class TIB itself can be specialized).
                special = rm.specials.get(((), static_values))
                active = special if special is not None else rm.general
                if rm.vtable_offset >= 0:
                    mcr.rc.class_tib.entries[rm.vtable_offset] = active
                else:
                    rm.compiled = active
        # Entries were repointed under unchanged TIB identities — the
        # one case the paper's swap-as-invalidation trick cannot cover —
        # so inline caches must forget their targets explicitly.
        vm.flush_inline_caches()

    # ------------------------------------------------------------------
    # Fig. 5: actions at opt2 recompilation of mutable methods
    # ------------------------------------------------------------------

    def on_recompiled(self, rm: Any, opt_level: int) -> None:
        if opt_level < MUTATION_OPT_LEVEL or not rm.is_mutable:
            return
        mcr = self.mcrs.get(rm.info.declaring_class)
        if mcr is None:
            return
        self.generate_specials(mcr, rm)
        self.apply_static_state(mcr)

    def generate_specials(self, mcr: MutableClassRuntime, rm: Any) -> None:
        """Compile one specialized version per hot state (Fig. 5: "all
        special compiled code ... of this method are generated").

        Two equivalence-modulo-state refinements cut Fig. 10's linear
        special-code growth (:mod:`repro.opt.eqstate`):

        * a hot state binding **none** of the slots this method's body
          reads needs no special at all — ``specialize_ir`` would
          replace zero loads — so its key aliases the fresh general
          body (always; this is a bugfix, not gated);
        * with ``VMConfig.spec_share``, hot states whose projections
          onto the method's read set are equal share **one** compiled
          body under N keys.  Bodies that embed OSR deopt guards are
          TIB-identity-dependent, so their share key includes the pinned
          special TIB — states merged onto one TIB still share, states
          on different TIBs do not.

        Aliased keys bump ``specials_shared`` and contribute nothing to
        ``compile.special_code_bytes``; only fresh compiles bump
        ``specials_compiled`` and the compile-stats bytes.
        """
        vm = self.vm
        info = rm.info
        if (
            not info.is_static
            and rm.vtable_offset < 0
            and mcr.instance_slots
        ):
            return  # unreachable through any special TIB (paper §3.2.3)
        reads = state_reads(
            vm.opt_compiler.spec_ir(rm),
            mcr.instance_slots,
            mcr.static_slots,
        )
        share = bool(getattr(vm.config, "spec_share", False))
        osr_on = bool(getattr(vm.config, "osr", False))
        tv_on = bool(getattr(vm.config, "tv", False))
        if tv_on:
            from repro.analysis.tv import reprove_share
        general = rm.general
        can_alias_general = (
            general is not None
            and general.opt_level == MUTATION_OPT_LEVEL
        )
        shared_bodies: dict[tuple, Any] = {}
        # The bindings each shared body was compiled against, so the
        # validator can re-prove projection equality before any later
        # state aliases it (repro.analysis.tv.reprove_share).
        shared_srcs: dict[tuple, SpecBindings] = {}
        for hs in mcr.hot_states:
            bindings = SpecBindings(label=hs.describe(mcr.plan))
            if not rm.info.is_static:
                bindings.instance = dict(
                    zip(mcr.instance_slots, hs.instance_values)
                )
                # The special TIB this version speculates on; the OSR
                # pass guards mid-frame state writes against it so a
                # running frame that swaps its own receiver deopts
                # instead of finishing on a stale state.
                bindings.tib = mcr.tib_by_instance.get(hs.instance_values)
            bindings.static = dict(
                zip(mcr.static_slots, hs.static_values)
            )
            if rm.info.is_static and not bindings.static:
                continue  # nothing to specialize a static method on
            key = (
                ((), hs.static_values)
                if rm.info.is_static
                else hs.key
            )
            if key in rm.specials:
                continue
            # A guarded body pins the TIB it speculates on, so it can
            # only be shared by states resolving to that same TIB (and
            # never replaced by the unguarded general body).
            guarded = (
                osr_on
                and bindings.tib is not None
                and reads.tib_dependent
            )
            projection = reads.project(bindings.instance, bindings.static)
            alias_general = (
                not guarded
                and can_alias_general
                and projection == ((), ())
            )
            if alias_general and tv_on and not reprove_share(
                vm, rm, reads, None, bindings
            ):
                alias_general = False  # unprovable: compile fresh
            if alias_general:
                # Zero-replacement case: the body reads none of the
                # bound slots, so the "special" would be byte-identical
                # to the general code just compiled.  Alias it.
                rm.specials[key] = general
                self._record_special_shared(rm, bindings, general)
                continue
            if share:
                share_key = (
                    projection,
                    id(bindings.tib) if guarded else None,
                )
                existing = shared_bodies.get(share_key)
                if existing is not None and (
                    not tv_on
                    or reprove_share(
                        vm, rm, reads, shared_srcs[share_key], bindings
                    )
                ):
                    rm.specials[key] = existing
                    self._record_special_shared(rm, bindings, existing)
                    continue
            tel = _tel_maybe(vm.telemetry)
            if tel is not None:
                tel.emit(
                    "compile_begin",
                    method=rm.info.qualified_name,
                    opt_level=MUTATION_OPT_LEVEL,
                    special=True,
                    state=bindings.label,
                )
            start = time.perf_counter()
            special = vm.opt_compiler.compile(
                rm, MUTATION_OPT_LEVEL, bindings=bindings
            )
            seconds = time.perf_counter() - start
            if getattr(vm.config, "memo", False):
                special = self._maybe_memoize(mcr, rm, special, key)
            rm.specials[key] = special
            if share:
                shared_bodies[share_key] = special
                shared_srcs[share_key] = bindings
            vm.mutation_stats.specials_compiled += 1
            vm.compile_stats.record_special(
                seconds, special.code_size_bytes
            )
            if tel is not None:
                tel.emit(
                    "compile_end",
                    dur=seconds,
                    method=rm.info.qualified_name,
                    opt_level=MUTATION_OPT_LEVEL,
                    special=True,
                    state=bindings.label,
                    code_size_bytes=special.code_size_bytes,
                )
                tel.emit(
                    "special_install",
                    method=rm.info.qualified_name,
                    state=bindings.label,
                    code_size_bytes=special.code_size_bytes,
                )
                tel.count("mutation.specials_compiled")
                tel.count(
                    "compile.special_code_bytes",
                    special.code_size_bytes,
                )
                tel.observe("compile.seconds.special", seconds)
                tel.metrics.gauge("vm.compile_seconds").set(
                    vm.compile_stats.total_seconds
                )

    def _record_special_shared(self, rm: Any, bindings: SpecBindings,
                               target: Any) -> None:
        """Account one ``rm.specials`` key aliasing an existing body:
        no compile, no code bytes — just the share counter and, when
        instrumented, the ``special_shared`` event."""
        vm = self.vm
        vm.mutation_stats.specials_shared += 1
        tel = _tel_maybe(vm.telemetry)
        if tel is not None:
            tel.count("mutation.specials_shared")
            tel.emit(
                "special_shared",
                method=rm.info.qualified_name,
                state=bindings.label,
                target=(
                    "general" if target is rm.general
                    else getattr(target, "specialized_state", None)
                ),
            )

    def _maybe_memoize(self, mcr: MutableClassRuntime, rm: Any,
                       special: Any, key: tuple) -> Any:
        """Wrap a freshly compiled special in a memo lookup when its
        body is provably pure (:func:`repro.opt.eqstate.ir_is_pure`);
        otherwise return it unchanged.  Constructors (and anything with
        a constructor-exit hook) are never memoized — the hook is a side
        effect the wrapper must not elide.  Cache-linked specials carry
        no IR, so their purity is unknown and they stay unwrapped."""
        if rm.info.is_constructor or rm.ctor_exit_hook is not None:
            return special
        fn = getattr(special, "ir", None)
        if fn is None or not ir_is_pure(fn):
            return special
        from repro.vm.memo import MemoizedSpecial

        return MemoizedSpecial(
            special, mcr.class_name, rm.info.qualified_name, key
        )

    # ------------------------------------------------------------------

    def describe(self) -> str:
        lines = []
        for name in sorted(self.mcrs):
            mcr = self.mcrs[name]
            lines.append(
                f"{name}: {len(mcr.tib_by_instance)} special TIBs, "
                f"static match {mcr.current_static_values!r}"
            )
            for rm in mcr.mutable_rms():
                lines.append(
                    f"  {rm.info.qualified_name}: "
                    f"{len(rm.specials)} special versions"
                )
        lines.append(
            f"tib swaps: {self.tib_swaps} "
            f"({self.swaps_coalesced} coalesced), "
            f"special versions: {self.special_versions_compiled} "
            f"({self.specials_shared} shared)"
        )
        return "\n".join(lines)
