"""The offline→online contract: mutation plans.

The offline pipeline (profiling + static analysis, paper §3.1) produces
a :class:`MutationPlan`; the VM's mutation manager consumes it at
startup ("the information acquired in step 1 is fed into a Java Virtual
Machine at the startup of the JVM", paper §3).  Plans reference classes,
fields, and methods **by name** so one plan, built against a profiling
VM, applies to any VM running the same source.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any


def _coalesce_default() -> bool:
    """Swap coalescing defaults on; ``JX_COALESCE_SWAPS=0`` restores the
    paper's strict per-write re-evaluation (CI runs tier-1 both ways)."""
    return os.environ.get("JX_COALESCE_SWAPS", "1") != "0"


@dataclass
class MutationConfig:
    """Tunables for the offline analysis (paper EQ1's ``R``, §5's ``k``,
    plus the profiling thresholds)."""

    #: EQ1's R: weight of the assignment-cost term.
    R: float = 1.0
    #: Discount on assignments occurring in constructors/<clinit>: field
    #: initialization costs one TIB swap at object birth (the ctor-exit
    #: hook), not re-specialization churn, so it barely counts against a
    #: field (refinement of the paper's assumption 3).
    ctor_assign_weight: float = 0.1
    #: Minimum EQ1 score for a field to qualify as a state field.
    min_state_score: float = 0.005
    #: A method is hot if its tick share exceeds this fraction.
    hot_method_share: float = 0.005
    #: A joint state is hot if its sample share exceeds this fraction.
    hot_state_share: float = 0.05
    #: Cap on hot states per class (bounds special-TIB count).
    max_hot_states: int = 8
    #: The inline-vs-specialize trade-off constant (paper §5).
    k: int = 0
    #: Field types eligible as state fields (small discrete domains).
    state_field_types: frozenset[str] = frozenset(
        {"int", "boolean", "string"}
    )
    #: Deferred re-evaluation: coalesce consecutive same-object state
    #: writes into one TIB swap at the last write of the region (see
    #: :mod:`repro.mutation.coalesce`).  Off reproduces Fig. 4's strict
    #: per-write behavior for differential testing.
    coalesce_swaps: bool = field(default_factory=_coalesce_default)
    #: Post-installation specialization-safety audit
    #: (:mod:`repro.analysis.specsafety`): re-prove on the instruction
    #: CFG that every reachable state-field write of every attached plan
    #: carries a hook and every deferred hook's region is safe; a class
    #: that fails is *downgraded* (special TIBs detached) rather than
    #: run unsound specialized code.
    audit_hooks: bool = True


@dataclass
class StateFieldSpec:
    """One field selected by the EQ1 analysis."""

    declaring_class: str
    field_name: str
    is_static: bool
    score: float

    @property
    def key(self) -> str:
        return f"{self.declaring_class}.{self.field_name}"


@dataclass
class HotState:
    """One hot combination of state-field values for a class.

    ``instance_values``/``static_values`` are index-aligned with the
    owning :class:`MutableClassPlan`'s field lists.
    """

    instance_values: tuple[Any, ...]
    static_values: tuple[Any, ...]
    share: float = 0.0

    @property
    def key(self) -> tuple:
        return (self.instance_values, self.static_values)

    def describe(self, plan: "MutableClassPlan") -> str:
        parts = [
            f"{spec.field_name}={value!r}"
            for spec, value in zip(
                plan.instance_fields, self.instance_values
            )
        ]
        parts += [
            f"{spec.field_name}={value!r}"
            for spec, value in zip(plan.static_fields, self.static_values)
        ]
        return ", ".join(parts)


@dataclass
class MutableClassPlan:
    """Mutation plan for one mutable class."""

    class_name: str
    instance_fields: list[StateFieldSpec] = field(default_factory=list)
    static_fields: list[StateFieldSpec] = field(default_factory=list)
    hot_states: list[HotState] = field(default_factory=list)
    #: Keys of methods declared by this class that read state fields.
    mutable_methods: list[str] = field(default_factory=list)

    @property
    def num_state_fields(self) -> int:
        return len(self.instance_fields) + len(self.static_fields)

    @property
    def depends_on_instance(self) -> bool:
        return bool(self.instance_fields)

    @property
    def depends_on_static(self) -> bool:
        return bool(self.static_fields)


@dataclass
class LifetimeConstInfo:
    """Object lifetime constants reachable through one private reference
    field (paper §4): all methods invoked with that field as receiver may
    assume these field values."""

    #: "DeclaringClass.fieldName" of the private reference field.
    ref_field_key: str
    #: Exact class of the referenced object.
    target_class: str
    #: Constant-valued fields of the target: field name -> value.
    field_values_by_name: dict[str, Any] = field(default_factory=dict)
    #: Filled at attach time by the manager: field slot -> value.
    field_values: dict[int, Any] = field(default_factory=dict)


@dataclass
class MutationPlan:
    """Everything the online mutation manager needs."""

    classes: dict[str, MutableClassPlan] = field(default_factory=dict)
    lifetime_constants: dict[str, LifetimeConstInfo] = field(
        default_factory=dict
    )
    config: MutationConfig = field(default_factory=MutationConfig)
    #: Hot-method names (informational; also drives Fig. 14 acceleration).
    hot_methods: list[str] = field(default_factory=list)

    @property
    def mutable_class_names(self) -> list[str]:
        return sorted(self.classes)

    def describe(self) -> str:
        lines = []
        for name in self.mutable_class_names:
            plan = self.classes[name]
            lines.append(
                f"class {name}: "
                f"{len(plan.instance_fields)} instance + "
                f"{len(plan.static_fields)} static state fields, "
                f"{len(plan.hot_states)} hot states, "
                f"methods: {', '.join(plan.mutable_methods) or '-'}"
            )
            for hs in plan.hot_states:
                lines.append(
                    f"  state [{hs.describe(plan)}] share={hs.share:.2f}"
                )
        for key, info in sorted(self.lifetime_constants.items()):
            lines.append(
                f"lifetime constants via {key} -> {info.target_class}: "
                + ", ".join(
                    f"{k}={v!r}"
                    for k, v in sorted(info.field_values_by_name.items())
                )
            )
        return "\n".join(lines) or "(empty plan)"
