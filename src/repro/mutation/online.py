"""Online mutation — the paper's stated future work (§9).

    "In future work, we plan to consolidate our tool chain and
    investigate the feasibility of a complete online Java solution.
    We will try to move our offline profiling and static analysis to
    a JVM."

This module implements that single-VM solution: no offline runs, no
plan files.  One :class:`OnlineMutationController` rides along with a
VM and replays the Fig. 3 pipeline *in situ*:

1. **Candidate selection (static, at startup)** — EQ1 runs with a
   static hotness proxy (loop-nesting levels only, since no profile
   exists yet), producing a superset of plausible state fields.  This
   is the "light weight static analysis algorithms" the paper asks for.
2. **Online value profiling** — the candidate fields get recording
   hooks (the same state-hook mechanism the mutation manager uses), so
   the warm-up phase of normal execution doubles as the value-profiling
   run.
3. **Activation** — once enough samples accumulate (or on explicit
   :meth:`OnlineMutationController.activate`), hot states are derived,
   lifetime constants analyzed, and a full
   :class:`~repro.mutation.manager.MutationManager` attaches to the
   *running* VM.  Methods already compiled at opt2 are re-registered so
   their specialized versions generate on their next recompilation; hot
   mutable methods are nudged back onto the promotion ladder so Fig. 5
   fires promptly.

The trade-off mirrors the paper's discussion: activation costs a warm-up
window of hook overhead and some re-specialization compilation, in
exchange for needing no profiling runs at all.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.opcodes import Op
from repro.mutation.hot_states import derive_hot_states
from repro.mutation.lifetime import analyze_lifetime_constants
from repro.mutation.manager import MUTATION_OPT_LEVEL, MutationManager
from repro.mutation.pipeline import _methods_reading_fields
from repro.mutation.plan import (
    MutableClassPlan,
    MutationConfig,
    MutationPlan,
)
from repro.mutation.state_fields import derive_state_fields
from repro.profiling.value_profiler import ClassValueProfile
from repro.telemetry.core import maybe as _tel_maybe


class OnlineMutationController:
    """Runs the offline pipeline inside a live VM.

    Usage::

        vm = VM(compile_source(source))
        controller = OnlineMutationController(vm)
        vm.run()                      # warm-up samples accumulate
        controller.activate()         # derive plan, attach manager
        vm.call_static(...)           # now runs under mutation
    """

    def __init__(
        self,
        vm: Any,
        config: MutationConfig | None = None,
        min_samples: int = 64,
        auto_activate: bool = True,
    ) -> None:
        self.vm = vm
        self.config = config or MutationConfig()
        self.min_samples = min_samples
        self.auto_activate = auto_activate
        self.manager: MutationManager | None = None
        self.plan: MutationPlan | None = None
        self._profiles: dict[str, ClassValueProfile] = {}
        self._instance_slots: dict[str, list[int]] = {}
        self._static_slots: dict[str, list[int]] = {}
        self._candidates = self._select_candidates()
        self._samples = 0
        self._install_recording_hooks()

    # ------------------------------------------------------------------
    # Stage 1: static candidate selection
    # ------------------------------------------------------------------

    def _static_hotness_proxy(self) -> dict[str, float]:
        """Without a profile, every concrete method weighs equally; the
        EQ1 loop-depth terms then carry the whole signal."""
        return {
            m.qualified_name: 1.0
            for m in self.vm.unit.all_methods()
            if not m.is_abstract and m.code
        }

    def _select_candidates(self) -> dict[str, MutableClassPlan]:
        unit = self.vm.unit
        from repro.lang import compile_stdlib

        stdlib_names = {c.name for c in compile_stdlib()}
        classes = {
            name
            for name, cls in unit.classes.items()
            if not cls.is_interface and name not in stdlib_names
        }
        fields = derive_state_fields(
            unit, classes, self._static_hotness_proxy(), self.config
        )
        out: dict[str, MutableClassPlan] = {}
        for cls_name, specs in fields.items():
            inst = [s for s in specs if not s.is_static]
            stat = [s for s in specs if s.is_static]
            profile = ClassValueProfile(
                class_name=cls_name,
                instance_fields=inst,
                static_fields=stat,
            )
            self._profiles[cls_name] = profile
            self._instance_slots[cls_name] = [
                unit.lookup_field(s.declaring_class, s.field_name).slot
                for s in inst
            ]
            self._static_slots[cls_name] = [
                unit.lookup_field(s.declaring_class, s.field_name).slot
                for s in stat
            ]
            out[cls_name] = MutableClassPlan(
                class_name=cls_name,
                instance_fields=inst,
                static_fields=stat,
            )
        return out

    # ------------------------------------------------------------------
    # Stage 2: online value profiling
    # ------------------------------------------------------------------

    def _sample(self, vm: Any, obj: Any) -> None:
        if self.manager is not None:
            return  # already activated; hooks were retargeted anyway
        profile = self._profiles.get(obj.tib.type_info.name)
        if profile is None:
            return
        tel = _tel_maybe(vm.telemetry)
        if tel is not None:
            tel.count("online.samples")
            tel.emit(
                "hook_fired", kind="online_sample",
                cls=profile.class_name,
            )
        name = profile.class_name
        inst = tuple(
            obj.fields[slot] for slot in self._instance_slots[name]
        )
        stat = tuple(
            vm.jtoc.fields[slot] for slot in self._static_slots[name]
        )
        profile.record(inst, stat)
        self._samples += 1
        if self.auto_activate and self._samples >= self.min_samples:
            self.activate()

    def _install_recording_hooks(self) -> None:
        unit = self.vm.unit
        instance_keys = {
            s.key
            for cp in self._candidates.values()
            for s in cp.instance_fields
        }

        def hook(vm: Any, obj: Any) -> None:
            if obj is not None:
                self._sample(vm, obj)

        for method in unit.all_methods():
            if method.is_abstract or method.is_constructor:
                continue
            for instr in method.code:
                if instr.op is Op.PUTFIELD and instr.state_hook is None:
                    cls_name, field_name = instr.arg
                    finfo = unit.lookup_field(cls_name, field_name)
                    key = f"{finfo.declaring_class}.{finfo.name}"
                    if key in instance_keys:
                        instr.state_hook = hook
        for cls_name in self._candidates:
            rc = self.vm.classes.get(cls_name)
            if rc is None:
                continue
            for rm in rc.own_methods.values():
                if rm.info.is_constructor and rm.ctor_exit_hook is None:
                    rm.ctor_exit_hook = hook

    # ------------------------------------------------------------------
    # Stage 3: activation
    # ------------------------------------------------------------------

    @property
    def activated(self) -> bool:
        return self.manager is not None

    def build_plan(self) -> MutationPlan:
        """Derive the plan from the samples gathered so far."""
        unit = self.vm.unit
        plan = MutationPlan(config=self.config)
        for cls_name, profile in self._profiles.items():
            inst, stat, hot_states = derive_hot_states(profile, self.config)
            if not hot_states:
                continue
            keys = {s.key for s in inst} | {s.key for s in stat}
            mutable_methods = _methods_reading_fields(
                unit, cls_name, keys, has_instance_fields=bool(inst)
            )
            if not mutable_methods:
                continue
            plan.classes[cls_name] = MutableClassPlan(
                class_name=cls_name,
                instance_fields=list(inst),
                static_fields=list(stat),
                hot_states=hot_states,
                mutable_methods=mutable_methods,
            )
        if plan.classes:
            plan.lifetime_constants = analyze_lifetime_constants(
                unit, plan.mutable_class_names
            )
        return plan

    def activate(self) -> MutationPlan:
        """Derive the plan and attach a mutation manager to the live VM."""
        if self.manager is not None:
            return self.plan  # type: ignore[return-value]
        self.plan = self.build_plan()
        vm = self.vm
        self.manager = MutationManager(vm, self.plan)
        self.manager.attach()
        vm.mutation_manager = self.manager
        self._retrofit_existing_objects()
        self._respecialize_hot_methods()
        tel = _tel_maybe(vm.telemetry)
        if tel is not None:
            tel.emit(
                "online_activate",
                samples=self._samples,
                candidate_classes=len(self._candidates),
                mutable_classes=len(self.plan.classes),
            )
            tel.metrics.gauge("online.samples_at_activation").set(
                self._samples
            )
        return self.plan

    def _retrofit_existing_objects(self) -> None:
        """Objects allocated before activation hold class-TIB pointers;
        they migrate lazily at their next state-field write or — for the
        common constructor-once pattern — stay on general code, which is
        always correct.  Nothing to do eagerly (the VM does not track
        object instances, same GC constraint as the paper §3.2.2)."""

    def _respecialize_hot_methods(self) -> None:
        """Methods that reached opt2 before activation never saw Fig. 5;
        re-run their recompilation so the special versions generate and
        install immediately."""
        assert self.manager is not None
        vm = self.vm
        for cp in self.plan.classes.values():  # type: ignore[union-attr]
            rc = vm.classes.get(cp.class_name)
            if rc is None:
                continue
            for key in cp.mutable_methods:
                rm = rc.own_methods.get(key)
                if rm is None:
                    continue
                if rm.compiled.opt_level >= MUTATION_OPT_LEVEL:
                    vm.adaptive.recompile(rm, MUTATION_OPT_LEVEL)

    def describe(self) -> str:
        state = "activated" if self.activated else "profiling"
        lines = [
            f"online mutation controller [{state}]: "
            f"{self._samples} samples over "
            f"{len(self._candidates)} candidate classes"
        ]
        if self.plan is not None:
            lines.append(self.plan.describe())
        return "\n".join(lines)
