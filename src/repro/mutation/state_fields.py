"""State-field derivation — the EQ1 static analysis (paper §3.1).

A field is a *state field* of a hot class when its value plausibly
controls the object's behavior.  The paper's assumptions, implemented
here:

1. state fields tend to be used in **branches** (a field load whose
   value taints a conditional-branch condition);
2. the use must occur in a **hot** method to matter;
3. assignments should occur in **cold** code (otherwise knowing the
   state has no stable payoff) — relaxed when every assignment stores
   one identical constant.

Each field's importance is scored by EQ1::

    V = sum_i Li * Hi  -  R * sum_j lj * hj

where ``Li``/``lj`` are loop nesting levels of the use/assignment sites
(biased by +1 so top-level sites in hot methods still count) and
``Hi``/``hj`` are the containing methods' hotness shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.classfile import MethodInfo, ProgramUnit
from repro.bytecode.instructions import Instr
from repro.mutation.plan import MutationConfig, StateFieldSpec
from repro.mutation.stacksim import StackEvent, SymValue, walk_method
from repro.opt.bytecode_cfg import BytecodeCFG


@dataclass
class FieldUsage:
    """Accumulated EQ1 terms for one field."""

    branch_score: float = 0.0
    assign_score: float = 0.0
    assigned_constants: set = field(default_factory=set)
    assigned_nonconstant: bool = False
    use_sites: int = 0
    assign_sites: int = 0

    def score(self, config: MutationConfig) -> float:
        penalty = self.assign_score
        if not self.assigned_nonconstant and len(self.assigned_constants) <= 1:
            # All assignments store one identical constant: the paper's
            # relaxation of assumption 3.
            penalty = 0.0
        return self.branch_score - config.R * penalty


class _Collector(StackEvent):
    """Per-method event collector feeding the usage table."""

    def __init__(
        self,
        usage: dict[str, FieldUsage],
        cfg: BytecodeCFG,
        hotness: float,
        assign_weight: float = 1.0,
    ) -> None:
        self.usage = usage
        self.cfg = cfg
        self.hotness = hotness
        self.assign_weight = assign_weight

    def _depth(self, index: int) -> float:
        return self.cfg.instr_loop_depth(index) + 1.0

    def on_branch(self, index: int, instr: Instr, cond: SymValue) -> None:
        weight = self._depth(index) * self.hotness
        for key in cond.taint:
            entry = self.usage.setdefault(key, FieldUsage())
            entry.branch_score += weight
            entry.use_sites += 1

    def _record_assign(self, index: int, key: str, value: SymValue) -> None:
        entry = self.usage.setdefault(key, FieldUsage())
        entry.assign_score += (
            self._depth(index) * self.hotness * self.assign_weight
        )
        entry.assign_sites += 1
        if value.kind[0] == "const":
            entry.assigned_constants.add(value.kind[1])
        else:
            entry.assigned_nonconstant = True

    def on_putfield(self, index, instr, receiver, value) -> None:
        cls_name, field_name = instr.arg
        self._record_assign(index, f"{cls_name}.{field_name}", value)

    def on_putstatic(self, index, instr, value) -> None:
        cls_name, field_name = instr.arg
        self._record_assign(index, f"{cls_name}.{field_name}", value)


def collect_field_usage(
    unit: ProgramUnit,
    hotness_by_method: dict[str, float],
    config: MutationConfig | None = None,
) -> dict[str, FieldUsage]:
    """Walk every concrete method, accumulating EQ1 terms per field key.

    ``hotness_by_method``: qualified name -> tick share in [0, 1].
    Methods absent from the map are cold (hotness 0) — their branch uses
    contribute nothing but their assignments still penalize with a small
    epsilon so constant-thrashing in cold code isn't free.  Constructor
    assignments are discounted by ``config.ctor_assign_weight``.
    """
    config = config or MutationConfig()
    usage: dict[str, FieldUsage] = {}
    cold_epsilon = 1e-6
    for method in unit.all_methods():
        if method.is_abstract or not method.code:
            continue
        hotness = hotness_by_method.get(
            method.qualified_name, cold_epsilon
        )
        assign_weight = 1.0
        if method.is_constructor or method.name == "<clinit>":
            assign_weight = config.ctor_assign_weight
        cfg = BytecodeCFG(method)
        walk_method(
            method, _Collector(usage, cfg, hotness, assign_weight),
            unit=unit,
        )
    return usage


def _field_key_to_spec(
    unit: ProgramUnit, key: str, score: float
) -> StateFieldSpec | None:
    cls_name, _, field_name = key.rpartition(".")
    finfo = unit.lookup_field(cls_name, field_name)
    if finfo is None:
        return None
    return StateFieldSpec(
        declaring_class=finfo.declaring_class,
        field_name=finfo.name,
        is_static=finfo.is_static,
        score=score,
    )


def derive_state_fields(
    unit: ProgramUnit,
    hot_classes: set[str],
    hotness_by_method: dict[str, float],
    config: MutationConfig | None = None,
) -> dict[str, list[StateFieldSpec]]:
    """EQ1 over the whole program; returns hot class -> state fields.

    A field qualifies for a hot class when it is declared by the class
    or one of its superclasses (paper §3: "The fields can be declared by
    a class itself or a class's parent classes"), scores above the
    threshold, and has a small discrete type.
    """
    config = config or MutationConfig()
    usage = collect_field_usage(unit, hotness_by_method, config)
    specs: dict[str, StateFieldSpec] = {}
    for key, entry in usage.items():
        score = entry.score(config)
        if score < config.min_state_score or entry.use_sites == 0:
            continue
        spec = _field_key_to_spec(unit, key, score)
        if spec is None:
            continue
        finfo = unit.lookup_field(spec.declaring_class, spec.field_name)
        if str(finfo.type) not in config.state_field_types:
            continue
        specs[key] = spec

    out: dict[str, list[StateFieldSpec]] = {}
    for cls_name in sorted(hot_classes):
        fields_for_class = []
        for spec in specs.values():
            if spec.declaring_class in set(unit.supertypes(cls_name)):
                fields_for_class.append(spec)
        if fields_for_class:
            fields_for_class.sort(key=lambda s: (-s.score, s.key))
            out[cls_name] = fields_for_class
    return out
