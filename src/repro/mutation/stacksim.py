"""Abstract stack simulation over bytecode.

A light symbolic executor shared by the offline analyses: it walks one
method linearly, modeling the operand stack with symbolic values, and
resets to unknowns at block boundaries (the analyses only need
intra-block patterns — ``this.f = CONST`` in constructors, field loads
feeding branches, ``new C(...)`` flowing into a putfield).

Symbolic values:

* ``("const", v)`` — a literal;
* ``("this",)`` — local 0 of an instance method;
* ``("local", i)`` — any other local read;
* ``("fieldload", "Cls.name", receiver)`` — a field read;
* ``("new", class_name, ctor_key)`` — a freshly constructed object;
* ``("other",)`` — anything else.

Taint tracking: each value carries the set of field keys that
contributed to it, which the EQ1 analysis uses to credit branch uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import CALL_OPS, OP_INFO, Op
from repro.bytecode.verify import verify_method

OTHER = ("other",)


@dataclass
class SymValue:
    """A symbolic stack value with field-taint."""

    kind: tuple
    taint: frozenset[str] = frozenset()

    @staticmethod
    def other(taint: frozenset[str] = frozenset()) -> "SymValue":
        return SymValue(OTHER, taint)


class StackEvent:
    """Callbacks invoked by the walker; subclass and override."""

    def on_branch(self, index: int, instr: Instr, cond: SymValue) -> None:
        """A conditional branch consuming ``cond``."""

    def on_putfield(
        self, index: int, instr: Instr, receiver: SymValue, value: SymValue
    ) -> None:
        """An instance field store."""

    def on_putstatic(self, index: int, instr: Instr, value: SymValue) -> None:
        """A static field store."""

    def on_call(
        self, index: int, instr: Instr, args: list[SymValue]
    ) -> None:
        """Any call (receiver is args[0] for instance dispatch)."""

    def on_return(self, index: int, instr: Instr, value: SymValue) -> None:
        """A value-returning return."""

    def on_astore(
        self, index: int, instr: Instr, value: SymValue
    ) -> None:
        """An array element store (value operand only)."""

    def on_local_store(
        self, index: int, instr: Instr, local: int, value: SymValue
    ) -> None:
        """A store to a local slot."""


def _call_returns(instr: Instr, unit: Any = None) -> bool:
    """Whether a call-shaped instruction pushes a result.

    Prefers linked resolution state; falls back to signature lookup via
    ``unit`` (the analyses usually run on unlinked programs).
    """
    resolved = instr.resolved
    if isinstance(resolved, tuple):
        return bool(resolved[-1])
    if resolved is not None and hasattr(resolved, "returns"):
        return resolved.returns
    if instr.op is Op.INTRINSIC:
        from repro.vm.intrinsics import INTRINSICS

        return INTRINSICS[instr.arg[0]].returns
    if unit is not None:
        cls_name, key, _ = instr.arg
        target = unit.lookup_method(cls_name, key)
        if target is None:
            target = _iface_lookup(unit, cls_name, key)
        if target is not None:
            return target.return_type.name != "void"
    # Constructors never push; otherwise assume a result.
    _, key, _ = instr.arg
    return not key.startswith("<init>")


def _iface_lookup(unit: Any, iface_name: str, key: str):
    iface = unit.classes.get(iface_name)
    if iface is None:
        return None
    if key in iface.methods:
        return iface.methods[key]
    for sup in iface.interface_names:
        found = _iface_lookup(unit, sup, key)
        if found is not None:
            return found
    return None


def walk_method(
    method: MethodInfo,
    events: StackEvent,
    call_returns: dict[int, bool] | None = None,
    unit: Any = None,
) -> None:
    """Run the abstract walk over ``method``, firing ``events``."""
    code = method.code
    if not code:
        return
    if call_returns is None:
        call_returns = {}
        for i, instr in enumerate(code):
            if instr.op in CALL_OPS or instr.op is Op.INTRINSIC:
                call_returns[i] = _call_returns(instr, unit)
    depths = verify_method(method, call_returns)

    # Block leaders: reset points.
    leaders = {0}
    for i, instr in enumerate(code):
        if instr.op in (Op.JUMP, Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
            leaders.add(instr.arg)
            if i + 1 < len(code):
                leaders.add(i + 1)
        elif instr.op in (Op.RETURN, Op.RETURN_VOID):
            if i + 1 < len(code):
                leaders.add(i + 1)

    is_instance = not method.is_static
    stack: list[SymValue] = []

    for i, instr in enumerate(code):
        if i in leaders:
            stack = [SymValue.other() for _ in range(depths[i])]
        op = instr.op
        if op is Op.CONST:
            stack.append(SymValue(("const", instr.arg)))
        elif op is Op.LOAD:
            if instr.arg == 0 and is_instance:
                stack.append(SymValue(("this",)))
            else:
                stack.append(SymValue(("local", instr.arg)))
        elif op is Op.STORE:
            value = stack.pop()
            events.on_local_store(i, instr, instr.arg, value)
        elif op is Op.GETFIELD:
            receiver = stack.pop()
            cls_name, field_name = instr.arg
            key = f"{cls_name}.{field_name}"
            stack.append(
                SymValue(
                    ("fieldload", key, receiver.kind),
                    receiver.taint | {key},
                )
            )
        elif op is Op.GETSTATIC:
            cls_name, field_name = instr.arg
            key = f"{cls_name}.{field_name}"
            stack.append(SymValue(("fieldload", key, OTHER), frozenset({key})))
        elif op is Op.PUTFIELD:
            value = stack.pop()
            receiver = stack.pop()
            events.on_putfield(i, instr, receiver, value)
        elif op is Op.PUTSTATIC:
            value = stack.pop()
            events.on_putstatic(i, instr, value)
        elif op is Op.NEW:
            stack.append(SymValue(("newraw", instr.arg)))
        elif op in CALL_OPS:
            cls_name, key, argc = instr.arg
            args = stack[-argc:] if argc else []
            if argc:
                del stack[-argc:]
            events.on_call(i, instr, args)
            if op is Op.INVOKESPECIAL and key.startswith("<init>"):
                # Mark the remaining alias of the NEW as constructed.
                if stack and stack[-1].kind[0] == "newraw" and args and (
                    args[0].kind == stack[-1].kind
                    or args[0].kind[0] == "newraw"
                ):
                    stack[-1] = SymValue(("new", cls_name, key))
            if call_returns.get(i, True):
                taint = frozenset().union(*(a.taint for a in args)) if args \
                    else frozenset()
                stack.append(SymValue.other(taint))
        elif op is Op.INTRINSIC:
            name, argc = instr.arg
            args = stack[-argc:] if argc else []
            if argc:
                del stack[-argc:]
            events.on_call(i, instr, args)
            if call_returns.get(i, True):
                taint = frozenset().union(*(a.taint for a in args)) if args \
                    else frozenset()
                stack.append(SymValue.other(taint))
        elif op in (Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE):
            cond = stack.pop()
            events.on_branch(i, instr, cond)
        elif op is Op.JUMP:
            pass
        elif op is Op.RETURN:
            value = stack.pop()
            events.on_return(i, instr, value)
        elif op is Op.RETURN_VOID:
            pass
        elif op is Op.ASTORE:
            value = stack.pop()
            stack.pop()
            stack.pop()
            events.on_astore(i, instr, value)
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        else:
            info = OP_INFO[op]
            pops, pushes = info.pops, info.pushes
            popped = [stack.pop() for _ in range(pops)] if pops else []
            taint = (
                frozenset().union(*(p.taint for p in popped))
                if popped
                else frozenset()
            )
            for _ in range(pushes or 0):
                stack.append(SymValue.other(taint))
