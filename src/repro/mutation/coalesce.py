"""Swap coalescing: deferred TIB re-evaluation for multi-field state
updates (ROADMAP's hook-batching item).

The paper's Fig. 4 hook fires at *every* state-field assignment, so a
method that writes two state fields of the same object back-to-back
swaps the TIB twice — the first swap is immediately overwritten by the
second.  Both Pape et al. (adaptive value-class optimization) and
D'Elia & Demetrescu (OSR à la Carte) defer such code/layout transitions
to region boundaries; we do the same at hook-installation time.

A hooked PUTFIELD ``D`` may be marked **deferred** (its re-evaluation
skipped) when a later hooked PUTFIELD ``W`` in the same method provably
(a) writes the same object and (b) is reached before anything can
observe the object's TIB.  Both are established conservatively:

* ``D`` and ``W`` must target the same receiver local (via the abstract
  stack simulation in :mod:`repro.mutation.stacksim`), with no STORE to
  that local in between — so they dereference the same object, and the
  final write cannot NPE unless the deferred one already did;
* every instruction strictly between them must be in
  :data:`SAFE_BETWEEN` — straight-line, non-raising, no calls and no
  virtual/interface dispatch.  Any branch (forward or backward), call,
  potentially-raising op, or other field store is a **barrier**: the
  deferral region ends and the earlier write keeps its re-evaluating
  hook.  Dispatch is the crux: specialized code is selected through the
  TIB, so no dispatch may happen while the TIB is stale.

Because re-evaluation reads the *current* field values (it is
idempotent and history-free), jumping *into* the middle of a region is
harmless: whichever write executes last still re-evaluates.

Constructor bodies coalesce like any other method; the constructor-exit
hook (Fig. 4, first clause) is never deferred.  PUTSTATIC hooks repoint
compiled code globally and are not coalesced.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.mutation.stacksim import StackEvent, SymValue, walk_method

#: Opcodes allowed strictly between a deferred state write and the
#: region's final write.  Everything here is non-raising, transfers no
#: control, and performs no dispatch — so the stale-TIB window cannot be
#: observed and execution provably reaches the final write.  Notable
#: exclusions: IDIV/IREM (divide by zero), D2I (overflow), GETFIELD /
#: ALOAD / ASTORE / ARRAYLEN / CHECKCAST (null / bounds / cast errors),
#: all calls and branches, and every other PUTFIELD/PUTSTATIC.
SAFE_BETWEEN = frozenset({
    Op.CONST, Op.LOAD, Op.STORE, Op.POP, Op.DUP, Op.SWAP, Op.NOP,
    Op.ADD, Op.SUB, Op.MUL, Op.FDIV, Op.NEG, Op.I2D,
    Op.SHL, Op.SHR, Op.BAND, Op.BOR, Op.BXOR,
    Op.CMP_LT, Op.CMP_LE, Op.CMP_GT, Op.CMP_GE, Op.CMP_EQ, Op.CMP_NE,
    Op.NOT, Op.CONCAT, Op.GETSTATIC, Op.INSTANCEOF,
})


class _ReceiverRecorder(StackEvent):
    """Maps each PUTFIELD carrying ``hook`` to its receiver local."""

    def __init__(self, hook: Any) -> None:
        self.hook = hook
        #: instruction index -> receiver local slot
        self.sites: dict[int, int] = {}

    def on_putfield(
        self, index: int, instr: Instr, receiver: SymValue, value: SymValue
    ) -> None:
        if instr.state_hook is not self.hook:
            return
        kind = receiver.kind
        if kind == ("this",):
            self.sites[index] = 0
        elif kind[0] == "local":
            self.sites[index] = kind[1]
        # Any other receiver shape (fresh allocation, field load, call
        # result) stays un-deferred — and, being a hooked PUTFIELD, also
        # acts as a barrier for its neighbors.


def deferrable_writes(method: MethodInfo, instance_hook: Any) -> list[int]:
    """Indices of hooked PUTFIELDs in ``method`` whose re-evaluation may
    be deferred to a later write of the same region."""
    recorder = _ReceiverRecorder(instance_hook)
    walk_method(method, recorder)
    if len(recorder.sites) < 2:
        return []
    code = method.code
    deferred = []
    ordered = sorted(recorder.sites)
    for d, w in zip(ordered, ordered[1:]):
        if recorder.sites[d] != recorder.sites[w]:
            continue
        if _region_is_safe(code, d, w, recorder.sites[d]):
            deferred.append(d)
    return deferred


def _region_is_safe(
    code: list, start: int, end: int, receiver_local: int
) -> bool:
    for i in range(start + 1, end):
        instr = code[i]
        if instr.op not in SAFE_BETWEEN:
            return False
        if instr.op is Op.STORE and instr.arg == receiver_local:
            return False  # the later write targets a different object
    return True
