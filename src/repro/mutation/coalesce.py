"""Swap coalescing: deferred TIB re-evaluation for multi-field state
updates (ROADMAP's hook-batching item).

The paper's Fig. 4 hook fires at *every* state-field assignment, so a
method that writes two state fields of the same object back-to-back
swaps the TIB twice — the first swap is immediately overwritten by the
second.  Both Pape et al. (adaptive value-class optimization) and
D'Elia & Demetrescu (OSR à la Carte) defer such code/layout transitions
to region boundaries; we do the same at hook-installation time.

A hooked PUTFIELD ``D`` may be marked **deferred** (its re-evaluation
skipped) when every path leaving it provably reaches another hooked
PUTFIELD on the same receiver local before anything can observe the
object's TIB.  "Provably" is a CFG fact from
:func:`repro.analysis.specsafety.must_reach_states`, a backward *must*
dataflow over the instruction CFG:

* only :data:`SAFE_BETWEEN` instructions (straight-line, non-raising,
  no calls, no dispatch) and pure branches may sit on the path — any
  potentially-raising op, call, or other field store is a **barrier**
  that ends the region.  Dispatch is the crux: specialized code is
  selected through the TIB, so no dispatch may happen while the TIB is
  stale;
* a STORE to the receiver local ends the region (the later write would
  target a different object);
* loop back-edges count as leaving the region, so deferral obligations
  are well-founded: two writes in a loop body cannot justify each other
  around the back edge, and the justifying write always has a strictly
  larger index.

Earlier versions treated *any* branch as a barrier (a linear scan over
the instruction array).  The CFG formulation subsumes that: a diamond
whose both arms re-write the field now coalesces, while any path that
actually leaves the region still keeps the re-evaluating hook.  See
DESIGN.md decision 15.

Because re-evaluation reads the *current* field values (it is
idempotent and history-free), jumping *into* the middle of a region is
harmless: whichever write executes last still re-evaluates.

Constructor bodies coalesce like any other method; the constructor-exit
hook (Fig. 4, first clause) is never deferred.  PUTSTATIC hooks repoint
compiled code globally and are not coalesced.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.classfile import MethodInfo
from repro.analysis.specsafety import (
    TIB_TRANSPARENT,
    HookSiteRecorder,
    deferral_is_safe,
    must_reach_states,
)
from repro.mutation.stacksim import walk_method

#: Opcodes allowed inside a deferral region (between a deferred state
#: write and the region's re-evaluating write).  Everything here is
#: non-raising, transfers no control, and performs no dispatch — so the
#: stale-TIB window cannot be observed.  Notable exclusions: IDIV/IREM
#: (divide by zero), D2I (overflow), GETFIELD / ALOAD / ASTORE /
#: ARRAYLEN / CHECKCAST (null / bounds / cast errors), all calls, and
#: every other PUTFIELD/PUTSTATIC.  Alias of the analysis package's
#: single source of truth.
SAFE_BETWEEN = TIB_TRANSPARENT


def deferrable_writes(method: MethodInfo, instance_hook: Any) -> list[int]:
    """Indices of hooked PUTFIELDs in ``method`` whose re-evaluation may
    be deferred to a later write of the same region."""
    recorder = HookSiteRecorder([instance_hook])
    walk_method(method, recorder)
    if len(recorder.sites) < 2:
        return []
    deferred = []
    states_by_local: dict[int, list[bool]] = {}
    for site in sorted(recorder.sites):
        local = recorder.sites[site]
        states = states_by_local.get(local)
        if states is None:
            states = must_reach_states(method, local, recorder.sites)
            states_by_local[local] = states
        if deferral_is_safe(method, site, local, recorder.sites, states):
            deferred.append(site)
    return deferred
