"""SalaryDB — the paper's Figure 2 microbenchmark, verbatim.

An employee database whose ``raise()`` method dispatches on the
``grade`` state field (hot values 0–3).  The paper measures a 31.4%
speedup, "mainly due to branch elimination and dead code elimination";
this is the ceiling case for class mutation.
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register


def source(scale: float = 1.0) -> str:
    iterations = max(1, int(6000 * scale))
    employees = 48
    return f"""
class Employee {{
    double salary;
    Employee() {{ salary = 0.0; }}
    public void raise() {{ }}
}}

class HourlyEmployee extends Employee {{
    double hourlyRate;
    int hoursPerWeek;
    HourlyEmployee(double rate, int hours) {{
        hourlyRate = rate;
        hoursPerWeek = hours;
    }}
    public void raise() {{
        hourlyRate = hourlyRate * 1.005;
        salary = hourlyRate * hoursPerWeek * 52.0;
    }}
}}

class SalaryEmployee extends Employee {{
    private int grade;   // can only be 0 to 3
    SalaryEmployee(int g) {{
        grade = g;
    }}
    public int getGrade() {{ return grade; }}
    public void promote() {{
        if (grade < 3) {{ grade = grade + 1; }}
    }}
    public void raise() {{
        if (grade < 0 || grade > 3) {{ reportError(); }}
        if (grade == 0) {{ salary += 1.0; }}
        else if (grade == 1) {{ salary += 2.0; }}
        else if (grade == 2) {{ salary *= 1.01; }}
        else {{ salary *= 1.02; }}
    }}
    private void reportError() {{
        Sys.print("bad grade");
    }}
}}

class Main {{
    static void main() {{
        Employee[] salEmps = new Employee[{employees}];
        for (int i = 0; i < {employees}; i++) {{
            if (i % 8 == 7) {{
                salEmps[i] = new HourlyEmployee(12.5, 40);
            }} else {{
                salEmps[i] = new SalaryEmployee(i % 4);
            }}
        }}
        for (int i = 0; i < {iterations}; i++) {{
            for (int j = 0; j < salEmps.length; j++) {{
                salEmps[j].raise();
            }}
        }}
        double total = 0.0;
        for (int j = 0; j < salEmps.length; j++) {{
            total += salEmps[j].salary;
        }}
        Sys.print("total=" + total);
    }}
}}
"""


register(
    WorkloadSpec(
        name="salarydb",
        description="Microbenchmark",
        source=source,
        profile_scale=0.05,
        bench_scale=1.0,
        expected_mutable=("SalaryEmployee",),
    )
)
