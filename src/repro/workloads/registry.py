"""Workload registry: the seven benchmark programs of the paper's
Table 1, each exposed as parameterizable Jx source.

Every workload provides two source builds: ``profile`` (scaled down,
used by the offline mutation pipeline) and ``bench`` (the measured
configuration).  Both must execute the same code paths so the plan
built on the profile run applies to the bench run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bytecode.classfile import ProgramUnit
from repro.lang import compile_source


@dataclass
class WorkloadSpec:
    """One benchmark program."""

    name: str
    description: str
    #: source(scale) -> Jx source text; scale in (0, 1] shrinks work.
    source: Callable[[float], str]
    #: Scale used for offline profiling runs.
    profile_scale: float = 0.1
    #: Scale used for measured runs.
    bench_scale: float = 1.0
    #: Entry class/method (main must exist; warehouse workloads also
    #: expose a per-warehouse entry the harness calls repeatedly).
    entry_class: str = "Main"
    entry_method: str = "main"
    #: Optional per-slice entry for throughput-over-time workloads.
    slice_method: str | None = None
    #: Classes the paper's analysis should find mutable (for tests).
    expected_mutable: tuple[str, ...] = ()

    def profile_source(self) -> str:
        return self.source(self.profile_scale)

    def bench_source(self) -> str:
        return self.source(self.bench_scale)

    def compile_bench(self) -> ProgramUnit:
        return compile_source(
            self.bench_source(),
            filename=f"<{self.name}>",
            entry_class=self.entry_class,
            entry_method=self.entry_method,
        )

    def compile_profile(self) -> ProgramUnit:
        return compile_source(
            self.profile_source(),
            filename=f"<{self.name}:profile>",
            entry_class=self.entry_class,
            entry_method=self.entry_method,
        )

    def table1_counts(self) -> tuple[int, int]:
        """(classes, methods) declared by the workload itself (stdlib
        excluded), mirroring the paper's Table 1 columns."""
        unit = compile_source(
            self.source(0.01), include_stdlib=True, verify=False
        )
        stdlib_names = _stdlib_class_names()
        classes = [
            c for name, c in unit.classes.items() if name not in stdlib_names
        ]
        methods = sum(len(c.methods) for c in classes)
        return len(classes), methods


_STDLIB_CACHE: set[str] = set()


def _stdlib_class_names() -> set[str]:
    global _STDLIB_CACHE
    if not _STDLIB_CACHE:
        from repro.lang import compile_stdlib

        _STDLIB_CACHE = {c.name for c in compile_stdlib()}
    return _STDLIB_CACHE


_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate workload {spec.name}")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> list[WorkloadSpec]:
    _ensure_loaded()
    return [spec for _, spec in sorted(_REGISTRY.items())]


#: Paper Table 1 ordering.
PAPER_ORDER = [
    "salarydb",
    "simlogic",
    "csvtoxml",
    "java2xhtml",
    "weka",
    "jbb2000",
    "jbb2005",
]


def paper_workloads() -> list[WorkloadSpec]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in PAPER_ORDER if name in _REGISTRY]


def _ensure_loaded() -> None:
    """Import workload modules so their register() calls run."""
    if _REGISTRY:
        return
    from repro.workloads import (  # noqa: F401
        csvtoxml,
        java2xhtml,
        salarydb,
        simlogic,
        weka,
    )
    from repro.workloads.specjbb import jbb2000, jbb2005  # noqa: F401
