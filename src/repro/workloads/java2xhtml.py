"""Java2XHTML — a Java-source-to-XHTML colorizer (paper §6 uses
Java2XHTML v2.0).

The scanner classifies each character and emits span markup according
to an ``Options`` object (``styleMode``, ``showLineNumbers``,
``tabSize``) — one distinct hot state, exercised per character of the
input, so specializing the classifier against the options pays a small
single-digit speedup as in the paper.
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register

_JAVA_SNIPPET = (
    "public class Example {\\n"
    "    // compute the answer\\n"
    "    static int answer(int x) {\\n"
    "        int total = 0;\\n"
    "        for (int i = 0; i < x; i++) { total += i * 42; }\\n"
    "        return total; /* done */\\n"
    "    }\\n"
    "}\\n"
)


def source(scale: float = 1.0) -> str:
    repeats = max(1, int(2800 * scale))
    return f"""
class Highlighter {{
    private int styleMode;          // 0=plain 1=css-classes 2=inline-styles
    private boolean showLineNumbers;
    private int tabSize;
    int tokens;
    Highlighter(int mode, boolean lineNumbers, int tabs) {{
        styleMode = mode;
        showLineNumbers = lineNumbers;
        tabSize = tabs;
        tokens = 0;
    }}
    private void openSpan(StringBuilder out, string cls) {{
        if (styleMode == 1) {{
            out.append("<span class=\\"" + cls + "\\">");
        }} else if (styleMode == 2) {{
            out.append("<span style=\\"color:#336\\">");
        }}
    }}
    private void closeSpan(StringBuilder out) {{
        if (styleMode == 1 || styleMode == 2) {{
            out.append("</span>");
        }}
    }}
    public int highlight(string src, StringBuilder out) {{
        int n = Sys.len(src);
        int line = 1;
        if (showLineNumbers) {{
            out.append("<ln>" + line + "</ln>");
        }}
        int i = 0;
        while (i < n) {{
            int c = Sys.ordAt(src, i);
            if (c == 10) {{
                line++;
                out.append("<br/>");
                if (showLineNumbers) {{
                    out.append("<ln>" + line + "</ln>");
                }}
                i++;
            }} else if (c == 9) {{
                out.append(Sys.repeat(" ", tabSize));
                i++;
            }} else if (c == 47 && i + 1 < n && Sys.ordAt(src, i + 1) == 47) {{
                int end = i;
                while (end < n && Sys.ordAt(src, end) != 10) {{ end++; }}
                openSpan(out, "comment");
                out.append(Sys.substr(src, i, end));
                closeSpan(out);
                tokens++;
                i = end;
            }} else if (isDigit(c)) {{
                int end = i;
                while (end < n && isDigit(Sys.ordAt(src, end))) {{ end++; }}
                openSpan(out, "number");
                out.append(Sys.substr(src, i, end));
                closeSpan(out);
                tokens++;
                i = end;
            }} else if (isAlpha(c)) {{
                int end = i;
                while (end < n && isAlpha(Sys.ordAt(src, end))) {{ end++; }}
                string word = Sys.substr(src, i, end);
                if (isKeyword(word)) {{
                    openSpan(out, "keyword");
                    out.append(word);
                    closeSpan(out);
                }} else {{
                    out.append(word);
                }}
                tokens++;
                i = end;
            }} else {{
                out.append(Sys.charAt(src, i));
                i++;
            }}
        }}
        return line;
    }}
    private boolean isDigit(int c) {{ return c >= 48 && c <= 57; }}
    private boolean isAlpha(int c) {{
        return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || c == 95;
    }}
    private boolean isKeyword(string w) {{
        return w == "public" || w == "class" || w == "static"
            || w == "int" || w == "for" || w == "return";
    }}
}}

class Main {{
    static void main() {{
        string src = "{_JAVA_SNIPPET}";
        Highlighter hl = new Highlighter(1, true, 4);
        int chars = 0;
        for (int r = 0; r < {repeats}; r++) {{
            StringBuilder out = new StringBuilder();
            int lines = hl.highlight(src, out);
            chars = (chars + out.length() + lines) % 1000000007;
        }}
        Sys.print("tokens=" + hl.tokens + " chars=" + chars);
    }}
}}
"""


register(
    WorkloadSpec(
        name="java2xhtml",
        description="Java to XHTML conversion",
        source=source,
        profile_scale=0.1,
        bench_scale=1.0,
        expected_mutable=("Highlighter",),
    )
)
