"""Weka — a data-mining tool-set workload (paper §6 uses Weka 3.2.3).

Implements an IBk-style k-nearest-neighbour classifier whose distance
kernel dispatches on classifier options (``distanceWeighting``,
``normalize``, ``missingPolicy``) — the classic Weka pattern of option
fields consulted in the innermost loop.  One distinct hot state; the
paper reports a 4.7% speedup.
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register


def source(scale: float = 1.0) -> str:
    train = max(8, int(260 * scale))
    queries = max(4, int(260 * scale))
    attrs = 10
    return f"""
class Dataset {{
    double[] values;   // row-major [instance * attrs + a]
    int[] labels;
    int numInstances;
    int numAttrs;
    Dataset(int instances, int attrs) {{
        numInstances = instances;
        numAttrs = attrs;
        values = new double[instances * attrs];
        labels = new int[instances];
        for (int i = 0; i < instances; i++) {{
            int label = Sys.randInt(3);
            labels[i] = label;
            for (int a = 0; a < attrs; a++) {{
                double center = label * 2.5;
                values[i * attrs + a] = center + Sys.randDouble();
            }}
        }}
    }}
    public double attr(int instance, int a) {{
        return values[instance * numAttrs + a];
    }}
}}

class IBkClassifier {{
    private int distanceWeighting;  // 0=none 1=inverse 2=similarity
    private boolean normalize;
    private int missingPolicy;      // 0=skip 1=max-distance
    Dataset train;
    int k;
    IBkClassifier(Dataset data, int neighbours, int weighting,
                  boolean norm, int missing) {{
        train = data;
        k = neighbours;
        distanceWeighting = weighting;
        normalize = norm;
        missingPolicy = missing;
    }}
    public double distance(double[] query, int instance) {{
        double sum = 0.0;
        int attrs = train.numAttrs;
        for (int a = 0; a < attrs; a++) {{
            double d = query[a] - train.attr(instance, a);
            if (normalize) {{
                d = d / 5.0;
            }}
            if (missingPolicy == 1 && d > 100.0) {{
                d = 100.0;
            }}
            sum += d * d;
        }}
        return sum;
    }}
    private double weightOf(double dist) {{
        if (distanceWeighting == 1) {{
            return 1.0 / (1.0 + dist);
        }} else if (distanceWeighting == 2) {{
            return 1.0 - dist / 1000.0;
        }}
        return 1.0;
    }}
    public int classify(double[] query) {{
        // Track the k best neighbours (k small: selection by repeated max).
        double[] bestDist = new double[k];
        int[] bestLabel = new int[k];
        for (int i = 0; i < k; i++) {{ bestDist[i] = 1000000000.0; }}
        for (int i = 0; i < train.numInstances; i++) {{
            double d = distance(query, i);
            int worst = 0;
            for (int j = 1; j < k; j++) {{
                if (bestDist[j] > bestDist[worst]) {{ worst = j; }}
            }}
            if (d < bestDist[worst]) {{
                bestDist[worst] = d;
                bestLabel[worst] = train.labels[i];
            }}
        }}
        double[] votes = new double[3];
        for (int i = 0; i < k; i++) {{
            votes[bestLabel[i]] += weightOf(bestDist[i]);
        }}
        int best = 0;
        for (int c = 1; c < 3; c++) {{
            if (votes[c] > votes[best]) {{ best = c; }}
        }}
        return best;
    }}
}}

class Main {{
    static void main() {{
        Sys.randSeed(424242);
        Dataset data = new Dataset({train}, {attrs});
        IBkClassifier ibk = new IBkClassifier(data, 5, 1, true, 0);
        int correct = 0;
        for (int q = 0; q < {queries}; q++) {{
            int label = Sys.randInt(3);
            double[] query = new double[{attrs}];
            for (int a = 0; a < {attrs}; a++) {{
                query[a] = label * 2.5 + Sys.randDouble();
            }}
            if (ibk.classify(query) == label) {{ correct++; }}
        }}
        Sys.print("accuracy=" + correct + "/{queries}");
    }}
}}
"""


register(
    WorkloadSpec(
        name="weka",
        description="Data mining algorithm tool set",
        source=source,
        profile_scale=0.2,
        bench_scale=1.0,
        expected_mutable=("IBkClassifier",),
    )
)
