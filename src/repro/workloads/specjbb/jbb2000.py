"""SPECjbb2000-style workload (paper §6/§7).

The classic five-transaction mix.  The paper measures a 4.5% speedup
here: "quite a few classes are mutable and mutation creates a lot of
opportunities for specialization inlining".
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register
from repro.workloads.specjbb.common import JbbParams, jbb_source

PARAMS = JbbParams(
    slice_transactions=4000,
    main_slices=2,
    mix=(44, 43, 4, 4, 5, 0),
    min_lines=5,
    max_lines=10,
    report_depth=0,
)


def source(scale: float = 1.0) -> str:
    return jbb_source(PARAMS, scale)


register(
    WorkloadSpec(
        name="jbb2000",
        description="SPEC Transaction processing benchmark",
        source=source,
        profile_scale=0.1,
        bench_scale=1.0,
        slice_method="runSlice",
        expected_mutable=("Customer", "OrderLine"),
    )
)
