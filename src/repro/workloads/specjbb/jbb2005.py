"""SPECjbb2005-style workload (paper §6/§7).

Same design as the 2000 variant but with the heavyweight
``CustomerReport`` transaction in the mix and heavier orders — the
paper's explanation for the smaller (1.9%) steady-state win: "SPECjbb2005
introduces a new heavyweight transaction called CustomerReport and
spends less time in mutable methods.  In addition, SPECjbb2005 is much
more memory aggressive".
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register
from repro.workloads.specjbb.common import JbbParams, jbb_source

PARAMS = JbbParams(
    slice_transactions=3200,
    main_slices=2,
    mix=(40, 38, 4, 4, 4, 10),
    min_lines=7,
    max_lines=14,
    report_depth=12,
)


def source(scale: float = 1.0) -> str:
    return jbb_source(PARAMS, scale)


register(
    WorkloadSpec(
        name="jbb2005",
        description="SPEC Transaction processing benchmark",
        source=source,
        profile_scale=0.1,
        bench_scale=1.0,
        slice_method="runSlice",
        # Customer drops out here: the CustomerReport-heavy mix "spends
        # less time in mutable methods" (paper §7.1) and applyPayment
        # falls below the hot-method threshold.
        expected_mutable=("OrderLine",),
    )
)
