"""SPECjbb-style transaction-processing workloads (2000 and 2005)."""

from repro.workloads.specjbb.common import JbbParams, jbb_source

__all__ = ["JbbParams", "jbb_source"]
