"""Shared SPECjbb-style transaction-processing infrastructure in Jx.

A faithful-in-structure (scaled-down) port of the SPECjbb warehouse
model: items, stock, districts, customers, orders and order lines, and
the five classic transactions (NewOrder, Payment, OrderStatus,
Delivery, StockLevel), plus the SPECjbb2005-only heavyweight
CustomerReport.

Paper-relevant structure reproduced deliberately:

* ``DisplayScreen`` assigns ``rows = 24, cols = 80`` in its constructor
  and ``DeliveryTransaction`` holds it in a *private* reference field
  assigned once by ``new DisplayScreen()`` — the paper's Figure 7
  object-lifetime-constant example, verbatim;
* ``Customer.creditStatus`` and ``OrderLine.supplyMode`` are state
  fields consulted in hot methods and assigned in cold code — the
  mutable classes;
* transactions dispatch virtually through the ``Transaction`` base and
  reports go through the ``Reportable`` interface (IMT exercise).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class JbbParams:
    """Knobs distinguishing the 2000 and 2005 variants."""

    #: Transactions executed by one ``runSlice()`` call.
    slice_transactions: int = 1200
    #: Slices executed by the standalone ``main()``.
    main_slices: int = 2
    #: Mix: percentages out of 100 for
    #: (new_order, payment, order_status, delivery, stock_level,
    #:  customer_report).
    mix: tuple[int, int, int, int, int, int] = (44, 43, 4, 4, 5, 0)
    #: Order lines range (SPECjbb2005 orders are heavier).
    min_lines: int = 5
    max_lines: int = 10
    #: CustomerReport history depth (2005 only; drives allocation).
    report_depth: int = 0
    items: int = 200
    customers: int = 60
    districts: int = 5
    seed: int = 20060325


def jbb_source(params: JbbParams, scale: float = 1.0) -> str:
    """Build the Jx source for one SPECjbb variant at ``scale``."""
    slice_tx = max(20, int(params.slice_transactions * scale))
    no, pay, os_, dl, sl, cr = params.mix
    t_no = no
    t_pay = t_no + pay
    t_os = t_pay + os_
    t_dl = t_os + dl
    t_sl = t_dl + sl
    assert t_sl + cr == 100, "mix must total 100"
    return f"""
interface Reportable {{
    int reportSize();
}}

class DisplayScreen {{
    int rows;
    int cols;
    DisplayScreen() {{
        rows = 24;
        cols = 80;
    }}
    public int area() {{ return rows * cols; }}
    public int renderLine(StringBuilder out, string text) {{
        int len = Sys.len(text);
        if (len > cols) {{ len = cols; }}
        out.append(Sys.substr(text, 0, len));
        out.append("\\n");
        return len;
    }}
    public int pageCapacity(int lineHeight) {{
        return rows / lineHeight * cols;
    }}
}}

class Item {{
    int id;
    string name;
    double price;
    Item(int i, string n, double p) {{
        id = i;
        name = n;
        price = p;
    }}
}}

class Stock {{
    int itemId;
    int quantity;
    int ytd;
    Stock(int item, int qty) {{
        itemId = item;
        quantity = qty;
        ytd = 0;
    }}
    public void take(int qty) {{
        quantity -= qty;
        ytd += qty;
        if (quantity < 10) {{
            quantity += 91;
        }}
    }}
}}

class Customer implements Reportable {{
    int id;
    string name;
    double balance;
    double ytdPayment;
    int paymentCount;
    private int creditStatus;   // 0 = good credit (dominant), 1 = bad
    private int tier;           // pricing tier 0..3, spread across customers
    Customer(int i, string n, int credit, int t) {{
        id = i;
        name = n;
        balance = 0.0;
        ytdPayment = 0.0;
        paymentCount = 0;
        creditStatus = credit;
        tier = t;
    }}
    public int getCredit() {{ return creditStatus; }}
    public void setCredit(int c) {{ creditStatus = c; }}
    public int getTier() {{ return tier; }}
    public void applyPayment(double amount) {{
        double credited;
        if (tier == 0) {{ credited = amount * 0.98 + 0.10; }}
        else if (tier == 1) {{ credited = amount * 0.985 + 0.05; }}
        else if (tier == 2) {{ credited = amount * 0.99 + 0.02; }}
        else {{ credited = amount * 0.995; }}
        if (creditStatus == 0) {{
            balance -= credited;
            ytdPayment += credited;
        }} else {{
            balance -= credited * 0.9;
            ytdPayment += credited * 0.9;
            paymentCount += 1;
        }}
        paymentCount++;
    }}
    public double charge(double amount) {{
        double charged;
        if (tier == 0) {{ charged = amount * 1.08 + 0.25; }}
        else if (tier == 1) {{ charged = amount * 1.06 + 0.15; }}
        else if (tier == 2) {{ charged = amount * 1.04 + 0.05; }}
        else {{ charged = amount * 1.02; }}
        if (creditStatus != 0) {{ charged = charged * 1.05 + 0.5; }}
        balance += charged;
        return charged;
    }}
    public int reportSize() {{ return paymentCount + 2; }}
}}

class OrderLine {{
    int itemId;
    int quantity;
    double amount;
    private int supplyMode;   // 0 = local (dominant), 1 = remote, 2 = backorder
    OrderLine(int item, int qty, int mode) {{
        itemId = item;
        quantity = qty;
        amount = 0.0;
        supplyMode = mode;
    }}
    public int getSupplyMode() {{ return supplyMode; }}
    public double computeAmount(double price) {{
        double a;
        if (supplyMode == 0) {{ a = price * quantity; }}
        else if (supplyMode == 1) {{ a = price * quantity * 1.1 + 0.5; }}
        else {{ a = price * quantity * 1.25 + 1.5; }}
        if (supplyMode != 0) {{ a = a + 0.35; }}
        double discount = 0.0;
        if (supplyMode == 0 && quantity > 3) {{ discount = a * 0.01; }}
        else if (supplyMode == 1 && quantity > 4) {{ discount = a * 0.005; }}
        amount = a - discount;
        return amount;
    }}
}}

class Order implements Reportable {{
    int id;
    int customerId;
    OrderLine[] lines;
    int lineCount;
    boolean delivered;
    Order(int oid, int cid, int maxLines) {{
        id = oid;
        customerId = cid;
        lines = new OrderLine[maxLines];
        lineCount = 0;
        delivered = false;
    }}
    public void addLine(OrderLine line) {{
        lines[lineCount] = line;
        lineCount++;
    }}
    public double total() {{
        double sum = 0.0;
        for (int i = 0; i < lineCount; i++) {{
            sum += lines[i].amount;
        }}
        return sum;
    }}
    public int reportSize() {{ return lineCount; }}
}}

class District {{
    int id;
    int nextOrderId;
    double ytd;
    District(int i) {{
        id = i;
        nextOrderId = 1;
        ytd = 0.0;
    }}
    public int takeOrderId() {{
        int oid = nextOrderId;
        nextOrderId++;
        return oid;
    }}
}}

class Warehouse {{
    Item[] items;
    Stock[] stocks;
    Customer[] customers;
    District[] districts;
    Vector orders;
    int firstUndelivered;
    Warehouse(int numItems, int numCustomers, int numDistricts) {{
        items = new Item[numItems];
        stocks = new Stock[numItems];
        for (int i = 0; i < numItems; i++) {{
            items[i] = new Item(i, "item" + i, 1.0 + (i % 50) * 0.25);
            stocks[i] = new Stock(i, 100);
        }}
        customers = new Customer[numCustomers];
        for (int c = 0; c < numCustomers; c++) {{
            int credit = 0;
            if (Sys.randInt(100) < 8) {{ credit = 1; }}
            int roll = Sys.randInt(100);
            int tier = 3;
            if (roll < 30) {{ tier = 0; }}
            else if (roll < 60) {{ tier = 1; }}
            else if (roll < 85) {{ tier = 2; }}
            customers[c] = new Customer(c, "cust" + c, credit, tier);
        }}
        districts = new District[numDistricts];
        for (int d = 0; d < numDistricts; d++) {{
            districts[d] = new District(d);
        }}
        orders = new Vector(256);
        firstUndelivered = 0;
    }}
    public Customer randomCustomer() {{
        return customers[Sys.randInt(customers.length)];
    }}
    public District randomDistrict() {{
        return districts[Sys.randInt(districts.length)];
    }}
}}

class Transaction {{
    Warehouse wh;
    Transaction(Warehouse w) {{ wh = w; }}
    public int process() {{ return 0; }}
}}

class NewOrderTransaction extends Transaction {{
    private DisplayScreen screen;
    NewOrderTransaction(Warehouse w) {{
        super(w);
        screen = new DisplayScreen();
    }}
    public int process() {{
        District district = wh.randomDistrict();
        Customer customer = wh.randomCustomer();
        StringBuilder out = new StringBuilder();
        screen.renderLine(out, "NEW ORDER district " + district.id);
        int numLines = {params.min_lines} + Sys.randInt({params.max_lines - params.min_lines + 1});
        Order order = new Order(district.takeOrderId(), customer.id, numLines);
        for (int l = 0; l < numLines; l++) {{
            int itemId = Sys.randInt(wh.items.length);
            int qty = 1 + Sys.randInt(5);
            int roll = Sys.randInt(100);
            int mode = 0;
            if (roll >= 55 && roll < 85) {{ mode = 1; }}
            else if (roll >= 85) {{ mode = 2; }}
            OrderLine line = new OrderLine(itemId, qty, mode);
            line.computeAmount(wh.items[itemId].price);
            wh.stocks[itemId].take(qty);
            order.addLine(line);
        }}
        customer.charge(order.total());
        wh.orders.add(order);
        screen.renderLine(out, "order " + order.id + " total " + order.total());
        return order.lineCount + out.length() % 2;
    }}
}}

class PaymentTransaction extends Transaction {{
    private DisplayScreen screen;
    PaymentTransaction(Warehouse w) {{
        super(w);
        screen = new DisplayScreen();
    }}
    public int process() {{
        Customer customer = wh.randomCustomer();
        District district = wh.randomDistrict();
        double amount = 1.0 + Sys.randInt(5000) * 0.01;
        customer.applyPayment(amount);
        district.ytd += amount;
        StringBuilder out = new StringBuilder();
        screen.renderLine(out, "PAYMENT " + customer.name + " " + amount);
        // Rare credit-status transitions: runtime variant behavior.
        if (Sys.randInt(1000) < 3) {{
            if (customer.getCredit() == 0) {{
                customer.setCredit(1);
            }} else {{
                customer.setCredit(0);
            }}
        }}
        return 1;
    }}
}}

class OrderStatusTransaction extends Transaction {{
    OrderStatusTransaction(Warehouse w) {{ super(w); }}
    public int process() {{
        Customer customer = wh.randomCustomer();
        int n = wh.orders.size();
        for (int i = n - 1; i >= 0; i--) {{
            Order order = (Order) wh.orders.get(i);
            if (order.customerId == customer.id) {{
                return Sys.floorToInt(order.total());
            }}
        }}
        return 0;
    }}
}}

class DeliveryTransaction extends Transaction {{
    private DisplayScreen deliveryScreen;
    DeliveryTransaction(Warehouse w) {{
        super(w);
        deliveryScreen = new DisplayScreen();
    }}
    public int process() {{
        StringBuilder screenOut = new StringBuilder();
        int delivered = 0;
        int budget = deliveryScreen.area();
        int i = wh.firstUndelivered;
        int n = wh.orders.size();
        while (i < n && delivered < 10) {{
            Order order = (Order) wh.orders.get(i);
            if (!order.delivered) {{
                order.delivered = true;
                delivered++;
                budget -= deliveryScreen.renderLine(
                    screenOut, "delivered order " + order.id);
                if (budget <= 0) {{ break; }}
            }}
            i++;
        }}
        wh.firstUndelivered = i;
        return delivered;
    }}
}}

class StockLevelTransaction extends Transaction {{
    StockLevelTransaction(Warehouse w) {{ super(w); }}
    public int process() {{
        int low = 0;
        int threshold = 15 + Sys.randInt(10);
        for (int i = 0; i < wh.stocks.length; i++) {{
            if (wh.stocks[i].quantity < threshold) {{ low++; }}
        }}
        return low;
    }}
}}

class CustomerReportTransaction extends Transaction {{
    CustomerReportTransaction(Warehouse w) {{ super(w); }}
    public int process() {{
        Customer customer = wh.randomCustomer();
        StringBuilder report = new StringBuilder();
        report.append("REPORT for " + customer.name + "\\n");
        int size = 0;
        int depth = {params.report_depth};
        int n = wh.orders.size();
        int seen = 0;
        for (int i = n - 1; i >= 0 && seen < depth; i--) {{
            Order order = (Order) wh.orders.get(i);
            if (order.customerId == customer.id) {{
                Reportable r = order;
                size += r.reportSize();
                report.append("order " + order.id + " total "
                    + order.total() + "\\n");
                for (int l = 0; l < order.lineCount; l++) {{
                    report.append("  line item " + order.lines[l].itemId
                        + " x" + order.lines[l].quantity + "\\n");
                }}
                seen++;
            }}
        }}
        Reportable rc = customer;
        size += rc.reportSize();
        return size + report.length() % 7;
    }}
}}

class Main {{
    static Warehouse warehouse;
    static int checksum = 0;

    static void setup() {{
        if (warehouse == null) {{
            Sys.randSeed({params.seed});
            warehouse = new Warehouse({params.items}, {params.customers}, {params.districts});
        }}
    }}

    static int runSlice() {{
        setup();
        Warehouse w = warehouse;
        int done = 0;
        for (int t = 0; t < {slice_tx}; t++) {{
            int roll = Sys.randInt(100);
            Transaction tx = null;
            if (roll < {t_no}) {{
                tx = new NewOrderTransaction(w);
            }} else if (roll < {t_pay}) {{
                tx = new PaymentTransaction(w);
            }} else if (roll < {t_os}) {{
                tx = new OrderStatusTransaction(w);
            }} else if (roll < {t_dl}) {{
                tx = new DeliveryTransaction(w);
            }} else if (roll < {t_sl}) {{
                tx = new StockLevelTransaction(w);
            }} else {{
                tx = new CustomerReportTransaction(w);
            }}
            checksum = (checksum + tx.process()) % 1000000007;
            done++;
        }}
        // Bound the order log so memory stays proportional to the slice.
        if (w.orders.size() > 4000) {{
            Vector fresh = new Vector(256);
            int n = w.orders.size();
            for (int i = n - 2000; i < n; i++) {{
                fresh.add(w.orders.get(i));
            }}
            w.orders = fresh;
            w.firstUndelivered = 0;
        }}
        return done;
    }}

    static void main() {{
        int total = 0;
        for (int s = 0; s < {params.main_slices}; s++) {{
            total += runSlice();
        }}
        Sys.print("transactions=" + total + " checksum=" + checksum);
    }}
}}
"""
