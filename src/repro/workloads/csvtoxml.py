"""CSVToXML — a CSV-to-XML converter (paper §6 uses csv2xml v1.1).

The converter's per-character scanner dispatches on the parser
configuration (``delimiter`` code, ``quoteMode``, ``trimMode``) — one
distinct hot state (comma + quoting + no trim), matching the paper's
observation that these applications "have one or two distinct mutable
classes that account for most of the computation time".
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register


def source(scale: float = 1.0) -> str:
    rows = max(4, int(420 * scale))
    passes = max(2, int(18 * scale))
    return f"""
class CsvParser {{
    private int delimiter;     // character code of the field separator
    private boolean quoteMode; // honor double-quoted fields
    private int trimMode;      // 0=no trim, 1=left, 2=both
    int fieldsOut;
    CsvParser(int delim, boolean quotes, int trim) {{
        delimiter = delim;
        quoteMode = quotes;
        trimMode = trim;
        fieldsOut = 0;
    }}
    // Parse one line into fields appended as XML <f> elements.
    public void parseLine(string line, StringBuilder out) {{
        int n = Sys.len(line);
        int start = 0;
        boolean inQuotes = false;
        for (int i = 0; i < n; i++) {{
            int c = Sys.ordAt(line, i);
            if (quoteMode && c == 34) {{
                inQuotes = !inQuotes;
            }} else if (c == delimiter && !inQuotes) {{
                emitField(line, start, i, out);
                start = i + 1;
            }}
        }}
        emitField(line, start, n, out);
    }}
    private void emitField(string line, int start, int end, StringBuilder out) {{
        string field = Sys.substr(line, start, end);
        if (trimMode == 1) {{
            field = Sys.trim(field);
        }} else if (trimMode == 2) {{
            field = Sys.trim(Sys.replace(field, "\\t", " "));
        }}
        out.append("<f>");
        out.append(field);
        out.append("</f>");
        fieldsOut++;
    }}
}}

class RowGenerator {{
    int counter;
    RowGenerator() {{ counter = 0; }}
    public string next(int cols) {{
        StringBuilder sb = new StringBuilder();
        for (int c = 0; c < cols; c++) {{
            if (c > 0) {{ sb.append(","); }}
            if (c % 3 == 0) {{
                sb.append("item" + counter);
            }} else if (c % 3 == 1) {{
                sb.append("\\"q" + (counter * 7 % 100) + "\\"");
            }} else {{
                sb.append("" + (counter % 997));
            }}
            counter++;
        }}
        return sb.toString();
    }}
}}

class Main {{
    static void main() {{
        CsvParser parser = new CsvParser(44, true, 0);
        RowGenerator gen = new RowGenerator();
        string[] lines = new string[{rows}];
        for (int r = 0; r < {rows}; r++) {{
            lines[r] = gen.next(12);
        }}
        int totalChars = 0;
        for (int p = 0; p < {passes}; p++) {{
            StringBuilder out = new StringBuilder();
            out.append("<csv>");
            for (int r = 0; r < {rows}; r++) {{
                out.append("<row>");
                parser.parseLine(lines[r], out);
                out.append("</row>");
            }}
            out.append("</csv>");
            totalChars += out.length();
        }}
        Sys.print("fields=" + parser.fieldsOut + " chars=" + totalChars);
    }}
}}
"""


register(
    WorkloadSpec(
        name="csvtoxml",
        description="CSV to XML conversion",
        source=source,
        profile_scale=0.1,
        bench_scale=1.0,
        expected_mutable=("CsvParser",),
    )
)
