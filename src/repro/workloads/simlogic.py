"""SimLogic — a gate-level logic simulator in the spirit of Maurer's
metamorphic-programming example (paper §6 cites [24]).

Each ``Gate`` object evaluates according to its ``kind`` state field
(AND/OR/NOT/XOR/NAND); the netlist is NAND-heavy so the per-kind hot
states dominate and specialization deletes the kind-dispatch chain from
the hottest loop.  The paper notes its C++/assembly inspiration got
bigger wins than a JVM can (§7.1) — the *shape* to reproduce is a solid
speedup second only to SalaryDB.
"""

from __future__ import annotations

from repro.workloads.registry import WorkloadSpec, register


def source(scale: float = 1.0) -> str:
    cycles = max(1, int(2600 * scale))
    gates = 220
    return f"""
class Gate {{
    private int kind;      // 0=AND 1=OR 2=NOT 3=XOR 4=NAND
    int in0;
    int in1;
    int out;
    Gate(int k, int a, int b, int o) {{
        kind = k;
        in0 = a;
        in1 = b;
        out = o;
    }}
    public int getKind() {{ return kind; }}
    public void eval(boolean[] wires) {{
        boolean a = wires[in0];
        boolean b = wires[in1];
        boolean r = false;
        if (kind == 0) {{ r = a && b; }}
        else if (kind == 1) {{ r = a || b; }}
        else if (kind == 2) {{ r = !a; }}
        else if (kind == 3) {{ r = (a && !b) || (!a && b); }}
        else {{ r = !(a && b); }}
        wires[out] = r;
    }}
}}

class Netlist {{
    Gate[] gates;
    boolean[] wires;
    int numInputs;
    Netlist(int numGates, int inputs) {{
        gates = new Gate[numGates];
        wires = new boolean[inputs + numGates];
        numInputs = inputs;
        for (int i = 0; i < numGates; i++) {{
            int kind = pickKind(i);
            int a = Sys.randInt(inputs + i);
            int b = Sys.randInt(inputs + i);
            gates[i] = new Gate(kind, a, b, inputs + i);
        }}
    }}
    private int pickKind(int i) {{
        // NAND-heavy mix: ~60% NAND, rest spread.
        int roll = Sys.randInt(10);
        if (roll < 6) {{ return 4; }}
        if (roll < 7) {{ return 0; }}
        if (roll < 8) {{ return 1; }}
        if (roll < 9) {{ return 2; }}
        return 3;
    }}
    public void setInputs(int pattern) {{
        for (int i = 0; i < numInputs; i++) {{
            wires[i] = ((pattern >> (i % 16)) & 1) == 1;
        }}
    }}
    public void evalAll() {{
        for (int i = 0; i < gates.length; i++) {{
            gates[i].eval(wires);
        }}
    }}
    public int countHigh() {{
        int n = 0;
        for (int i = 0; i < wires.length; i++) {{
            if (wires[i]) {{ n++; }}
        }}
        return n;
    }}
}}

class Main {{
    static void main() {{
        Sys.randSeed(12345);
        Netlist net = new Netlist({gates}, 16);
        int checksum = 0;
        for (int cycle = 0; cycle < {cycles}; cycle++) {{
            net.setInputs(cycle * 2654435761);
            net.evalAll();
            checksum = (checksum + net.countHigh()) % 1000000007;
        }}
        Sys.print("checksum=" + checksum);
    }}
}}
"""


register(
    WorkloadSpec(
        name="simlogic",
        description="Simple Logic Simulator",
        source=source,
        profile_scale=0.05,
        bench_scale=1.0,
        expected_mutable=("Gate",),
    )
)
