"""The paper's seven benchmark programs, written in Jx."""

from repro.workloads.registry import (
    PAPER_ORDER,
    WorkloadSpec,
    all_workloads,
    get_workload,
    paper_workloads,
)

__all__ = [
    "PAPER_ORDER",
    "WorkloadSpec",
    "all_workloads",
    "get_workload",
    "paper_workloads",
]
