"""repro: a reproduction of "Dynamic Class Hierarchy Mutation"
(Su & Lipasti, CGO 2006).

Public API tour:

* :func:`repro.compile_source` — compile Jx source to a linkable program;
* :class:`repro.VM` — execute a program (optionally with a mutation plan);
* :func:`repro.mutation.pipeline.build_mutation_plan` — the offline
  profiling + analysis pipeline producing a
  :class:`~repro.mutation.plan.MutationPlan`;
* :mod:`repro.workloads` — the seven benchmark programs from the paper;
* :mod:`repro.harness` — experiment drivers regenerating every table and
  figure of the paper's evaluation;
* :class:`repro.Telemetry` — VM-wide tracing & metrics
  (``VM(unit, telemetry=Telemetry())``; see :mod:`repro.telemetry`).
"""

from repro.lang import compile_source
from repro.telemetry import Telemetry
from repro.vm import VM, AdaptiveConfig, RunResult, VMConfig

__version__ = "1.2.0"

__all__ = [
    "VM",
    "AdaptiveConfig",
    "RunResult",
    "Telemetry",
    "VMConfig",
    "compile_source",
    "__version__",
]
