"""Offline hot-method profiling — the paper's VTune stage (§3.1).

Runs the program once on the opt0 interpreter (adaptive system off) and
reads each method's sampling counters: invocations and *ticks* (16 per
entry + 1 per loop backedge), a call-frequency × execution-time proxy
equivalent to what the paper extracts from the Intel VTune analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.classfile import ProgramUnit
from repro.vm.adaptive import AdaptiveConfig
from repro.vm.runtime import VM


@dataclass
class MethodProfile:
    """One method's measured hotness."""

    qualified_name: str
    declaring_class: str
    invocations: int
    ticks: int
    share: float = 0.0


@dataclass
class ProfileResult:
    """Ranked hot-method list for one profiling run."""

    methods: list[MethodProfile] = field(default_factory=list)
    total_ticks: int = 0
    output: str = ""

    def hotness_by_method(self) -> dict[str, float]:
        return {m.qualified_name: m.share for m in self.methods}

    def hot_methods(self, min_share: float) -> list[MethodProfile]:
        return [m for m in self.methods if m.share >= min_share]

    def hot_classes(self, min_share: float) -> set[str]:
        return {m.declaring_class for m in self.hot_methods(min_share)}

    def report(self, top: int = 20) -> str:
        lines = [f"{'method':50s} {'calls':>10s} {'ticks':>12s} {'share':>7s}"]
        for m in self.methods[:top]:
            lines.append(
                f"{m.qualified_name:50s} {m.invocations:>10d} "
                f"{m.ticks:>12d} {m.share:>6.1%}"
            )
        return "\n".join(lines)


def profile_methods(unit: ProgramUnit, seed: int = 42) -> ProfileResult:
    """Execute ``unit`` under the profiling configuration and rank methods.

    The unit becomes owned by the profiling VM (link state); callers
    wanting to run it elsewhere must recompile.
    """
    vm = VM(unit, adaptive_config=AdaptiveConfig(enabled=False), seed=seed)
    run = vm.run()
    profiles = []
    total = 0
    for rm in vm.all_runtime_methods():
        samples = rm.samples
        if samples.invocations == 0:
            continue
        profiles.append(
            MethodProfile(
                qualified_name=rm.info.qualified_name,
                declaring_class=rm.info.declaring_class,
                invocations=samples.invocations,
                ticks=samples.ticks,
            )
        )
        total += samples.ticks
    for p in profiles:
        p.share = p.ticks / total if total else 0.0
    profiles.sort(key=lambda p: (-p.ticks, p.qualified_name))
    return ProfileResult(
        methods=profiles, total_ticks=total, output=run.output
    )
