"""State-field value profiling (paper §3.1, second half).

The paper augments Jikes to "generate the possible values for each field
and the distribution of the values of a field over time" by inserting
sampling code at state-field writes.  JxVM does the same through the
state-hook mechanism: candidate-field PUTFIELD/PUTSTATIC instructions
and mutable-class constructor exits get recording hooks, and each event
snapshots the object's **joint** state (instance values + current static
values), so hot *combinations* fall out directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.bytecode.classfile import ProgramUnit
from repro.bytecode.opcodes import Op
from repro.mutation.plan import StateFieldSpec
from repro.vm.adaptive import AdaptiveConfig
from repro.vm.runtime import VM


@dataclass
class ClassValueProfile:
    """Joint state histogram for one candidate class."""

    class_name: str
    instance_fields: list[StateFieldSpec]
    static_fields: list[StateFieldSpec]
    #: (instance_values, static_values) -> sample count
    histogram: Counter = field(default_factory=Counter)
    samples: int = 0

    def record(self, instance_values: tuple, static_values: tuple) -> None:
        self.histogram[(instance_values, static_values)] += 1
        self.samples += 1

    def shares(self) -> list[tuple[tuple, tuple, float]]:
        """(instance_values, static_values, share), descending."""
        if not self.samples:
            return []
        out = [
            (inst, stat, count / self.samples)
            for (inst, stat), count in self.histogram.items()
        ]
        out.sort(key=lambda t: (-t[2], repr(t[:2])))
        return out


class ValueProfiler:
    """Instruments one linked VM and collects joint-state histograms."""

    def __init__(
        self,
        unit: ProgramUnit,
        candidates: dict[str, tuple[list[StateFieldSpec], list[StateFieldSpec]]],
        seed: int = 42,
    ) -> None:
        """``candidates``: class -> (instance specs, static specs)."""
        self.unit = unit
        self.vm = VM(
            unit, adaptive_config=AdaptiveConfig(enabled=False), seed=seed
        )
        self.profiles: dict[str, ClassValueProfile] = {}
        self._instance_slots: dict[str, list[int]] = {}
        self._static_slots: dict[str, list[int]] = {}
        for cls_name, (inst, stat) in candidates.items():
            self.profiles[cls_name] = ClassValueProfile(
                class_name=cls_name,
                instance_fields=list(inst),
                static_fields=list(stat),
            )
            self._instance_slots[cls_name] = [
                self.unit.lookup_field(s.declaring_class, s.field_name).slot
                for s in inst
            ]
            self._static_slots[cls_name] = [
                self.unit.lookup_field(s.declaring_class, s.field_name).slot
                for s in stat
            ]
        self._install_hooks()

    # ------------------------------------------------------------------

    def _sample_object(self, vm, obj) -> None:
        cls_name = obj.tib.type_info.name
        profile = self.profiles.get(cls_name)
        if profile is None:
            return
        # A candidate field may be shape-managed on this VM (an unboxed
        # lifetime constant, repro.vm.shapes): read through the slot.
        inst = tuple(
            obj.fields[slot] if type(slot) is int else slot.read(obj)
            for slot in self._instance_slots[cls_name]
        )
        stat = tuple(
            vm.jtoc.fields[slot] for slot in self._static_slots[cls_name]
        )
        profile.record(inst, stat)

    def _sample_static_only(self, vm, cls_name: str) -> None:
        profile = self.profiles[cls_name]
        stat = tuple(
            vm.jtoc.fields[slot] for slot in self._static_slots[cls_name]
        )
        profile.record((), stat)

    def _install_hooks(self) -> None:
        instance_keys: set[str] = set()
        static_keys: dict[str, list[str]] = {}
        for cls_name, profile in self.profiles.items():
            for spec in profile.instance_fields:
                instance_keys.add(spec.key)
            for spec in profile.static_fields:
                static_keys.setdefault(spec.key, []).append(cls_name)

        def instance_hook(vm, obj):
            if obj is not None:
                self._sample_object(vm, obj)

        for method in self.unit.all_methods():
            for instr in method.code:
                if instr.op is Op.PUTFIELD:
                    if method.is_constructor:
                        # Mid-construction states are partial; the
                        # constructor-exit hook samples the final state.
                        continue
                    cls_name, field_name = instr.arg
                    finfo = self.unit.lookup_field(cls_name, field_name)
                    key = f"{finfo.declaring_class}.{finfo.name}"
                    if key in instance_keys:
                        instr.state_hook = instance_hook
                elif instr.op is Op.PUTSTATIC:
                    cls_name, field_name = instr.arg
                    finfo = self.unit.lookup_field(cls_name, field_name)
                    key = f"{finfo.declaring_class}.{finfo.name}"
                    interested = static_keys.get(key)
                    if interested:
                        def static_hook(vm, _obj, _classes=tuple(interested)):
                            for name in _classes:
                                if self._instance_slots[name]:
                                    continue  # sampled via objects instead
                                self._sample_static_only(vm, name)

                        instr.state_hook = static_hook

        # Constructor-exit sampling for candidate classes.
        for cls_name in self.profiles:
            rc = self.vm.classes.get(cls_name)
            if rc is None:
                continue
            for key, rm in rc.own_methods.items():
                if rm.info.is_constructor:
                    rm.ctor_exit_hook = instance_hook

    # ------------------------------------------------------------------

    def run(self) -> dict[str, ClassValueProfile]:
        self.vm.run()
        return self.profiles

    def report(self) -> str:
        lines = []
        for cls_name in sorted(self.profiles):
            profile = self.profiles[cls_name]
            lines.append(
                f"{cls_name}: {profile.samples} samples, "
                f"{len(profile.histogram)} distinct states"
            )
            for inst, stat, share in profile.shares()[:8]:
                lines.append(f"  {inst!r} / {stat!r}: {share:.1%}")
        return "\n".join(lines)
