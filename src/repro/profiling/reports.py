"""Serialization and pretty reports for offline profiles and plans."""

from __future__ import annotations

import json
from typing import Any

from repro.mutation.plan import (
    HotState,
    LifetimeConstInfo,
    MutableClassPlan,
    MutationPlan,
    StateFieldSpec,
)


def plan_to_dict(plan: MutationPlan) -> dict[str, Any]:
    """A JSON-serializable rendering of a mutation plan."""
    return {
        "hot_methods": list(plan.hot_methods),
        "classes": {
            name: {
                "instance_fields": [
                    {"key": s.key, "score": s.score}
                    for s in cp.instance_fields
                ],
                "static_fields": [
                    {"key": s.key, "score": s.score}
                    for s in cp.static_fields
                ],
                "hot_states": [
                    {
                        "instance": list(hs.instance_values),
                        "static": list(hs.static_values),
                        "share": hs.share,
                    }
                    for hs in cp.hot_states
                ],
                "mutable_methods": list(cp.mutable_methods),
            }
            for name, cp in plan.classes.items()
        },
        "lifetime_constants": {
            key: {
                "target_class": info.target_class,
                "fields": dict(info.field_values_by_name),
            }
            for key, info in plan.lifetime_constants.items()
        },
    }


def plan_to_json(plan: MutationPlan, indent: int = 2) -> str:
    return json.dumps(plan_to_dict(plan), indent=indent, sort_keys=True)


def plan_from_dict(data: dict[str, Any]) -> MutationPlan:
    """Rebuild a plan from :func:`plan_to_dict` output (no config/scores
    beyond what the dict carries)."""
    plan = MutationPlan(hot_methods=list(data.get("hot_methods", [])))
    for name, cd in data.get("classes", {}).items():
        cp = MutableClassPlan(class_name=name)
        for fd in cd.get("instance_fields", []):
            cls, _, fname = fd["key"].rpartition(".")
            cp.instance_fields.append(
                StateFieldSpec(cls, fname, False, fd.get("score", 0.0))
            )
        for fd in cd.get("static_fields", []):
            cls, _, fname = fd["key"].rpartition(".")
            cp.static_fields.append(
                StateFieldSpec(cls, fname, True, fd.get("score", 0.0))
            )
        for hd in cd.get("hot_states", []):
            cp.hot_states.append(
                HotState(
                    instance_values=tuple(hd["instance"]),
                    static_values=tuple(hd["static"]),
                    share=hd.get("share", 0.0),
                )
            )
        cp.mutable_methods = list(cd.get("mutable_methods", []))
        plan.classes[name] = cp
    for key, ld in data.get("lifetime_constants", {}).items():
        plan.lifetime_constants[key] = LifetimeConstInfo(
            ref_field_key=key,
            target_class=ld["target_class"],
            field_values_by_name=dict(ld.get("fields", {})),
        )
    return plan


def plan_from_json(text: str) -> MutationPlan:
    return plan_from_dict(json.loads(text))
