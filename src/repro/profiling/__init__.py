"""Offline profilers: hot methods (VTune analog) and state-field values."""

from repro.profiling.method_profiler import (
    MethodProfile,
    ProfileResult,
    profile_methods,
)
from repro.profiling.reports import (
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.profiling.value_profiler import ClassValueProfile, ValueProfiler

__all__ = [
    "ClassValueProfile",
    "MethodProfile",
    "ProfileResult",
    "ValueProfiler",
    "plan_from_dict",
    "plan_from_json",
    "plan_to_dict",
    "plan_to_json",
    "profile_methods",
]
