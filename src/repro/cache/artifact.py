"""Cache artifacts: serialized compiled code plus the symbolic pin
table needed to re-link it into a different VM instance.

An opt2 artifact is the generated Python source (optionally with a
marshalled code object) plus one *pin descriptor* per runtime object the
source closes over.  Descriptors name objects symbolically — class
names, method keys, intrinsic names, hook roles — never by identity, so
:func:`resolve_pin` can rebind them against the current VM's JTOC, TIB,
and mutation-manager environment.  An opt1 artifact is serialized IR
(see :mod:`repro.cache.irser`).

Anything that cannot be described symbolically makes the compile
*uncacheable* (reported, never mis-linked): correctness never depends
on the cache.
"""

from __future__ import annotations

import base64
import marshal
from typing import Any

_FLOAT_TAGS = {"inf": float("inf"), "-inf": float("-inf")}


class UnlinkableArtifact(Exception):
    """A cached artifact references something absent from this VM."""


# ---------------------------------------------------------------------------
# Value codec (JSON-safe encoding of Jx runtime constants)
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Encode a Jx constant for JSON.  Jx constants are bool, int,
    float, str, or None; non-finite floats need tagging (JSON has no
    inf/nan) and everything else is rejected as uncacheable."""
    if isinstance(value, float):
        if value != value:
            return {"$f": "nan"}
        if value in (float("inf"), float("-inf")):
            return {"$f": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    raise UnlinkableArtifact(f"unencodable constant {value!r}")


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        tag = value.get("$f")
        if tag == "nan":
            return float("nan")
        if tag in _FLOAT_TAGS:
            return _FLOAT_TAGS[tag]
        raise UnlinkableArtifact(f"unknown value tag {value!r}")
    return value


# ---------------------------------------------------------------------------
# Pin descriptors
# ---------------------------------------------------------------------------

def _manager(vm: Any) -> Any:
    manager = getattr(vm, "mutation_manager", None)
    if manager is None:
        raise UnlinkableArtifact("artifact needs a mutation manager")
    return manager


def resolve_pin(vm: Any, desc: list | tuple) -> Any:
    """Resolve one symbolic pin descriptor against ``vm``.

    Descriptor forms (first element is the kind):

    ========================= =========================================
    ``["value", v]``          the encoded constant itself
    ``["frozenset", [...]]``  frozenset of encoded values
    ``["class", name]``       RuntimeClass
    ``["class_tib", name]``   a class's general TIB
    ``["method", cls, key]``  RuntimeMethod declared by ``cls``
    ``["cell", cls, key]``    a static method's JTOC cell
    ``["intrinsic", name]``   an intrinsic's implementation function
    ``["instance_hook"]``     the manager's shared PUTFIELD state hook
    ``["deferred_hook"]``     the manager's coalesced-write hook
    ``["static_hook", key]``  the PUTSTATIC hook for one state field
    ``["ctor_hook", cls]``    a mutable class's constructor-exit hook
    ``["manager"]``           the mutation manager itself
    ``["mutation_stats"]``    the VM's mutation-stats record (legacy:
                              inline swap counting now reads
                              ``vm.mutation_stats`` at runtime so the
                              invoking session is charged; kept for
                              resolution robustness)
    ``["tib_table1", cls]``   value -> special-TIB map (single-field
                              inline-swap fast path)
    ``["special_tib",         one hot state's special TIB, keyed by
    cls, [values]]``          its encoded instance values (OSR deopt
                              guards compare against it)
    ``["osr_deopt"]``         :func:`repro.vm.osr.deopt_to_interpreter`
    ========================= =========================================
    """
    kind = desc[0]
    try:
        if kind == "value":
            return decode_value(desc[1])
        if kind == "frozenset":
            return frozenset(decode_value(v) for v in desc[1])
        if kind == "class":
            return vm.classes[desc[1]]
        if kind == "class_tib":
            return vm.classes[desc[1]].class_tib
        if kind == "method":
            return vm.classes[desc[1]].own_methods[desc[2]]
        if kind == "cell":
            cell = vm.classes[desc[1]].own_methods[desc[2]].jtoc_cell
            if cell is None:
                raise UnlinkableArtifact(f"no JTOC cell for {desc}")
            return cell
        if kind == "intrinsic":
            from repro.vm.intrinsics import INTRINSICS

            return INTRINSICS[desc[1]].fn
        if kind == "instance_hook":
            return _manager(vm).instance_state_hook()
        if kind == "deferred_hook":
            return _manager(vm).deferred_state_hook()
        if kind == "static_hook":
            return _manager(vm).static_hooks[desc[1]]
        if kind == "ctor_hook":
            return _manager(vm).ctor_hooks[desc[1]]
        if kind == "manager":
            return _manager(vm)
        if kind == "mutation_stats":
            return vm.mutation_stats
        if kind == "tib_table1":
            mcr = _manager(vm).mcrs[desc[1]]
            return {
                key[0]: tib for key, tib in mcr.tib_by_instance.items()
            }
        if kind == "special_tib":
            mcr = _manager(vm).mcrs[desc[1]]
            values = tuple(decode_value(v) for v in desc[2])
            return mcr.tib_by_instance[values]
        if kind == "osr_deopt":
            from repro.vm.osr import deopt_to_interpreter

            return deopt_to_interpreter
    except (KeyError, AttributeError) as exc:
        raise UnlinkableArtifact(f"cannot resolve pin {desc!r}") from exc
    raise UnlinkableArtifact(f"unknown pin kind {desc!r}")


def hook_ref(hook: Any) -> list | None:
    """The symbolic descriptor a hook closure advertises (the mutation
    manager stamps ``cache_ref`` onto every hook it builds)."""
    ref = getattr(hook, "cache_ref", None)
    return list(ref) if ref is not None else None


# ---------------------------------------------------------------------------
# opt2 artifacts
# ---------------------------------------------------------------------------

def opt2_artifact(fn_name: str, source: str, pins: dict[str, list],
                  code: Any = None) -> dict:
    art = {
        "kind": "opt2",
        "fn_name": fn_name,
        "source": source,
        "pins": [[name, list(desc)] for name, desc in pins.items()],
    }
    if code is not None:
        try:
            art["marshal"] = base64.b64encode(
                marshal.dumps(code)
            ).decode("ascii")
        except ValueError:
            pass  # unmarshallable code object: source fallback suffices
    return art


def link_opt2(vm: Any, art: dict) -> tuple[str, Any]:
    """Re-link a cached opt2 artifact; returns ``(source, executor)``.

    The marshalled code object is preferred (skips re-parsing); the
    stored source is the portable fallback.  Pin resolution happens
    against the *current* VM, which is what makes the cached source safe
    across VM instances.
    """
    namespace: dict[str, Any] = _base_namespace()
    for name, desc in art["pins"]:
        namespace[name] = resolve_pin(vm, desc)
    code = None
    blob = art.get("marshal")
    if blob:
        try:
            code = marshal.loads(base64.b64decode(blob))
        except (ValueError, EOFError, TypeError):
            code = None
    if code is None:
        code = compile(art["source"], "<jx-opt2:cached>", "exec")
    exec(code, namespace)
    executor = namespace.get(art["fn_name"])
    if executor is None:
        raise UnlinkableArtifact(
            f"artifact defines no function {art['fn_name']!r}"
        )
    return art["source"], executor


def _base_namespace() -> dict[str, Any]:
    """The static helper globals every generated function expects."""
    from repro.opt.pycodegen import _py_eq, _py_fdiv
    from repro.vm.values import (
        ArrayBoundsError,
        ClassCastError,
        NullPointerError,
        VMArray,
        jx_rem,
        jx_str,
        jx_truncate_div,
    )

    return {
        "_idiv": jx_truncate_div,
        "_irem": jx_rem,
        "_fdiv": _py_fdiv,
        "_eq": _py_eq,
        "_jstr": jx_str,
        "_VMArray": VMArray,
        "_NPE": NullPointerError,
        "_OOB": ArrayBoundsError,
        "_CAST": ClassCastError,
    }
