"""repro.cache — the persistent specialization compile cache.

Memoizes opt1/opt2 and state-specialized (special-TIB) compilation
across VM instances: generated Python source / optimized IR is keyed by
a stable digest of everything that can change it (program bytecode,
method, opt tier, state-field bindings, opt-pass config, mutation
environment) and re-linked against the loading VM's JTOC/TIB world.

Usage::

    from repro import VM, compile_source
    from repro.cache import CompileCache

    cache = CompileCache("~/.jxcache")          # or VM(..., compile_cache=path)
    vm = VM(compile_source(src), compile_cache=cache)

The ``JX_CACHE_DIR`` environment variable enables the cache for every
VM that is not explicitly given one (used by the CI warm-start job).
"""

from repro.cache.artifact import UnlinkableArtifact
from repro.cache.keys import compile_key, method_digest, program_digest
from repro.cache.store import SCHEMA_VERSION, CompileCache, cache_stamp

__all__ = [
    "CompileCache",
    "SCHEMA_VERSION",
    "UnlinkableArtifact",
    "cache_stamp",
    "compile_key",
    "method_digest",
    "program_digest",
]
