"""IR serialization for the opt1 cache tier.

opt1 methods execute as optimized IR under the IR interpreter, so their
cache artifact is the post-pipeline IR itself, serialized with the same
symbolic-reference discipline as the opt2 pin table: runtime objects in
:class:`~repro.opt.ir.Extra` payloads (classes, methods, JTOC cells,
intrinsics, mutation hooks) are stored as descriptors and re-resolved
against the loading VM (:func:`repro.cache.artifact.resolve_pin`).

A hit skips lowering and the whole pass pipeline — deserialization is a
flat rebuild of blocks and instructions.
"""

from __future__ import annotations

from typing import Any

from repro.cache.artifact import (
    UnlinkableArtifact,
    decode_value,
    encode_value,
    hook_ref,
    resolve_pin,
)
from repro.opt.ir import Block, Const, Extra, IRFunction, IRInstr, Reg

#: Extra fields that serialize as plain JSON values.
_PLAIN_FIELDS = (
    "slot", "key", "offset", "elem", "bounds", "returns",
    "target", "if_true", "if_false", "name", "pc", "live",
)


def _encode_extra(ex: Extra) -> dict:
    out: dict[str, Any] = {}
    for fname in _PLAIN_FIELDS:
        value = getattr(ex, fname)
        if value != Extra.__dataclass_fields__[fname].default:
            if fname == "slot" and type(value) is not int:
                # Shape-managed slot (repro.vm.shapes): a plain dump
                # would erase the ShapeField/UnboxedField wrapper, so
                # store the field identity and re-resolve at link time.
                cls_name, _, field_name = ex.key.partition(".")
                out["slot_ref"] = [cls_name, field_name]
                continue
            out[fname] = value
    if ex.hook is not None:
        ref = hook_ref(ex.hook)
        if ref is None:
            raise UnlinkableArtifact("hook without a cache_ref")
        out["hook"] = ref
    if ex.rc is not None:
        out["rc"] = ["class", ex.rc.name]
    if ex.rm is not None:
        out["rm"] = ["method", ex.rm.rclass.name, ex.rm.info.key]
    if ex.cell is not None:
        cls, _, key = ex.cell.qualified_name.partition(".")
        out["cell"] = ["cell", cls, key]
    if ex.intrinsic is not None:
        out["intrinsic"] = ["intrinsic", ex.intrinsic.name]
    if ex.fill is not None:
        out["fill"] = encode_value(ex.fill)
    if ex.tib is not None:
        # Specialized (deopt-guarded) code is opt2-only, so IR artifacts
        # should never carry a TIB reference; refuse rather than risk
        # re-linking a guard against the wrong runtime object.
        raise UnlinkableArtifact("IR artifact with a TIB-bearing Extra")
    return out


def _decode_extra(vm: Any, data: dict) -> Extra:
    ex = Extra()
    for fname in _PLAIN_FIELDS:
        if fname in data:
            setattr(ex, fname, data[fname])
    if "slot_ref" in data:
        finfo = vm.unit.lookup_field(*data["slot_ref"])
        if finfo is None or type(finfo.slot) is int:
            raise UnlinkableArtifact(
                f"shape-managed slot {data['slot_ref']} did not "
                f"re-resolve to a shaped field"
            )
        ex.slot = finfo.slot
    if "hook" in data:
        ex.hook = resolve_pin(vm, data["hook"])
    if "rc" in data:
        ex.rc = resolve_pin(vm, data["rc"])
    if "rm" in data:
        ex.rm = resolve_pin(vm, data["rm"])
    if "cell" in data:
        ex.cell = resolve_pin(vm, data["cell"])
    if "intrinsic" in data:
        from repro.vm.intrinsics import INTRINSICS

        ex.intrinsic = INTRINSICS[data["intrinsic"][1]]
    if "fill" in data:
        ex.fill = decode_value(data["fill"])
    return ex


def _encode_operand(operand: Any) -> Any:
    if isinstance(operand, Reg):
        return {"r": operand.name}
    return {"c": encode_value(operand.value)}


def _decode_operand(data: dict) -> Any:
    if "r" in data:
        return Reg(data["r"])
    return Const(decode_value(data["c"]))


def ir_to_dict(fn: IRFunction) -> dict:
    """Serialize post-pipeline IR; raises
    :class:`UnlinkableArtifact` on anything non-symbolic."""
    blocks = {}
    for block in fn.blocks.values():
        blocks[str(block.id)] = [
            {
                "op": instr.op,
                "dest": instr.dest.name if instr.dest is not None else None,
                "args": [_encode_operand(a) for a in instr.args],
                "extra": _encode_extra(instr.extra),
                "line": instr.line,
            }
            for instr in block.instrs
        ]
    return {
        "name": fn.name,
        "num_args": fn.num_args,
        "max_locals": fn.max_locals,
        "returns_value": fn.returns_value,
        "entry": fn.entry,
        "next_block_id": fn._next_block_id,
        "param_kinds": list(fn.param_kinds),
        "blocks": blocks,
    }


def ir_from_dict(vm: Any, data: dict) -> IRFunction:
    """Rebuild an IRFunction, re-resolving runtime references against
    ``vm``."""
    fn = IRFunction(
        data["name"], data["num_args"], data["max_locals"],
        data["returns_value"],
    )
    fn.entry = data["entry"]
    fn._next_block_id = data["next_block_id"]
    fn.param_kinds = list(data["param_kinds"])
    for bid_text, instrs in data["blocks"].items():
        bid = int(bid_text)
        block = Block(bid)
        for idata in instrs:
            dest = Reg(idata["dest"]) if idata["dest"] is not None else None
            block.instrs.append(
                IRInstr(
                    idata["op"],
                    dest,
                    [_decode_operand(a) for a in idata["args"]],
                    _decode_extra(vm, idata["extra"]),
                    idata["line"],
                )
            )
        fn.blocks[bid] = block
    return fn
