"""Cache-key construction: stable digests over everything that can
change generated code.

Invalidation is correct by construction (the tentpole requirement):
a compile key commits to

* the **whole program's bytecode** — opt2 inlines callees transitively,
  so a method's generated code can depend on any other method's body;
  hashing the full linked unit (class set, supertypes, field layouts,
  method bytecode) is the conservative closure;
* the **method identity** (declaring class + method key) and **opt
  tier**;
* the **specialization bindings** (state-field slots and values, per
  :class:`~repro.opt.specialize.SpecBindings`);
* the **opt-pass configuration** (every :class:`OptConfig` /
  :class:`InlineConfig` field);
* the **mutation environment** — the full mutation plan (hooked fields,
  hot states, lifetime constants, trade-off constants) plus whether
  telemetry is attached, both of which select different hook closures
  and therefore different generated source.

The VM-version stamp is *not* part of the per-entry key: it is baked
into the cache directory name (see :mod:`repro.cache.store`), so a
version upgrade busts the whole cache at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any


def stable_digest(payload: Any) -> str:
    """SHA-256 over a canonical JSON rendering of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Program / method digests
# ---------------------------------------------------------------------------

def _method_payload(minfo: Any) -> list:
    return [
        minfo.key,
        minfo.is_static,
        minfo.access,
        minfo.is_abstract,
        [str(t) for t in minfo.param_types],
        str(minfo.return_type),
        minfo.max_locals,
        [[instr.op.name, repr(instr.arg)] for instr in minfo.code],
    ]


def _class_payload(cinfo: Any) -> list:
    return [
        cinfo.name,
        cinfo.super_name or "",
        sorted(cinfo.interface_names),
        cinfo.is_interface,
        [
            [f.name, str(f.type), f.is_static, f.access]
            for f in cinfo.fields.values()
        ],
        [_method_payload(m) for m in cinfo.methods.values()],
    ]


def program_digest(unit: Any) -> str:
    """Digest of the whole program: any bytecode, field, or hierarchy
    change anywhere produces a different digest (inlining closure)."""
    payload = [
        [unit.entry_class, unit.entry_method],
        sorted(
            (_class_payload(c) for c in unit.classes.values()),
            key=lambda row: row[0],
        ),
    ]
    return stable_digest(payload)


def method_digest(minfo: Any) -> str:
    """Per-method bytecode digest (diagnostics + key-splitting tests)."""
    return stable_digest(_method_payload(minfo))


# ---------------------------------------------------------------------------
# Bindings / config / environment digests
# ---------------------------------------------------------------------------

def bindings_payload(bindings: Any) -> list:
    """Defer to :meth:`SpecBindings.cache_key_payload` — the bindings
    type owns the statement of which of its parts affect codegen."""
    if not bindings:
        return []
    return bindings.cache_key_payload()


def opt_config_payload(config: Any) -> dict:
    return {
        "max_iterations": config.max_iterations,
        "inline": asdict(config.inline),
    }


def environment_payload(vm: Any) -> dict:
    """The VM-construction facts that steer codegen besides bytecode:
    the mutation plan (hooks, hot states, lifetime constants), telemetry
    attachment (selects instrumented hook closures and disables the
    inline fast paths), the swap-coalescing toggle (moves hooks between
    PUTFIELD sites, changing which stores carry hook calls), and the
    attach-time analysis audit (a downgraded class loses its hooks and
    specializations, so the set of downgrades shapes compiled code),
    and the OSR toggle (it decides whether specialized code carries
    mid-frame deopt guards)."""
    manager = getattr(vm, "mutation_manager", None)
    plan_dict = None
    coalesce = None
    analysis = None
    if manager is not None:
        from repro.profiling.reports import plan_to_dict

        plan_dict = plan_to_dict(manager.plan)
        plan_dict["k"] = manager.plan.config.k
        coalesce = manager.plan.config.coalesce_swaps
        analysis = {
            "audit_hooks": manager.plan.config.audit_hooks,
            "downgraded": sorted(manager.downgraded_classes),
        }
    return {
        "plan": plan_dict,
        "telemetry": vm.telemetry is not None,
        "coalesce": coalesce,
        "analysis": analysis,
        "osr": bool(getattr(vm.config, "osr", False)),
        # Sharing merges special TIBs (changing which TIB identity a
        # guarded special pins); memoization suppresses the inline swap
        # fast path (generated state writes call the epoch-bumping
        # closure instead).  Both therefore shape opt2 artifacts.
        "spec_share": bool(getattr(vm.config, "spec_share", False)),
        "memo": bool(getattr(vm.config, "memo", False)),
        # Packed layouts renumber every field slot and can replace slots
        # with unboxed constants, so any artifact embedding a slot index
        # depends on the toggle.
        "shapes": bool(getattr(vm.config, "shapes", False)),
        # Translation-validation verdict digest: enforcement downgrades
        # (de-quickened bodies, rejected OSR entries, refused shares,
        # downgraded plans) change which bodies exist to compile, so a
        # hit from a run with different verdicts could resurrect an
        # unvalidated body.
        "tv": {
            "enabled": bool(getattr(vm.config, "tv", False)),
            "downgrades": sorted(getattr(vm, "tv_downgrades", None) or {}),
        },
    }


def compile_key(
    vm: Any,
    rm: Any,
    opt_level: int,
    bindings: Any,
    config: Any,
    program_dig: str | None = None,
) -> str:
    """The cache key for one (method, tier, bindings) compile request."""
    payload = {
        "program": program_dig or program_digest(vm.unit),
        "class": rm.rclass.name,
        "method": rm.info.key,
        "method_code": method_digest(rm.info),
        "opt_level": opt_level,
        "bindings": bindings_payload(bindings),
        "opt_config": opt_config_payload(config),
        "env": environment_payload(vm),
    }
    return stable_digest(payload)
