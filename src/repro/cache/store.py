"""The persistent compile-cache store.

Layout::

    <cache root>/
        v<schema>-<repro version>-<cpython cache tag>/   # the "stamp"
            ab/                                          # key[:2] shard
                ab3f...e1.json                           # one entry

The stamp directory bakes the cache schema version, the repro package
version, and the CPython bytecode tag into the path, so upgrading any
of them busts the whole cache without touching individual keys (stale
stamps are ignored by lookups and removed by ``clear``).

Each entry is a JSON document ``{"key", "meta", "artifact_sha",
"artifact"}``; ``artifact_sha`` is verified on load, so a truncated or
hand-poisoned file is detected and treated as a miss (the poisoning
tests assert a recompile, never a mis-link).

Writes are atomic (temp file + ``os.replace``) so concurrent VMs
sharing a cache directory can only ever observe complete entries.

Concurrency: one :class:`CompileCache` instance may be shared by many
threads (the ``repro.server`` sessions all hold the code space's
store).  Atomic writes already make *torn* entries impossible; the
per-key locks (:meth:`CompileCache.key_lock`) additionally make the
load→compile→store sequence exclusive per key, so two concurrent
compilers of the same key serialize and the second becomes a hit
instead of a duplicate compile.  Time spent waiting is accounted in
``lock_wait_seconds`` (surfaced as ``cache.lock_wait_seconds``
telemetry by the opt pipeline).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro import __version__
from repro.cache.keys import compile_key, program_digest, stable_digest

#: Bump when the artifact or key format changes incompatibly.
#: v2: unified swap accounting — generated code counts swaps on
#: ``vm.mutation_stats`` (pin kind ``mutation_stats``); v1 artifacts
#: wrote ``manager.tib_swaps``, which is now a read-only alias.
#: v3: interpreter quickening — quickened bodies and inline-cache cells
#: are runtime-only and are never persisted (``method_digest`` reads the
#: pristine ``info.code``), but the stamp is bumped defensively so no
#: pre-quickening artifact can ever co-mingle with this runtime.
#: v4: analysis-audit environment — ``environment_payload`` gained the
#: ``analysis`` entry (audit flag + downgraded classes), changing every
#: compile key's shape.
#: v5: per-session swap accounting — opt2 inline swap/coalesce counting
#: reads ``vm.mutation_stats`` at runtime instead of pinning the
#: compiling VM's stats record, so shared-code-space sessions charge
#: themselves; v4 artifacts carry the old pinned form.
#: v6: on-stack replacement — specialized artifacts may carry
#: ``deoptcheck`` guards with ``special_tib``/``osr_deopt`` pins, the
#: opt1 IR serializer gained the ``pc``/``live`` Extra fields, and
#: ``environment_payload`` gained the ``osr`` entry.
#: v7: specialization sharing + memoization — ``environment_payload``
#: gained the ``spec_share``/``memo`` entries (sharing merges special
#: TIBs, memoization suppresses the inline swap fast path), and shared
#: bodies are stored once under the compiling (leader) state's key —
#: aliased states never consult the cache.
#: v8: shape-based packed layouts — field slots are renumbered by
#: packing, unboxed constants fold field reads, pinned state fields
#: emit guarded/rematerializing accessors, and ``environment_payload``
#: gained the ``shapes`` entry; v7 artifacts embed declared slot
#: indices.
#: v9: translation validation — ``environment_payload`` gained the
#: ``tv`` entry (toggle + the sorted enforcement-downgrade record), so
#: a cache hit never resurrects a body the validator refused to run in
#: the populating build; v8 artifacts carry no verdict digest.
SCHEMA_VERSION = 9


def cache_stamp() -> str:
    """The versioned subdirectory name for entries this build can use."""
    return f"v{SCHEMA_VERSION}-{__version__}-{sys.implementation.cache_tag}"


class CompileCache:
    """A file-backed, cross-VM-instance compile cache.

    One instance may serve many VMs (or many instances may share one
    directory); all persistent state lives in the filesystem and all
    in-memory state is counters.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.dir = self.root / cache_stamp()
        # Session counters (per CompileCache instance, not persisted).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.link_errors = 0
        self.uncacheable = 0
        #: Aggregate seconds threads spent waiting on per-key locks.
        self.lock_wait_seconds = 0.0
        self.lock_waits = 0
        # Per-key lock registry: the registry lock only guards the dict;
        # key locks are held across a whole load→compile→store sequence.
        self._registry_lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}

    # -- concurrency --------------------------------------------------------

    @contextmanager
    def key_lock(self, key: str):
        """Exclusive section for one cache key.

        Yields the seconds this thread waited to acquire the lock (0.0
        on the uncontended path).  Callers wrap load→compile→store so
        concurrent sessions never recompile the same key twice and
        never observe a torn entry; waits accumulate into
        ``lock_wait_seconds``.
        """
        with self._registry_lock:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
        waited = 0.0
        if not lock.acquire(blocking=False):
            start = time.perf_counter()
            lock.acquire()
            waited = time.perf_counter() - start
            with self._registry_lock:
                self.lock_wait_seconds += waited
                self.lock_waits += 1
        try:
            yield waited
        finally:
            lock.release()

    # -- keys ---------------------------------------------------------------

    def key_for(self, vm: Any, rm: Any, opt_level: int,
                bindings: Any, config: Any) -> str:
        digest = getattr(vm.unit, "_jxcache_program_digest", None)
        if digest is None:
            digest = program_digest(vm.unit)
            vm.unit._jxcache_program_digest = digest
        return compile_key(vm, rm, opt_level, bindings, config,
                           program_dig=digest)

    def _path(self, key: str) -> Path:
        return self.dir / key[:2] / f"{key}.json"

    # -- entry I/O ----------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """Return the entry's artifact dict, or None for a miss.

        Every failure mode — absent file, malformed JSON, wrong key,
        checksum mismatch — is a miss; a stale or corrupt entry is
        never linked.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        artifact = entry.get("artifact")
        if artifact is None:
            return None
        if entry.get("artifact_sha") != stable_digest(artifact):
            return None
        return artifact

    def store(self, key: str, artifact: dict, meta: dict) -> None:
        """Atomically persist one entry (best-effort: cache I/O errors
        never fail a compile)."""
        path = self._path(key)
        entry = {
            "key": key,
            "meta": meta,
            "artifact_sha": stable_digest(artifact),
            "artifact": artifact,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stores += 1
        except OSError:
            pass

    # -- maintenance --------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (all stamps, including stale ones);
        returns the number of entry files removed."""
        removed = 0
        if self.root.is_dir():
            for stamp_dir in list(self.root.iterdir()):
                if not stamp_dir.is_dir() or not stamp_dir.name.startswith("v"):
                    continue
                removed += sum(
                    1 for _ in stamp_dir.glob("*/*.json")
                )
                shutil.rmtree(stamp_dir, ignore_errors=True)
        return removed

    def stats(self) -> dict:
        """Aggregate persistent + session statistics."""
        entries = 0
        total_bytes = 0
        by_tier: dict[str, int] = {}
        stale_entries = 0
        if self.root.is_dir():
            for stamp_dir in self.root.iterdir():
                if not stamp_dir.is_dir():
                    continue
                current = stamp_dir.name == self.dir.name
                for path in stamp_dir.glob("*/*.json"):
                    if not current:
                        stale_entries += 1
                        continue
                    entries += 1
                    try:
                        total_bytes += path.stat().st_size
                        with open(path, encoding="utf-8") as handle:
                            meta = json.load(handle).get("meta", {})
                        tier = "special" if meta.get("special") else (
                            f"opt{meta.get('opt_level', '?')}"
                        )
                        by_tier[tier] = by_tier.get(tier, 0) + 1
                    except (OSError, ValueError):
                        continue
        lookups = self.hits + self.misses
        return {
            "dir": str(self.dir),
            "entries": entries,
            "stale_entries": stale_entries,
            "bytes": total_bytes,
            "by_tier": by_tier,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "link_errors": self.link_errors,
                "uncacheable": self.uncacheable,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "lock_waits": self.lock_waits,
                "lock_wait_seconds": self.lock_wait_seconds,
            },
        }

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return (self.hits / lookups) if lookups else 0.0

    def __repr__(self) -> str:
        return (
            f"<CompileCache {self.dir} hits={self.hits} "
            f"misses={self.misses}>"
        )
