"""Memoization of pure specialized methods.

A specialized body whose every instruction is a pure computation over
its arguments (:func:`repro.opt.eqstate.ir_is_pure`) computes a function
of ``(state key, args)`` — the state constants are baked in, nothing
else is read.  Such bodies can return a cached result instead of
re-running (the mutation-memoization line in PAPERS.md, applied to the
paper's specialized compiles).

Soundness:

* the **state key** identifies the baked-in constants (the wrapper is
  installed per ``rm.specials`` entry, so the key is fixed per wrapper);
* the **args** are keyed by ``(type, value)`` pairs — ``1``/``1.0``/
  ``True`` never collide, and heap objects key by identity (their
  default hash), so a receiver-dependent pure result (e.g. ``return
  this``) stays per-receiver.  Unhashable arguments bypass the table;
* the **epoch** guards state mutation: every TIB swap of the receiver's
  class bumps the class epoch (``MemoTable.bump`` — called from the
  re-evaluation closures and :meth:`MutationManager.record_swap`), and
  an entry is only valid within the epoch it was filled in.  This is
  deliberately coarse — any instance of the class changing state
  invalidates the whole class — because it makes the invalidation hook
  one dict increment on the already-paid swap path.

The table lives in VM *session state* (``vm.memo``,
:meth:`repro.vm.runtime.VM._init_session_state`): every
:class:`repro.server.Session` owns its own table, so memoized results
can never bleed between tenants of a shared code space.

Cache-linked specials carry no IR (``cm.ir is None``), so their purity
is unknown and they run unmemoized — a warm-start run is byte-identical
either way, just without memo hits.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.core import maybe as _tel_maybe

__all__ = ["MemoTable", "MemoizedSpecial"]

_MISS = object()


class MemoTable:
    """Per-session store of memoized specialized-call results."""

    __slots__ = ("entries", "epochs", "hits", "fills", "unkeyable",
                 "limit")

    def __init__(self, limit: int = 4096) -> None:
        #: (method ident, epoch, args key) -> result.
        self.entries: dict[tuple, Any] = {}
        #: class name -> invalidation epoch, bumped on every TIB swap.
        self.epochs: dict[str, int] = {}
        self.hits = 0
        self.fills = 0
        #: Calls that bypassed the table (unhashable argument).
        self.unkeyable = 0
        #: Entry cap; the table is cleared wholesale when it fills
        #: (stale-epoch entries are unreachable anyway, and a bound
        #: keeps long-running sessions from growing without limit).
        self.limit = limit

    def bump(self, cls_name: str) -> None:
        """Invalidate every memoized result for ``cls_name``'s methods
        (called on each TIB swap of the class)."""
        self.epochs[cls_name] = self.epochs.get(cls_name, 0) + 1

    def describe(self) -> str:
        return (
            f"memo: {self.hits} hits, {self.fills} fills, "
            f"{len(self.entries)} live entries"
        )


class MemoizedSpecial:
    """A specialized compiled method wrapped with a memo lookup.

    Installed as the ``rm.specials`` value itself (TIB entries then
    dispatch through it), so identity checks like ``tib.entries[off] is
    rm.specials[key]`` keep holding.  Every attribute other than
    ``invoke`` delegates to the wrapped compiled method.
    """

    __slots__ = ("inner", "cls_name", "method_name", "state_key",
                 "_ident")

    #: Marker for tests and diagnostics.
    is_memoized = True

    def __init__(self, inner: Any, cls_name: str, method_name: str,
                 state_key: Any) -> None:
        self.inner = inner
        self.cls_name = cls_name
        self.method_name = method_name
        self.state_key = state_key
        self._ident = (method_name, state_key)

    def __getattr__(self, name: str) -> Any:
        if name == "inner":  # unset during construction; avoid recursing
            raise AttributeError(name)
        return getattr(self.inner, name)

    def invoke(self, vm: Any, args: list[Any]) -> Any:
        memo = vm.memo
        epoch = memo.epochs.get(self.cls_name, 0)
        try:
            key = (
                self._ident,
                epoch,
                tuple((type(a), a) for a in args),
            )
            result = memo.entries.get(key, _MISS)
        except TypeError:  # unhashable argument
            memo.unkeyable += 1
            return self.inner.invoke(vm, args)
        tel = _tel_maybe(vm.telemetry)
        if result is not _MISS:
            memo.hits += 1
            vm.mutation_stats.memo_hits += 1
            if tel is not None:
                tel.count("vm.memo_hits")
                tel.emit(
                    "memo_hit",
                    method=self.method_name,
                    state=repr(self.state_key),
                    epoch=epoch,
                )
            return result
        result = self.inner.invoke(vm, args)
        if len(memo.entries) >= memo.limit:
            memo.entries.clear()
        memo.entries[key] = result
        memo.fills += 1
        if tel is not None:
            tel.count("vm.memo_fills")
            tel.emit(
                "memo_fill",
                method=self.method_name,
                state=repr(self.state_key),
                epoch=epoch,
            )
        return result

    def describe(self) -> str:
        return f"{self.inner.describe()} memoized"

    def __repr__(self) -> str:
        return f"<MemoizedSpecial {self.describe()}>"
