"""Intrinsic functions backing the Jx standard library.

The stdlib's ``Sys`` class exposes these as ordinary static methods whose
bodies are a single ``INTRINSIC`` instruction.  Implementations are pure
Python over VM values and receive an :class:`IntrinsicContext` carrying
program output and the deterministic RNG.

The RNG is a 48-bit LCG with ``java.util.Random``'s constants so workload
traffic (e.g. the SPECjbb transaction mix) is reproducible across runs and
across execution tiers (interpreter / opt1 / opt2 must see identical
streams for the mutation-equivalence property tests to be meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.vm.values import VMArray, VMRuntimeError, jx_str, jx_truncate_div


class IntrinsicContext:
    """Per-VM state visible to intrinsics: output buffer + RNG."""

    _LCG_MULT = 0x5DEECE66D
    _LCG_ADD = 0xB
    _LCG_MASK = (1 << 48) - 1

    def __init__(self, seed: int = 42) -> None:
        self.stdout: list[str] = []
        self._rng_state = (seed ^ self._LCG_MULT) & self._LCG_MASK

    def write(self, text: str) -> None:
        self.stdout.append(text)

    def output(self) -> str:
        return "".join(self.stdout)

    def rand_seed(self, seed: int) -> None:
        self._rng_state = (seed ^ self._LCG_MULT) & self._LCG_MASK

    def _next_bits(self, bits: int) -> int:
        self._rng_state = (
            self._rng_state * self._LCG_MULT + self._LCG_ADD
        ) & self._LCG_MASK
        return self._rng_state >> (48 - bits)

    def rand_int(self, bound: int) -> int:
        if bound <= 0:
            raise VMRuntimeError(f"randInt bound must be positive, got {bound}")
        # Rejection sampling per java.util.Random.nextInt(int).
        while True:
            bits = self._next_bits(31)
            val = bits % bound
            if bits - val + (bound - 1) < (1 << 31):
                return val

    def rand_double(self) -> float:
        return ((self._next_bits(26) << 27) + self._next_bits(27)) / float(
            1 << 53
        )


@dataclass(frozen=True)
class Intrinsic:
    """One intrinsic: arity, whether it pushes a result, implementation."""

    name: str
    nargs: int
    returns: bool
    fn: Callable[..., Any] = field(compare=False)


def _check_str_index(s: str, i: int) -> None:
    if not 0 <= i < len(s):
        raise VMRuntimeError(f"string index {i} out of range [0, {len(s)})")


def _substr(ctx: IntrinsicContext, s: str, start: int, end: int) -> str:
    if not (0 <= start <= end <= len(s)):
        raise VMRuntimeError(
            f"substring bounds [{start}, {end}) invalid for length {len(s)}"
        )
    return s[start:end]


def _split(ctx: IntrinsicContext, s: str, sep: str) -> VMArray:
    parts = s.split(sep) if sep else list(s)
    arr = VMArray("string", len(parts))
    arr.data = parts
    return arr


def _str_join(ctx: IntrinsicContext, parts: VMArray, n: int) -> str:
    if not 0 <= n <= len(parts.data):
        raise VMRuntimeError(f"strJoin count {n} out of range")
    return "".join(p if p is not None else "null" for p in parts.data[:n])


def _java_string_hash(ctx: IntrinsicContext, s: str) -> int:
    h = 0
    for ch in s:
        h = (31 * h + ord(ch)) & 0xFFFFFFFF
    if h >= 1 << 31:
        h -= 1 << 32
    return h


def _parse_int(ctx: IntrinsicContext, s: str) -> int:
    try:
        return int(s.strip())
    except ValueError:
        raise VMRuntimeError(f"cannot parse int from {s!r}") from None


def _parse_double(ctx: IntrinsicContext, s: str) -> float:
    try:
        return float(s.strip())
    except ValueError:
        raise VMRuntimeError(f"cannot parse double from {s!r}") from None


def _floor_div_double(x: float) -> int:
    import math

    return math.floor(x)


def _build_table() -> dict[str, Intrinsic]:
    import math

    def I(name: str, nargs: int, returns: bool, fn: Callable[..., Any]):
        return Intrinsic(name, nargs, returns, fn)

    table = [
        # -- output --
        I("print", 1, False, lambda ctx, s: ctx.write(jx_str(s) + "\n")),
        I("printRaw", 1, False, lambda ctx, s: ctx.write(jx_str(s))),
        # -- strings --
        I("str_len", 1, True, lambda ctx, s: len(s)),
        I("str_charAt", 2, True,
          lambda ctx, s, i: (_check_str_index(s, i), s[i])[1]),
        I("str_ord", 2, True,
          lambda ctx, s, i: (_check_str_index(s, i), ord(s[i]))[1]),
        I("str_chr", 1, True, lambda ctx, i: chr(i)),
        I("str_substr", 3, True, _substr),
        I("str_indexOf", 2, True, lambda ctx, s, t: s.find(t)),
        I("str_split", 2, True, _split),
        I("str_trim", 1, True, lambda ctx, s: s.strip()),
        I("str_replace", 3, True, lambda ctx, s, a, b: s.replace(a, b)),
        I("str_lower", 1, True, lambda ctx, s: s.lower()),
        I("str_upper", 1, True, lambda ctx, s: s.upper()),
        I("str_startsWith", 2, True, lambda ctx, s, p: s.startswith(p)),
        I("str_endsWith", 2, True, lambda ctx, s, p: s.endswith(p)),
        I("str_contains", 2, True, lambda ctx, s, t: t in s),
        I("str_join", 2, True, _str_join),
        I("str_repeat", 2, True, lambda ctx, s, n: s * max(n, 0)),
        I("str_compare", 2, True,
          lambda ctx, a, b: -1 if a < b else (1 if a > b else 0)),
        I("str_hash", 1, True, _java_string_hash),
        I("parse_int", 1, True, _parse_int),
        I("parse_double", 1, True, _parse_double),
        I("itos", 1, True, lambda ctx, i: str(i)),
        I("dtos", 1, True, lambda ctx, d: jx_str(float(d))),
        # -- math --
        I("math_sqrt", 1, True, lambda ctx, x: math.sqrt(x)),
        I("math_log", 1, True, lambda ctx, x: math.log(x)),
        I("math_exp", 1, True, lambda ctx, x: math.exp(x)),
        I("math_pow", 2, True, lambda ctx, x, y: math.pow(x, y)),
        I("math_floor", 1, True, lambda ctx, x: _floor_div_double(x)),
        I("math_ceil", 1, True, lambda ctx, x: math.ceil(x)),
        I("math_abs", 1, True, lambda ctx, x: abs(float(x))),
        I("math_iabs", 1, True, lambda ctx, x: abs(int(x))),
        I("math_imin", 2, True, lambda ctx, a, b: min(a, b)),
        I("math_imax", 2, True, lambda ctx, a, b: max(a, b)),
        I("math_dmin", 2, True, lambda ctx, a, b: min(a, b)),
        I("math_dmax", 2, True, lambda ctx, a, b: max(a, b)),
        I("math_round", 1, True, lambda ctx, x: int(math.floor(x + 0.5))),
        # -- rng --
        I("rand_seed", 1, False, lambda ctx, s: ctx.rand_seed(s)),
        I("rand_int", 1, True, lambda ctx, n: ctx.rand_int(n)),
        I("rand_double", 0, True, lambda ctx: ctx.rand_double()),
    ]
    return {i.name: i for i in table}


#: The global intrinsic registry, keyed by intrinsic name.
INTRINSICS: dict[str, Intrinsic] = _build_table()


def intrinsic_returns() -> dict[str, bool]:
    """Name → pushes-a-result map, consumed by the bytecode verifier."""
    return {name: i.returns for name, i in INTRINSICS.items()}
