"""Class loading and linking.

Turns a verified :class:`~repro.bytecode.classfile.ProgramUnit` into
runtime structures:

* :class:`RuntimeClass` — field layout, vtable layout, class TIB, IMT;
* :class:`RuntimeMethod` — one per declared method, holding the current
  general compiled method, per-hot-state special compiled methods, and
  the shared sampling record;
* symbolic instruction operands resolved to slots/offsets/cells so the
  interpreter never re-resolves names (the constant-pool-resolution
  analog).

Linked state lives inside the instructions, so one ProgramUnit belongs
to exactly one VM.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.bytecode.classfile import (
    ClassInfo,
    FieldInfo,
    MethodInfo,
    ProgramUnit,
    STATIC_INIT_NAME,
)
from repro.bytecode.opcodes import Op
from repro.vm.compiled import BaselineCompiled, CompiledMethod, MethodSamples
from repro.vm.imt import IMT, DirectEntry, imt_slot_for
from repro.vm.intrinsics import INTRINSICS
from repro.vm.jtoc import JTOC, JTOCMethodCell
from repro.vm.tib import TIB, TIBSpaceTracker
from repro.vm.values import VMObject


class LinkError(Exception):
    """Raised when a program cannot be linked."""


class RuntimeMethod:
    """Runtime record for one declared method."""

    __slots__ = (
        "info",
        "rclass",
        "samples",
        "compiled",
        "general",
        "specials",
        "vtable_offset",
        "jtoc_cell",
        "ctor_exit_hook",
        "is_mutable",
        "num_state_fields",
        "compile_history",
        "quick_code",
        "quick_pad",
        "osr_entries",
    )

    def __init__(self, info: MethodInfo, rclass: "RuntimeClass") -> None:
        self.info = info
        self.rclass = rclass
        self.samples = MethodSamples()
        self.compiled: CompiledMethod = BaselineCompiled(self)
        #: The current *general* compiled method.  ``compiled`` is the
        #: pointer invokespecial dispatches through; for private methods
        #: of static-only mutable classes the manager may swap it to a
        #: specialized version (paper §3.2.3), while ``general`` always
        #: tracks the unspecialized code.
        self.general: CompiledMethod = self.compiled
        self.num_state_fields = 0
        #: hot-state key -> special CompiledMethod (paper §3.2.2).
        self.specials: dict[Any, CompiledMethod] = {}
        self.vtable_offset = -1
        self.jtoc_cell: JTOCMethodCell | None = None
        #: Mutation-manager callback run when a constructor returns.
        self.ctor_exit_hook: Any = None
        self.is_mutable = False
        #: (opt_level, wall seconds) per recompilation, for Fig. 11.
        self.compile_history: list[tuple[int, float]] = []
        #: Quickened body (:mod:`repro.bytecode.quicken`): a runtime-only
        #: shadow of ``info.code`` with inline-cache call/field sites and
        #: fused superinstructions; ``None`` when quickening is off.
        self.quick_code: list | None = None
        #: Precomputed ``[None] * (max_locals - num_args)`` so the
        #: quickened frame prologue builds its locals with one concat.
        self.quick_pad: list | None = None
        #: OSR entry-point cache (:mod:`repro.vm.osr`): back-edge pc ->
        #: continuation callable, or ``False`` for pcs proven
        #: ineligible; ``None`` until the first OSR attempt.
        self.osr_entries: dict[int, Any] | None = None

    @property
    def qualified_name(self) -> str:
        return self.info.qualified_name

    def __repr__(self) -> str:
        return f"<RuntimeMethod {self.qualified_name}>"


class RuntimeClass:
    """Runtime record for one class or interface."""

    def __init__(self, info: ClassInfo) -> None:
        self.info = info
        self.name = info.name
        self.super_rc: RuntimeClass | None = None
        self.is_interface = info.is_interface
        #: All supertype names (self + classes + interfaces, transitive).
        self.all_supertypes: frozenset[str] = frozenset()
        #: Instance field name -> slot.
        self.field_layout: dict[str, int] = {}
        self.num_fields = 0
        self.field_defaults: list[Any] = []
        #: Method key -> vtable offset (public/default instance methods).
        self.vtable_layout: dict[str, int] = {}
        #: RuntimeMethod currently occupying each vtable offset.
        self.vtable_rms: list[RuntimeMethod] = []
        self.class_tib: TIB | None = None
        #: hot-state key -> special TIB (mutation-manager managed).
        self.special_tibs: dict[Any, TIB] = {}
        self.imt: IMT | None = None
        self.imt_slot_of: dict[str, int] = {}
        #: All methods declared by this class, keyed by method key.
        self.own_methods: dict[str, RuntimeMethod] = {}
        self.initialized = False
        #: Set by the mutation manager when this class is mutable.
        self.mutable_info: Any = None
        #: Packed-layout accounting (repro.vm.shapes): modeled bytes of
        #: one instance, its declared-field baseline, the pinned-state
        #: size, and which trailing slots pinning shapes drop.  ``None``
        #: / empty until ``install_shapes`` runs.
        self.alloc_bytes: int | None = None
        self.declared_bytes: int | None = None
        self.pinned_alloc_bytes: int | None = None
        self.pin_slots: tuple = ()

    def allocate(self, vm: Any) -> VMObject:
        """Allocate an instance with default-initialized fields."""
        obj = VMObject(self.class_tib, self.num_fields)
        obj.fields[:] = self.field_defaults
        vm.heap.record_object(
            self.name, self.num_fields, self.alloc_bytes, self.declared_bytes
        )
        return obj

    def is_subtype_of(self, name: str) -> bool:
        return name in self.all_supertypes

    def __repr__(self) -> str:
        kind = "interface" if self.is_interface else "class"
        return f"<RuntimeClass {kind} {self.name}>"


class Linker:
    """Builds all runtime structures for one program."""

    def __init__(self, unit: ProgramUnit) -> None:
        self.unit = unit
        self.jtoc = JTOC()
        self.classes: dict[str, RuntimeClass] = {}
        self.tib_space = TIBSpaceTracker()

    # ------------------------------------------------------------------

    def link(self) -> None:
        for cls in self._topo_order():
            self._link_class(cls)
        for rc in self.classes.values():
            self._resolve_code(rc)

    def _topo_order(self) -> Iterator[ClassInfo]:
        """Classes with supers before subclasses (interfaces first)."""
        emitted: set[str] = set()

        def emit(cls: ClassInfo) -> Iterator[ClassInfo]:
            if cls.name in emitted:
                return
            if cls.super_name:
                sup = self.unit.classes.get(cls.super_name)
                if sup is None:
                    raise LinkError(
                        f"{cls.name}: unknown superclass {cls.super_name}"
                    )
                yield from emit(sup)
            for iname in cls.interface_names:
                iface = self.unit.classes.get(iname)
                if iface is None:
                    raise LinkError(
                        f"{cls.name}: unknown interface {iname}"
                    )
                yield from emit(iface)
            if cls.name not in emitted:
                emitted.add(cls.name)
                yield cls

        for cls in self.unit.classes.values():
            yield from emit(cls)

    # ------------------------------------------------------------------

    def _link_class(self, info: ClassInfo) -> None:
        rc = RuntimeClass(info)
        self.classes[info.name] = rc
        supertypes = {info.name}
        if info.super_name:
            rc.super_rc = self.classes[info.super_name]
            supertypes |= rc.super_rc.all_supertypes
        for iname in info.interface_names:
            supertypes |= self.classes[iname].all_supertypes
        rc.all_supertypes = frozenset(supertypes)

        if info.is_interface:
            return

        # -- field layout --------------------------------------------------
        if rc.super_rc is not None:
            rc.field_layout = dict(rc.super_rc.field_layout)
            rc.field_defaults = list(rc.super_rc.field_defaults)
        rc.num_fields = len(rc.field_layout)
        for finfo in info.fields.values():
            if finfo.is_static:
                finfo.slot = self.jtoc.add_field(
                    info.name, finfo.name, finfo.type.default_value()
                )
                continue
            if finfo.name in rc.field_layout:
                raise LinkError(
                    f"{info.name}.{finfo.name} shadows an inherited field"
                )
            finfo.slot = rc.num_fields
            rc.field_layout[finfo.name] = finfo.slot
            rc.field_defaults.append(finfo.type.default_value())
            rc.num_fields += 1

        # -- runtime methods -----------------------------------------------
        for key, minfo in info.methods.items():
            rm = RuntimeMethod(minfo, rc)
            rc.own_methods[key] = rm
            if minfo.is_static:
                rm.jtoc_cell = self.jtoc.add_method(
                    info.name, key, rm.compiled
                )

        # -- vtable ----------------------------------------------------------
        if rc.super_rc is not None:
            rc.vtable_layout = dict(rc.super_rc.vtable_layout)
            rc.vtable_rms = list(rc.super_rc.vtable_rms)
        for key, minfo in info.methods.items():
            if minfo.is_static or minfo.is_constructor or minfo.is_private:
                continue
            rm = rc.own_methods[key]
            if key in rc.vtable_layout:
                offset = rc.vtable_layout[key]
                rc.vtable_rms[offset] = rm
            else:
                offset = len(rc.vtable_rms)
                rc.vtable_layout[key] = offset
                rc.vtable_rms.append(rm)
            rm.vtable_offset = offset

        # Inherited methods keep their superclass offset on their own rm.
        for offset, rm in enumerate(rc.vtable_rms):
            if rm.vtable_offset < 0:
                rm.vtable_offset = offset

        # -- TIB and IMT --------------------------------------------------------
        rc.class_tib = TIB(
            type_info=rc,
            entries=[rm.compiled for rm in rc.vtable_rms],
        )
        rc.imt = IMT()
        iface_keys = self._interface_method_keys(info)
        entries: dict[str, DirectEntry] = {}
        for key in iface_keys:
            offset = rc.vtable_layout.get(key)
            if offset is None:
                raise LinkError(
                    f"{info.name} lacks interface method {key!r}"
                )
            entries[key] = DirectEntry(rc.vtable_rms[offset].compiled)
        rc.imt_slot_of = rc.imt.install_all(entries)
        rc.class_tib.imt = rc.imt
        self.tib_space.record_class_tib(rc.class_tib)

    def _interface_method_keys(self, info: ClassInfo) -> set[str]:
        """All interface-method keys this class must answer to."""
        keys: set[str] = set()
        cur: ClassInfo | None = info
        while cur is not None:
            work = list(cur.interface_names)
            seen: set[str] = set()
            while work:
                iname = work.pop()
                if iname in seen:
                    continue
                seen.add(iname)
                iface = self.unit.classes[iname]
                keys.update(iface.methods.keys())
                work.extend(iface.interface_names)
            cur = (
                self.unit.classes.get(cur.super_name)
                if cur.super_name
                else None
            )
        return keys

    # ------------------------------------------------------------------

    def _resolve_code(self, rc: RuntimeClass) -> None:
        for rm in rc.own_methods.values():
            if rm.info.is_abstract:
                continue
            for instr in rm.info.code:
                self._resolve_instr(instr, rm)

    def _resolve_instr(self, instr, rm: RuntimeMethod) -> None:
        op = instr.op
        if op in (Op.GETFIELD, Op.PUTFIELD):
            cls_name, field_name = instr.arg
            finfo = self.unit.lookup_field(cls_name, field_name)
            if finfo is None or finfo.is_static:
                raise LinkError(
                    f"{rm.qualified_name}: unresolved instance field "
                    f"{cls_name}.{field_name}"
                )
            instr.resolved = finfo.slot
        elif op in (Op.GETSTATIC, Op.PUTSTATIC):
            cls_name, field_name = instr.arg
            finfo = self.unit.lookup_field(cls_name, field_name)
            if finfo is None or not finfo.is_static:
                raise LinkError(
                    f"{rm.qualified_name}: unresolved static field "
                    f"{cls_name}.{field_name}"
                )
            instr.resolved = finfo.slot
        elif op is Op.INVOKEVIRTUAL:
            cls_name, key, _ = instr.arg
            target_rc = self.classes[cls_name]
            offset = target_rc.vtable_layout.get(key)
            if offset is None:
                raise LinkError(
                    f"{rm.qualified_name}: no virtual method "
                    f"{cls_name}.{key}"
                )
            returns = self._returns(target_rc.vtable_rms[offset])
            instr.resolved = (offset, returns)
        elif op is Op.INVOKESPECIAL:
            cls_name, key, _ = instr.arg
            target_rm = self._find_declared(cls_name, key)
            if target_rm is None:
                raise LinkError(
                    f"{rm.qualified_name}: no special-invokable method "
                    f"{cls_name}.{key}"
                )
            instr.resolved = (target_rm, self._returns(target_rm))
        elif op is Op.INVOKESTATIC:
            cls_name, key, _ = instr.arg
            target_rm = self._find_declared(cls_name, key)
            if target_rm is None or target_rm.jtoc_cell is None:
                raise LinkError(
                    f"{rm.qualified_name}: no static method {cls_name}.{key}"
                )
            instr.resolved = (target_rm.jtoc_cell, self._returns(target_rm))
        elif op is Op.INVOKEINTERFACE:
            iface_name, key, _ = instr.arg
            target = self.unit.lookup_method(iface_name, key)
            if target is None:
                target = self._iface_lookup(iface_name, key)
            if target is None:
                raise LinkError(
                    f"{rm.qualified_name}: no interface method "
                    f"{iface_name}.{key}"
                )
            returns = target.return_type.name != "void"
            instr.resolved = (imt_slot_for(key), key, returns)
        elif op is Op.NEW:
            instr.resolved = self.classes[instr.arg]
        elif op is Op.NEWARRAY:
            from repro.bytecode.classfile import JxType

            type_str = instr.arg
            dims = 0
            base = type_str
            while base.endswith("[]"):
                base = base[:-2]
                dims += 1
            instr.resolved = JxType(base, dims).default_value()
        elif op in (Op.INSTANCEOF, Op.CHECKCAST):
            instr.resolved = self.classes[instr.arg]
        elif op is Op.INTRINSIC:
            name, _ = instr.arg
            instr.resolved = INTRINSICS[name]

    @staticmethod
    def _returns(target_rm: RuntimeMethod) -> bool:
        return target_rm.info.return_type.name != "void"

    def _iface_lookup(self, iface_name: str, key: str) -> MethodInfo | None:
        iface = self.unit.classes.get(iface_name)
        if iface is None:
            return None
        if key in iface.methods:
            return iface.methods[key]
        for sup in iface.interface_names:
            found = self._iface_lookup(sup, key)
            if found is not None:
                return found
        return None

    def _find_declared(self, cls_name: str, key: str) -> RuntimeMethod | None:
        """Find ``key`` declared in ``cls_name`` or the nearest superclass."""
        rc: RuntimeClass | None = self.classes.get(cls_name)
        while rc is not None:
            if key in rc.own_methods:
                return rc.own_methods[key]
            rc = rc.super_rc
        return None


def static_initializers(classes: dict[str, RuntimeClass]) -> list[RuntimeMethod]:
    """All <clinit> methods in deterministic (linked) class order."""
    out = []
    for rc in classes.values():
        rm = rc.own_methods.get(STATIC_INIT_NAME)
        if rm is not None:
            out.append(rm)
    return out
