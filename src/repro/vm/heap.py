"""Heap accounting.

JxVM does not implement a collector (Python's GC owns object lifetime);
what the reproduction needs from the memory system is *accounting*:
per-class allocation counts and modeled byte volumes, used by the
workload reports and to sanity-check that the SPECjbb2005 port really is
more allocation-heavy than SPECjbb2000 (paper §7.1).

With shapes on (:mod:`repro.vm.shapes`) objects are charged their
packed-layout size at allocation; the declared-field size is tracked
alongside so one run can report the packing savings.  Hot-state
pinning moves bytes at TIB-swap time: entering a hot state drops the
pinned tail (``pinned_bytes_dropped``), leaving it rematerializes
(``pinned_bytes_restored``); :meth:`HeapStats.modeled_object_bytes`
nets the three.  Arrays are charged per element *width* — an ``int``
array element is 4 modeled bytes, a ``boolean``/``byte`` element 1 —
not a flat machine word per element.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Modeled object header: TIB pointer + status word.
OBJECT_HEADER_BYTES = 16
WORD_BYTES = 8

#: Modeled array-element widths by element-type name; class references,
#: strings, arrays-of-arrays, and unknown types are one machine word.
ARRAY_ELEM_WIDTH_BYTES = {
    "int": 4,
    "boolean": 1,
    "byte": 1,
    "char": 2,
    "double": 8,
    "long": 8,
}


def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass
class HeapStats:
    """Aggregate allocation statistics."""

    objects_allocated: int = 0
    arrays_allocated: int = 0
    #: Modeled object bytes as charged at allocation (packed sizes when
    #: shapes are on, declared sizes otherwise).
    object_bytes: int = 0
    #: What the same objects would cost under declared-field accounting
    #: (header + one word per declared field) — the packing baseline.
    declared_object_bytes: int = 0
    array_bytes: int = 0
    per_class: dict[str, int] = field(default_factory=dict)
    per_class_bytes: dict[str, int] = field(default_factory=dict)
    #: Bytes dropped by layout transitions into pinning shapes.
    pinned_bytes_dropped: int = 0
    #: Bytes rematerialized by transitions back out (or by writes to
    #: pinned slots).
    pinned_bytes_restored: int = 0
    #: Layout transitions that physically moved storage (each one is
    #: paired with a TIB swap at the same site).
    shape_transitions: int = 0

    @property
    def bytes_allocated(self) -> int:
        """Total modeled allocation volume (objects + arrays)."""
        return self.object_bytes + self.array_bytes

    def record_object(
        self,
        class_name: str,
        num_fields: int,
        size_bytes: int | None = None,
        declared_bytes: int | None = None,
    ) -> None:
        if size_bytes is None:
            size_bytes = OBJECT_HEADER_BYTES + num_fields * WORD_BYTES
        if declared_bytes is None:
            declared_bytes = size_bytes
        self.objects_allocated += 1
        self.object_bytes += size_bytes
        self.declared_object_bytes += declared_bytes
        self.per_class[class_name] = self.per_class.get(class_name, 0) + 1
        self.per_class_bytes[class_name] = (
            self.per_class_bytes.get(class_name, 0) + size_bytes
        )

    def record_array(self, length: int, elem_type: str | None = None) -> None:
        width = ARRAY_ELEM_WIDTH_BYTES.get(elem_type, WORD_BYTES)
        self.arrays_allocated += 1
        self.array_bytes += OBJECT_HEADER_BYTES + _align8(length * width)

    def modeled_object_bytes(self) -> int:
        """Live modeled object volume: allocation charges net of the
        pinned-tail bytes currently dropped by hot-state shapes."""
        return (
            self.object_bytes
            - self.pinned_bytes_dropped
            + self.pinned_bytes_restored
        )

    def top_classes(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most-allocated classes, descending."""
        return sorted(
            self.per_class.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]

    def top_classes_by_bytes(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` classes with the most modeled bytes, descending."""
        return sorted(
            self.per_class_bytes.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]
