"""Heap accounting.

JxVM does not implement a collector (Python's GC owns object lifetime);
what the reproduction needs from the memory system is *accounting*:
per-class allocation counts and modeled byte volumes, used by the
workload reports and to sanity-check that the SPECjbb2005 port really is
more allocation-heavy than SPECjbb2000 (paper §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Modeled object header: TIB pointer + status word.
OBJECT_HEADER_BYTES = 16
WORD_BYTES = 8


@dataclass
class HeapStats:
    """Aggregate allocation statistics."""

    objects_allocated: int = 0
    arrays_allocated: int = 0
    bytes_allocated: int = 0
    per_class: dict[str, int] = field(default_factory=dict)

    def record_object(self, class_name: str, num_fields: int) -> None:
        self.objects_allocated += 1
        self.bytes_allocated += OBJECT_HEADER_BYTES + num_fields * WORD_BYTES
        self.per_class[class_name] = self.per_class.get(class_name, 0) + 1

    def record_array(self, length: int) -> None:
        self.arrays_allocated += 1
        self.bytes_allocated += OBJECT_HEADER_BYTES + length * WORD_BYTES

    def top_classes(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most-allocated classes, descending."""
        return sorted(
            self.per_class.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]
