"""Compiled-code installation.

When the adaptive system produces a new *general* compiled method, every
table that referenced the old one must be patched (paper §3.2.1: "When a
new compiled method is generated for a method, the existing compiled
method is replaced and invalidated"):

* the JTOC cell, for static methods;
* the declaring class's TIB and — per paper Fig. 5 — the subclasses'
  TIBs when the method is not private and not overridden (our vtable
  sharing makes that exactly the classes whose vtable slot still holds
  this RuntimeMethod);
* the class's special TIBs (they receive the *general* code here; the
  mutation manager re-applies special code afterwards per Fig. 5);
* direct IMT entries (non-mutable classes only; mutable classes use
  offset entries that track the TIB automatically).

Constructors and private instance methods are invoked through the
RuntimeMethod record (the ``invokespecial`` path), so updating
``rm.compiled`` suffices for them.
"""

from __future__ import annotations

from typing import Any


class CodeInstaller:
    """Patches dispatch tables when compiled methods are replaced."""

    def __init__(self, vm: Any) -> None:
        self.vm = vm

    def install_general(self, rm: Any, new_cm: Any) -> None:
        """Make ``new_cm`` the method's one valid general compiled method.

        Every install path here patches table entries *in place* (TIB
        identities unchanged), so quickened call sites must drop their
        cached targets — the paper's swap-as-invalidation trick only
        covers TIB-pointer moves, not entry overwrites.
        """
        rm.compiled = new_cm
        rm.general = new_cm
        info = rm.info
        if info.is_static:
            if rm.jtoc_cell is not None:
                rm.jtoc_cell.compiled = new_cm
            return
        offset = rm.vtable_offset
        if offset < 0:
            return  # constructor / private: reached via rm.compiled
        key = info.key
        for rc in self.vm.classes.values():
            if rc.is_interface or offset >= len(rc.vtable_rms):
                continue
            if rc.vtable_rms[offset] is not rm:
                continue
            rc.class_tib.entries[offset] = new_cm
            for tib in rc.special_tibs.values():
                tib.entries[offset] = new_cm
            if key in rc.imt_slot_of:
                rc.imt.patch_direct(key, new_cm)
        self.vm.flush_inline_caches()

    def install_special_in_tib(self, rc: Any, rm: Any, state_key: Any,
                               special_cm: Any) -> None:
        """Point one special TIB's entry for ``rm`` at specialized code."""
        tib = rc.special_tibs[state_key]
        tib.entries[rm.vtable_offset] = special_cm
        self.vm.flush_inline_caches()

    def reset_special_tib_entry(self, rc: Any, rm: Any, state_key: Any) -> None:
        """Point one special TIB's entry back at the general code."""
        tib = rc.special_tibs[state_key]
        tib.entries[rm.vtable_offset] = rm.compiled
        self.vm.flush_inline_caches()
