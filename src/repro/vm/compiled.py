"""Compiled methods and sampling.

JxVM mirrors Jikes RVM's compile-only model (paper §3.2.1):

* every method has exactly one valid *general* compiled method at a time;
* recompilation replaces it and patches every table that referenced it
  (class TIB, subclass TIBs, special TIBs, JTOC);
* a mutable method can additionally have one *special* compiled method
  per hot state, generated when the general method is recompiled at the
  top optimization level (paper Fig. 5);
* sampling information lives on the :class:`MethodSamples` object owned
  by the method — shared by the general and all special compiled methods,
  so specialization does not dilute hotness (paper §3.2.3, last
  paragraph).

Execution tiers:

====== ============================== =======================
level  class                          engine
====== ============================== =======================
opt0   :class:`BaselineCompiled`      bytecode interpreter
opt1   :class:`OptCompiled`           optimized-IR interpreter
opt2   :class:`OptCompiled`           generated Python code
====== ============================== =======================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.vm.adaptive import ENTRY_TICKS, NEVER
from repro.vm.interpreter import interpret, interpret_quick

if TYPE_CHECKING:  # pragma: no cover
    from repro.bytecode.classfile import MethodInfo

__all__ = [
    # Re-exported for existing importers; the single definitions live in
    # repro.vm.adaptive (see AdaptiveConfig.ENTRY_TICKS).
    "NEVER",
    "ENTRY_TICKS",
    "MethodSamples",
    "CompiledMethod",
    "BaselineCompiled",
    "OptCompiled",
]


class MethodSamples:
    """Hotness counters for one source method (shared across versions)."""

    __slots__ = ("ticks", "threshold", "invocations")

    def __init__(self, threshold: int = NEVER) -> None:
        self.ticks = 0
        self.invocations = 0
        self.threshold = threshold


class CompiledMethod:
    """Base class for one executable version of a method."""

    opt_level = -1

    def __init__(self, rm: Any, specialized_state: Any = None,
                 code_size_bytes: int = 0) -> None:
        self.rm = rm
        self.specialized_state = specialized_state
        self.code_size_bytes = code_size_bytes

    @property
    def is_special(self) -> bool:
        return self.specialized_state is not None

    def invoke(self, vm: Any, args: list[Any]) -> Any:
        raise NotImplementedError

    def describe(self) -> str:
        tag = (
            f" specialized[{self.specialized_state}]"
            if self.is_special
            else ""
        )
        return f"{self.rm.info.qualified_name}@opt{self.opt_level}{tag}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class BaselineCompiled(CompiledMethod):
    """opt0: directly interprets the method's bytecode."""

    opt_level = 0

    def __init__(self, rm: Any) -> None:
        # Model baseline code size as proportional to bytecode length;
        # baseline code is excluded from the Fig. 10 opt-code-size metric.
        super().__init__(rm, code_size_bytes=len(rm.info.code) * 4)

    def invoke(self, vm: Any, args: list[Any]) -> Any:
        rm = self.rm
        samples = rm.samples
        samples.invocations += 1
        samples.ticks += ENTRY_TICKS
        if samples.ticks >= samples.threshold:
            vm.adaptive.on_hot(rm)
        run = interpret if rm.quick_code is None else interpret_quick
        tel = vm.telemetry
        if tel is not None and tel.enabled:
            # Interpreter-tick accounting: entry ticks here, backedge
            # ticks as the delta accumulated while interpreting.
            tel.count("dispatch.opt0")
            before = samples.ticks
            result = run(vm, rm, args)
            tel.count("interp.ticks",
                      ENTRY_TICKS + samples.ticks - before)
        else:
            result = run(vm, rm, args)
        hook = rm.ctor_exit_hook
        if hook is not None:
            hook(vm, args[0])
        return result


class OptCompiled(CompiledMethod):
    """opt1/opt2: runs an executor produced by the optimizing compiler.

    The executor signature is ``executor(vm, args) -> value``.
    """

    def __init__(
        self,
        rm: Any,
        executor: Callable[[Any, list[Any]], Any],
        opt_level: int,
        specialized_state: Any = None,
        code_size_bytes: int = 0,
        ir: Any = None,
        source_text: str = "",
    ) -> None:
        super().__init__(rm, specialized_state, code_size_bytes)
        self.executor = executor
        self.opt_level = opt_level
        self.ir = ir
        self.source_text = source_text
        # Final-tier direct dispatch: a method compiled after its
        # promotion threshold was retired (NEVER), with no constructor
        # hook, needs neither sampling nor post-processing — its invoke
        # can be the executor itself, saving one Python frame per call.
        # (VM stack-trace annotation for this frame is skipped; callers
        # still annotate theirs.)
        if rm.samples.threshold == NEVER and rm.ctor_exit_hook is None:
            self.invoke = executor  # type: ignore[method-assign]

    def invoke(self, vm: Any, args: list[Any]) -> Any:
        rm = self.rm
        samples = rm.samples
        # Final-tier fast path: once no further promotion is possible,
        # skip the sampling counters (call counts stop accumulating at
        # the final tier; profiling always runs on the baseline tier).
        if samples.threshold != NEVER:
            samples.invocations += 1
            samples.ticks += ENTRY_TICKS
            if samples.ticks >= samples.threshold:
                vm.adaptive.on_hot(rm)
        tel = vm.telemetry
        if tel is not None and tel.enabled:
            tel.count(f"dispatch.opt{self.opt_level}")
        try:
            result = self.executor(vm, args)
        except Exception as exc:  # annotate the VM stack trace
            self._annotate(exc)
            raise
        hook = rm.ctor_exit_hook
        if hook is not None:
            hook(vm, args[0])
        return result

    def _annotate(self, exc: Exception) -> None:
        from repro.vm.interpreter import JxStackTrace
        from repro.vm.values import VMRuntimeError

        frame = f"{self.rm.info.qualified_name} (opt{self.opt_level})"
        if isinstance(exc, JxStackTrace):
            exc.frames.append(frame)
        elif isinstance(exc, VMRuntimeError):
            raise JxStackTrace(exc, [frame]) from exc
