"""The JTOC — Jikes Table of Contents.

Jikes RVM keeps all static state reachable from one global table: static
field slots and pointers to the compiled code of static methods (paper
§3.2.1).  The distributed mutation algorithm patches static-method
compiled-code pointers *here* (paper Fig. 4/5), so static method calls in
JxVM likewise indirect through a :class:`JTOCMethodCell`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.compiled import CompiledMethod


class JTOCMethodCell:
    """One static method's compiled-code pointer in the JTOC."""

    __slots__ = ("compiled", "qualified_name")

    def __init__(self, qualified_name: str, compiled: "CompiledMethod") -> None:
        self.qualified_name = qualified_name
        self.compiled = compiled

    def __repr__(self) -> str:
        return f"<JTOC cell {self.qualified_name}>"


class JTOC:
    """Static field storage plus static-method code pointers."""

    def __init__(self) -> None:
        self.fields: list[Any] = []
        self._field_index: dict[tuple[str, str], int] = {}
        self._method_cells: dict[tuple[str, str], JTOCMethodCell] = {}

    # -- static fields ------------------------------------------------------

    def add_field(self, class_name: str, field_name: str, initial: Any) -> int:
        """Reserve a slot for a static field; returns the slot index."""
        key = (class_name, field_name)
        if key in self._field_index:
            raise ValueError(f"duplicate static field {key}")
        index = len(self.fields)
        self.fields.append(initial)
        self._field_index[key] = index
        return index

    def field_slot(self, class_name: str, field_name: str) -> int:
        return self._field_index[(class_name, field_name)]

    def get(self, slot: int) -> Any:
        return self.fields[slot]

    def set(self, slot: int, value: Any) -> None:
        self.fields[slot] = value

    # -- static methods ------------------------------------------------------

    def add_method(
        self, class_name: str, key: str, compiled: "CompiledMethod"
    ) -> JTOCMethodCell:
        cell = JTOCMethodCell(f"{class_name}.{key}", compiled)
        self._method_cells[(class_name, key)] = cell
        return cell

    def method_cell(self, class_name: str, key: str) -> JTOCMethodCell:
        return self._method_cells[(class_name, key)]

    def method_cells(self) -> list[JTOCMethodCell]:
        return list(self._method_cells.values())

    @property
    def num_field_slots(self) -> int:
        return len(self.fields)


class JTOCView:
    """A per-session view of a base JTOC (``repro.server``).

    Static *method cells* are immutable program structure once the code
    space is frozen, so they are shared with the base table; static
    *field storage* is per-session mutable state, so each view owns a
    private ``fields`` list initialized from the pristine (pre-clinit)
    values — a session then runs its own ``<clinit>`` against it.

    The attribute surface matches :class:`JTOC` exactly (``fields``,
    ``get``/``set``, ``field_slot``, ``method_cell``…), so the
    interpreter and generated opt2 code (``_sf = vm.jtoc.fields``) are
    oblivious to which one they run against.
    """

    __slots__ = ("base", "fields")

    def __init__(self, base: JTOC, pristine_fields: list[Any]) -> None:
        self.base = base
        self.fields: list[Any] = list(pristine_fields)

    # -- static fields (private storage) ------------------------------------

    def field_slot(self, class_name: str, field_name: str) -> int:
        return self.base.field_slot(class_name, field_name)

    def get(self, slot: int) -> Any:
        return self.fields[slot]

    def set(self, slot: int, value: Any) -> None:
        self.fields[slot] = value

    # -- static methods (shared cells) --------------------------------------

    def method_cell(self, class_name: str, key: str) -> JTOCMethodCell:
        return self.base.method_cell(class_name, key)

    def method_cells(self) -> list[JTOCMethodCell]:
        return self.base.method_cells()

    @property
    def num_field_slots(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:
        return f"<JTOCView of {self.base!r}>"
