"""On-stack replacement: mid-frame tier transfer in both directions.

Without OSR, a frame finishes in the tier it *started* in: a
single-invocation hot loop interprets forever even after the adaptive
system recompiled its method, and a specialized (TIB-speculating) frame
that invalidates its own speculation mid-loop keeps running unguarded
code.  This module adds both transfers:

* **enter** (opt0 -> compiled) — when an interpreter back-edge crosses
  the promotion threshold and the operand stack is empty, the live frame
  (the locals list; the pc is the back-edge target) is handed to an *OSR
  continuation*: the same method lowered normally, but with the IR entry
  repointed at the loop-header block and every local turned into a
  parameter (:func:`repro.opt.lowering.lower_method_osr`).  Dead locals
  are nulled from the instruction-level liveness analysis
  (:mod:`repro.analysis.liveness`) so the transferred frame carries no
  stale state.  Continuations compile at the *final* tier directly: the
  frame has already proven itself hot, and re-entering the gradual
  opt1 -> opt2 ladder mid-frame would strand a single-invocation frame
  at opt1 forever (generated code has no back-edge counters to climb
  out on).

* **deopt** (specialized -> opt0) — specialized code elides state
  dispatch with **no value guards** (paper §2.2); the TIB-swap protocol
  keeps *future invocations* correct, but a frame that swaps its own
  receiver's TIB mid-loop is speculating on a stale state for the rest
  of the frame.  The specializer therefore plants ``deoptcheck``
  instructions after each re-evaluating state write on ``this``
  (:func:`insert_deopt_points`): if the receiver's TIB moved, the frame
  bails to :func:`deopt_to_interpreter`, which resumes the bytecode
  interpreter at the recorded pc with the reconstructed locals.  Both
  continuing and deopting are behaviorally correct (the specializer
  never folds self-written fields), which is exactly what makes the
  differential tests able to compare ``JX_OSR`` on/off byte-for-byte.

Frame mapping is trivial by construction: transfers happen only at pcs
where the operand stack is provably empty (loop back-edge targets, and
post-store pcs recorded by the lowerer only at depth 0), so the frame
*is* the locals list.  Quickening is slot- and pc-preserving, so frames
captured in ``interpret_quick`` transfer with the same coordinates.

Sessions of a shared code space never OSR-enter (their thresholds are
frozen at NEVER), but deopt guards baked into shared specialized code
work per-session: the invoking ``vm`` arrives at runtime, so counters
and the resumed interpreter frame are charged to the right tenant.
"""

from __future__ import annotations

import time
from typing import Any

from repro.analysis.liveness import live_locals
from repro.opt.ir import Extra, IRFunction, IRInstr, Reg
from repro.telemetry.core import maybe as _tel_maybe
from repro.vm.adaptive import CompileEvent
from repro.vm.interpreter import interpret

__all__ = ["OSRManager", "deopt_to_interpreter", "insert_deopt_points"]


class OSRManager:
    """Builds and caches OSR entry continuations for one VM.

    Created by the VM when ``VMConfig.osr`` is on; shared by every
    session of a code space (continuations, like all compiled code, are
    program-world state).
    """

    def __init__(self, vm: Any) -> None:
        self.vm = vm

    def entry_for(self, rm: Any, pc: int) -> Any:
        """The continuation for entering ``rm`` mid-frame at ``pc``, or
        ``None`` when the pc is ineligible or the compile failed.

        The result is cached on the RuntimeMethod (``False`` marks a pc
        proven ineligible so it is never retried)."""
        entries = rm.osr_entries
        if entries is None:
            entries = rm.osr_entries = {}
        if pc in entries:
            cached = entries[pc]
            return cached if cached is not False else None
        built = self._build_entry(rm, pc)
        entries[pc] = built if built is not None else False
        return built

    # ------------------------------------------------------------------

    def _build_entry(self, rm: Any, pc: int) -> Any:
        vm = self.vm
        cfg = vm.adaptive.config
        level = 2 if cfg.max_opt_level >= 2 else 1
        # The compensation set: locals dead at the entry pc are nulled
        # so the transferred frame carries exactly the state the
        # abstract interpreter frame would.
        dead = tuple(
            i
            for i in range(rm.info.max_locals)
            if i not in live_locals(rm.info.code)[pc]
        )
        if getattr(vm.config, "tv", False):
            # Translation validation: the entry pc must be a
            # stack-depth-0 loop header and the compensation set must
            # agree with an independent liveness run; an unprovable
            # entry is rejected before paying for the compile (the
            # caller caches the permanent-miss sentinel).
            from repro.analysis.tv import check_osr_entry

            if not check_osr_entry(vm, rm, pc, dead):
                return None
        tel = _tel_maybe(vm.telemetry)
        qualified = rm.info.qualified_name
        if tel is not None:
            tel.emit(
                "compile_begin",
                method=qualified,
                opt_level=level,
                special=False,
                osr=True,
            )
        start = time.perf_counter()
        try:
            executor, code_size = vm.opt_compiler.compile_osr_continuation(
                rm, pc, level
            )
        except Exception:
            # An OSR miss must never take down a program the plain
            # interpreter would finish; the frame just keeps
            # interpreting.  (Promotion of *future* invocations is
            # unaffected — the general recompile already happened.)
            seconds = time.perf_counter() - start
            if tel is not None:
                tel.emit(
                    "compile_end",
                    dur=seconds,
                    method=qualified,
                    opt_level=level,
                    special=False,
                    code_size_bytes=0,
                    osr=True,
                    failed=True,
                )
                tel.count("osr.compile_failed")
            return None
        seconds = time.perf_counter() - start
        vm.compile_stats.record(
            CompileEvent(
                qualified_name=qualified,
                opt_level=level,
                seconds=seconds,
                code_size_bytes=code_size,
                num_versions=1,
            )
        )
        if tel is not None:
            tel.emit(
                "compile_end",
                dur=seconds,
                method=qualified,
                opt_level=level,
                special=False,
                code_size_bytes=code_size,
                osr=True,
            )
            tel.count(f"compile.count.opt{level}")
            tel.count("compile.code_bytes", code_size)

        def entry(
            vm: Any,
            locals_: list,
            _executor=executor,
            _rm=rm,
            _pc=pc,
            _level=level,
            _dead=dead,
        ) -> Any:
            vm.mutation_stats.osr_enters += 1
            tel = _tel_maybe(vm.telemetry)
            if tel is not None:
                tel.emit(
                    "osr_enter",
                    method=_rm.info.qualified_name,
                    pc=_pc,
                    to_level=_level,
                )
                tel.count("osr.enter")
            for i in _dead:
                locals_[i] = None
            return _executor(vm, locals_)

        # Validation record: the lint client re-proves the entry's
        # compensation set against an independent liveness run.
        entry.dead_locals = dead
        entry.entry_pc = pc
        return entry


def deopt_to_interpreter(vm: Any, rm: Any, pc: int, locals_: list) -> Any:
    """Resume ``rm`` in the bytecode interpreter at ``pc`` with the
    reconstructed ``locals_`` frame (the OSR exit / mid-frame deopt).

    Called from specialized code when a ``deoptcheck`` guard observes
    that the receiver's TIB moved off the specialized-for state.  No
    entry ticks are credited — this is the *same* frame continuing, not
    a new invocation — and the method's threshold is already retired
    (specials only exist at the top tier), so the resumed frame cannot
    ping-pong back into compiled code.
    """
    vm.mutation_stats.osr_deopts += 1
    tel = _tel_maybe(vm.telemetry)
    if tel is not None:
        tel.emit(
            "osr_deopt", method=rm.info.qualified_name, pc=pc
        )
        tel.count("osr.deopt")
    return interpret(vm, rm, locals_, pc)


def _reevaluates(hook: Any) -> bool:
    """Whether a state-write hook can swap the receiver's TIB inline.

    Deferred (coalesced) hooks by definition skip re-evaluation at the
    write, so the frame's speculation cannot be invalidated there."""
    spec = getattr(hook, "inline_spec", None)
    return spec is None or spec[0] != "deferred"


def insert_deopt_points(fn: IRFunction, rm: Any, tib: Any) -> int:
    """Plant ``deoptcheck`` guards in specialized IR; returns the count.

    After every re-evaluating state write on ``this`` that carries a
    resume pc (the lowerer records one only where the operand stack is
    empty), insert a guard comparing the receiver's TIB against the
    specialized-for special TIB ``tib``.  The guard's args carry the
    live locals so the register allocator of the day (DCE) keeps their
    defining movs alive; dead locals deopt as ``None``.
    """
    from repro.opt.specialize import this_aliases

    aliases = this_aliases(fn)
    live_at: list | None = None
    planted = 0
    for block in fn.blocks.values():
        out: list[IRInstr] = []
        for instr in block.instrs:
            out.append(instr)
            ex = instr.extra
            if (
                instr.op == "putfield"
                and ex.pc is not None
                and ex.hook is not None
                and _reevaluates(ex.hook)
                and isinstance(instr.args[0], Reg)
                and instr.args[0].name in aliases
            ):
                if live_at is None:
                    live_at = live_locals(rm.info.code)
                live = sorted(live_at[ex.pc])
                out.append(
                    IRInstr(
                        "deoptcheck",
                        None,
                        [instr.args[0]] + [Reg(f"l{k}") for k in live],
                        Extra(pc=ex.pc, live=live, rm=rm, tib=tib),
                        instr.line,
                    )
                )
                planted += 1
        block.instrs = out
    return planted
