"""The JxVM facade.

One :class:`VM` owns a linked program, the adaptive optimization system,
the optimizing compiler, the JTOC/heap/TIB structures, and — when a
:class:`~repro.mutation.plan.MutationPlan` is supplied — the dynamic
class mutation manager.  It is the single entry point users need::

    from repro import compile_source, VM

    unit = compile_source(source)
    vm = VM(unit)
    result = vm.run()
    print(result.output)

A ProgramUnit carries link state in its instructions, so each VM needs a
freshly compiled unit.

A VM's state is explicitly split into two layers (the foundation of the
``repro.server`` multi-session code space):

* the **program world** (:meth:`VM._build_program_world`) — linked
  classes, JTOC layout + method cells, TIBs, compiled code, quickened
  bodies, the mutation manager and its hooks, the opt compiler, the
  compile cache.  Once built (and, for serving, frozen by
  :class:`repro.server.CodeSpace`), it is immutable program structure
  that any number of sessions can share;
* **session state** (:meth:`VM._init_session_state`) — heap accounting,
  the intrinsic context (output buffer + RNG), static-field *values*,
  mutation stats, telemetry sink, and the ``<clinit>``-ran flag.  This
  is everything one executing tenant mutates; a
  :class:`repro.server.Session` owns exactly this set privately while
  borrowing the world.

A solo VM is simply both layers in one object, built back-to-back.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any

from repro.bytecode.classfile import ProgramUnit
from repro.telemetry.core import maybe as _tel_maybe
from repro.vm.adaptive import AdaptiveConfig, AdaptiveSystem, CompileStats
from repro.vm.heap import HeapStats
from repro.vm.installer import CodeInstaller
from repro.vm.intrinsics import IntrinsicContext
from repro.vm.linker import Linker, RuntimeMethod, static_initializers
from repro.vm.values import VMRuntimeError

#: Jx recursion maps onto Python recursion; give deep workloads room.
_MIN_RECURSION_LIMIT = 20000


def _quicken_default() -> bool:
    """Quickening defaults on; ``JX_QUICKEN=0`` disables it globally."""
    return os.environ.get("JX_QUICKEN", "1") != "0"


def _osr_default() -> bool:
    """On-stack replacement defaults on; ``JX_OSR=0`` disables it."""
    return os.environ.get("JX_OSR", "1") != "0"


def _spec_share_default() -> bool:
    """Specialization sharing defaults on; ``JX_SPEC_SHARE=0`` disables."""
    return os.environ.get("JX_SPEC_SHARE", "1") != "0"


def _memo_default() -> bool:
    """Pure-special memoization defaults on; ``JX_MEMO=0`` disables."""
    return os.environ.get("JX_MEMO", "1") != "0"


def _shapes_default() -> bool:
    """Packed object layouts default on; ``JX_SHAPES=0`` disables."""
    return os.environ.get("JX_SHAPES", "1") != "0"


def _tv_default() -> bool:
    """Translation validation defaults on; ``JX_TV=0`` disables."""
    return os.environ.get("JX_TV", "1") != "0"


@dataclass
class VMConfig:
    """VM-level execution tunables (the adaptive system has its own
    :class:`~repro.vm.adaptive.AdaptiveConfig`)."""

    #: Rewrite interpreted bytecode into quickened forms with TIB-keyed
    #: inline caches and fused superinstructions
    #: (:mod:`repro.bytecode.quicken`).  Off, the VM runs exactly the
    #: pre-quickening interpreter.
    quicken: bool = field(default_factory=_quicken_default)
    #: On-stack replacement (:mod:`repro.vm.osr`): transfer running
    #: interpreter frames into compiled code at hot loop back-edges, and
    #: bail compiled specialized frames back to the interpreter when a
    #: TIB swap invalidates their speculation mid-frame.  Off, frames
    #: finish in the tier they started in (promotion waits for the next
    #: invocation) and specialized code runs unguarded, exactly as
    #: before.
    osr: bool = field(default_factory=_osr_default)
    #: Specialization sharing (:mod:`repro.opt.eqstate`): hot states
    #: whose projections onto a method's state-read set are equal share
    #: one compiled body, and hot states equivalent modulo the class's
    #: whole read union share one special TIB.  Off, every hot state
    #: gets its own compile and TIB, exactly the paper's Fig. 10/12
    #: linear cost model.
    spec_share: bool = field(default_factory=_spec_share_default)
    #: Memoize specialized methods proven pure (:mod:`repro.vm.memo`):
    #: cache results per (method, state, args), invalidated on TIB swaps
    #: of the receiver's class.  Off, every call runs the body.
    memo: bool = field(default_factory=_memo_default)
    #: Shape-based packed object layout (:mod:`repro.vm.shapes`): each
    #: (class, hot-state) owns a packed slot layout; lifetime-constant
    #: fields are unboxed out of the instance, a mutable class's own
    #: state fields sink to the layout tail, and hot-state TIBs carry
    #: pinning shapes that drop the tail's storage (a TIB swap becomes
    #: a layout transition).  Off, objects keep the declared one-word-
    #: per-field layout exactly as before.
    shapes: bool = field(default_factory=_shapes_default)
    #: Translation validation (:mod:`repro.analysis.tv`): prove every
    #: transformed code surface (quickened/fused bodies, shape slot
    #: layouts, OSR continuation entries, shared specialized bodies)
    #: observationally equivalent to its pristine source before it is
    #: allowed to run; anything unprovable is downgraded (de-quickened,
    #: permanent OSR miss, fresh compile, plan downgrade) instead of
    #: trusted.  Off, transformers are trusted exactly as before.
    tv: bool = field(default_factory=_tv_default)


@dataclass
class RunResult:
    """Outcome of one entry-point execution."""

    value: Any
    output: str
    wall_seconds: float
    compile_seconds: float


@dataclass
class VMStats:
    """Point-in-time snapshot of a VM's accounting."""

    heap: HeapStats = field(default_factory=HeapStats)
    #: The single source of truth for TIB-pointer swaps: every swap path
    #: (reeval closures, reevaluate_object, the opt2 inline fast path)
    #: bumps this field; ``MutationManager.tib_swaps`` is an alias.
    tib_swaps: int = 0
    special_tibs_created: int = 0
    #: Hot states that reused another state's special TIB because they
    #: are equivalent modulo the class's state-read union
    #: (``VMConfig.spec_share``).
    special_tibs_shared: int = 0
    #: Specialized method versions actually compiled — the single source
    #: of truth (``manager.special_versions_compiled`` is a read-only
    #: alias, like ``tib_swaps``), bumped per fresh compile only.
    specials_compiled: int = 0
    #: ``rm.specials`` entries that alias an already-compiled body (an
    #: equivalent state's special, or the general body when the method
    #: reads none of the bound state fields) instead of compiling.
    specials_shared: int = 0
    #: Memoized specialized calls answered from ``vm.memo``.
    memo_hits: int = 0
    #: Re-evaluations skipped by swap coalescing (deferred state writes).
    swaps_coalesced: int = 0
    #: Mutable-class plans detached by the specialization-safety audit
    #: (repro.analysis.specsafety) because a state-field write could not
    #: be proven hooked; their objects keep the class TIB.
    plans_downgraded: int = 0
    #: On-stack replacements: interpreter frames transferred into
    #: compiled code at a hot loop back-edge.
    osr_enters: int = 0
    #: Mid-frame deopts: specialized frames bailed back to the
    #: interpreter after a TIB swap invalidated their speculation.
    osr_deopts: int = 0
    #: Transformed bodies run through the translation validator
    #: (repro.analysis.tv): quickened methods, OSR entries, shared
    #: specialized bodies, and attach-time shape audits all count here.
    tv_bodies_validated: int = 0
    #: Individual unprovable facts the validator reported.
    tv_findings: int = 0
    #: Surfaces the validator refused to run (de-quickened bodies,
    #: rejected OSR entries, refused shares, downgraded plans).
    tv_downgrades: int = 0


class VM:
    """A JxVM instance executing one linked program."""

    def __init__(
        self,
        program: ProgramUnit,
        mutation_plan: Any = None,
        adaptive_config: AdaptiveConfig | None = None,
        seed: int = 42,
        telemetry: Any = None,
        compile_cache: Any = None,
        config: VMConfig | None = None,
    ) -> None:
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        # Telemetry attaches before any subsystem so the mutation
        # manager's hooks can bake instrumentation in at build time;
        # ``True`` means "give me a default-configured Telemetry".
        if telemetry is True:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.telemetry = telemetry
        self._init_session_state(seed)
        self._build_program_world(
            program, mutation_plan, adaptive_config, compile_cache, config
        )

    # -- the two state layers ------------------------------------------------

    def _init_session_state(self, seed: int) -> None:
        """Everything one executing tenant mutates.  A
        :class:`repro.server.Session` owns exactly these attributes
        privately (plus a :class:`~repro.vm.jtoc.JTOCView` for the
        static-field values) while borrowing the program world."""
        self.heap = HeapStats()
        self.intrinsic_ctx = IntrinsicContext(seed)
        self.mutation_stats = VMStats()
        self.compile_stats = CompileStats()
        # Memoized specialized-call results (repro.vm.memo) are session
        # state by construction: results may reference session heap
        # objects, so the table must never be shared across tenants.
        from repro.vm.memo import MemoTable

        self.memo = MemoTable()
        self._initialized = False

    def _build_program_world(
        self,
        program: ProgramUnit,
        mutation_plan: Any,
        adaptive_config: AdaptiveConfig | None,
        compile_cache: Any,
        config: VMConfig | None,
    ) -> None:
        """Link, attach mutation, prime the adaptive system, quicken —
        the immutable-once-frozen program structure that sessions of a
        :class:`repro.server.CodeSpace` share."""
        self.unit = program
        # Persistent compile cache (repro.cache): a CompileCache, a
        # directory path, or None.  JX_CACHE_DIR enables it globally
        # for VMs that are not explicitly given one.
        if compile_cache is None:
            compile_cache = os.environ.get("JX_CACHE_DIR") or None
        if isinstance(compile_cache, (str, os.PathLike)):
            from repro.cache.store import CompileCache

            compile_cache = CompileCache(compile_cache)
        self.compile_cache = compile_cache
        self.config = config or VMConfig()
        #: Translation-validation enforcement record: ``"surface:where"``
        #: -> reason for every transformed body the validator refused to
        #: run (repro.analysis.tv).  Digested into the compile cache's
        #: environment payload so a hit never resurrects one.
        self.tv_downgrades: dict[str, str] = {}
        #: Accumulated validator wall seconds (the <5% budget gate).
        self.tv_seconds = 0.0
        self.linker = Linker(program)
        self.linker.link()
        self.classes = self.linker.classes
        self.jtoc = self.linker.jtoc
        self.tib_space = self.linker.tib_space
        # Packed layouts install right after linking and before the
        # mutation manager attaches, so state hooks, specialization
        # bindings, and lifetime-constant publication all see packed
        # slots.
        if self.config.shapes:
            from repro.vm.shapes import install_shapes

            install_shapes(self, mutation_plan)
        #: Static-field values as linked, before any ``<clinit>`` ran —
        #: what a fresh session's :class:`~repro.vm.jtoc.JTOCView`
        #: starts from.  ``<clinit>`` effects are per-session (they may
        #: allocate objects), so the snapshot must predate them.
        self.pristine_statics = list(self.jtoc.fields)
        self.installer = CodeInstaller(self)
        self.adaptive = AdaptiveSystem(
            self, adaptive_config or AdaptiveConfig()
        )
        self._opt_compiler: Any = None
        self.mutation_manager: Any = None
        self.quickener: Any = None
        if self.config.osr:
            from repro.vm.osr import OSRManager

            self.osr: Any = OSRManager(self)
        else:
            self.osr = None
        if mutation_plan is not None:
            from repro.mutation.manager import MutationManager

            self.mutation_manager = MutationManager(self, mutation_plan)
            self.mutation_manager.attach()
        self.adaptive.prime_all()
        # Quickening runs last: hooks are installed and special TIBs
        # exist, so the quickened bodies see the final link state.  The
        # quickener registry is what install paths flush when they patch
        # dispatch-table entries in place.
        if self.config.quicken:
            from repro.bytecode.quicken import Quickener

            self.quickener = Quickener(self)
            self.quickener.quicken_all()

    # ------------------------------------------------------------------

    def flush_inline_caches(self) -> None:
        """Reset every inline-cache key.  Called by the code installer
        and the mutation manager whenever dispatch-table entries are
        patched *in place* (TIB identity unchanged) so no site keeps a
        stale cached target; a no-op when quickening is off."""
        quickener = self.quickener
        if quickener is not None:
            quickener.flush()

    @property
    def opt_compiler(self) -> Any:
        """The optimizing compiler, created on first use."""
        if self._opt_compiler is None:
            from repro.opt.pipeline import OptCompiler

            self._opt_compiler = OptCompiler(self)
        return self._opt_compiler

    @property
    def output(self) -> str:
        return self.intrinsic_ctx.output()

    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Run every <clinit> once, in deterministic linked-class order."""
        if self._initialized:
            return
        self._initialized = True
        for rm in static_initializers(self.classes):
            rm.compiled.invoke(self, [])

    def lookup(self, class_name: str, method_key: str) -> RuntimeMethod:
        rc = self.classes.get(class_name)
        if rc is None:
            raise VMRuntimeError(f"unknown class {class_name!r}")
        rm = rc.own_methods.get(method_key)
        cur = rc.super_rc
        while rm is None and cur is not None:
            rm = cur.own_methods.get(method_key)
            cur = cur.super_rc
        if rm is None:
            raise VMRuntimeError(
                f"unknown method {class_name}.{method_key}"
            )
        return rm

    def call_static(self, class_name: str, method_key: str,
                    args: list[Any] | None = None) -> Any:
        """Invoke a static method through its JTOC cell."""
        self.initialize()
        rm = self.lookup(class_name, method_key)
        if not rm.info.is_static:
            raise VMRuntimeError(
                f"{rm.qualified_name} is not static"
            )
        return rm.jtoc_cell.compiled.invoke(self, list(args or []))

    def run(self) -> RunResult:
        """Initialize and execute the program entry point."""
        start_compile = self.compile_stats.total_seconds
        start = time.perf_counter()
        value = self.call_static(
            self.unit.entry_class, self.unit.entry_method, []
        )
        wall = time.perf_counter() - start
        tel = _tel_maybe(self.telemetry)
        if tel is not None:
            tel.emit(
                "vm_run",
                dur=wall,
                entry=f"{self.unit.entry_class}.{self.unit.entry_method}",
            )
            tel.metrics.gauge("vm.wall_seconds").set(wall)
            tel.metrics.gauge("vm.compile_seconds").set(
                self.compile_stats.total_seconds - start_compile
            )
        return RunResult(
            value=value,
            output=self.output,
            wall_seconds=wall,
            compile_seconds=self.compile_stats.total_seconds - start_compile,
        )

    # ------------------------------------------------------------------

    def all_runtime_methods(self) -> list[RuntimeMethod]:
        out = []
        for rc in self.classes.values():
            out.extend(
                rm
                for rm in rc.own_methods.values()
                if not rm.info.is_abstract
            )
        return out

    def describe_compiled_state(self) -> str:
        """Debugging report: every method's tier and special versions."""
        lines = []
        for rm in sorted(
            self.all_runtime_methods(), key=lambda r: r.qualified_name
        ):
            specials = (
                f" +{len(rm.specials)} special" if rm.specials else ""
            )
            lines.append(
                f"{rm.qualified_name}: opt{rm.compiled.opt_level}"
                f" ({rm.samples.invocations} calls){specials}"
            )
        return "\n".join(lines)
