"""JxVM: the runtime that hosts dynamic class hierarchy mutation."""

from repro.vm.adaptive import AdaptiveConfig, AdaptiveSystem, CompileStats
from repro.vm.heap import HeapStats
from repro.vm.imt import IMT, IMT_SLOTS, imt_slot_for
from repro.vm.intrinsics import INTRINSICS, IntrinsicContext
from repro.vm.jtoc import JTOC
from repro.vm.linker import LinkError, Linker, RuntimeClass, RuntimeMethod
from repro.vm.runtime import VM, RunResult, VMConfig
from repro.vm.tib import TIB, TIBSpaceTracker
from repro.vm.values import (
    ArrayBoundsError,
    ClassCastError,
    DivisionByZeroError,
    NullPointerError,
    VMArray,
    VMObject,
    VMRuntimeError,
)

__all__ = [
    "IMT",
    "IMT_SLOTS",
    "INTRINSICS",
    "AdaptiveConfig",
    "AdaptiveSystem",
    "ArrayBoundsError",
    "ClassCastError",
    "CompileStats",
    "DivisionByZeroError",
    "HeapStats",
    "IntrinsicContext",
    "JTOC",
    "LinkError",
    "Linker",
    "NullPointerError",
    "RunResult",
    "RuntimeClass",
    "RuntimeMethod",
    "TIB",
    "TIBSpaceTracker",
    "VM",
    "VMArray",
    "VMConfig",
    "VMObject",
    "VMRuntimeError",
    "imt_slot_for",
]
