"""Type Information Blocks (TIBs) — JxVM's virtual function tables.

A TIB is Jikes RVM's per-class method dispatch table (paper §3.2.1).
JxVM reproduces its structure:

* ``entries[offset]`` holds the current compiled method for each virtual
  method slot;
* ``type_info`` points at the runtime class — ``instanceof``/``checkcast``
  read *this*, never TIB identity, so special TIBs don't break type
  checks (paper §3.2.3);
* ``imt`` points at the interface method table, shared between a class
  TIB and all of its special TIBs (paper §3.2.3).

A **special TIB** is a copy of the class TIB associated with one hot
state of a mutable class; the mutation manager retargets its mutable-
method entries at specialized compiled code (paper §2.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.compiled import CompiledMethod

#: Modeled pointer size: every TIB slot is one machine word.
WORD_BYTES = 8
#: Header words: type-info pointer + IMT pointer.
TIB_HEADER_WORDS = 2


class TIB:
    """One virtual function table (class or special)."""

    __slots__ = ("entries", "type_info", "imt", "state", "is_special",
                 "shape")

    def __init__(
        self,
        type_info: Any,
        entries: list["CompiledMethod"],
        imt: Any = None,
        state: Any = None,
        is_special: bool = False,
    ) -> None:
        self.type_info = type_info
        self.entries = entries
        self.imt = imt
        self.state = state
        self.is_special = is_special
        #: Packed object layout owned by this TIB (repro.vm.shapes); a
        #: special TIB may carry a pinning shape whose state fields have
        #: no instance storage.  ``None`` when shapes are off.
        self.shape: Any = None

    @classmethod
    def special_from(cls, class_tib: "TIB", state: Any) -> "TIB":
        """Create a special TIB for ``state`` as a replicant of the class
        TIB (paper §3.2.2: "the special TIB is exactly the same as the
        class TIB when the class is initially instantiated")."""
        return cls(
            type_info=class_tib.type_info,
            entries=list(class_tib.entries),
            imt=class_tib.imt,
            state=state,
            is_special=True,
        )

    def size_bytes(self) -> int:
        """Modeled memory footprint of this TIB (Fig. 12 accounting)."""
        return (len(self.entries) + TIB_HEADER_WORDS) * WORD_BYTES

    def __repr__(self) -> str:
        kind = f"special:{self.state}" if self.is_special else "class"
        name = getattr(self.type_info, "name", "?")
        return f"<TIB {name} [{kind}] {len(self.entries)} entries>"


class TIBSpaceTracker:
    """Accumulates TIB memory statistics for the Figure 12 experiment."""

    def __init__(self) -> None:
        self.class_tib_bytes = 0
        self.special_tib_bytes = 0
        self.special_tib_count = 0

    def record_class_tib(self, tib: TIB) -> None:
        self.class_tib_bytes += tib.size_bytes()

    def record_special_tib(self, tib: TIB) -> None:
        self.special_tib_bytes += tib.size_bytes()
        self.special_tib_count += 1

    @property
    def total_bytes(self) -> int:
        return self.class_tib_bytes + self.special_tib_bytes

    def relative_increase(self) -> float:
        """Special-TIB bytes as a fraction of baseline class-TIB bytes."""
        if self.class_tib_bytes == 0:
            return 0.0
        return self.special_tib_bytes / self.class_tib_bytes
