"""The opt0 execution engine: a direct bytecode interpreter.

This is JxVM's analog of running a method's baseline-compiled code in
Jikes RVM: no optimization, straight-line semantics, plus the sampling
that drives the adaptive system (method-entry ticks are credited by the
compiled-method wrapper; *backedge* ticks are credited here so that
loop-dominated methods get hot without being re-invoked — the yieldpoint
analog).

State-field write hooks: PUTFIELD/PUTSTATIC instructions that the
mutation manager marked (``instr.state_hook``) invoke the distributed
dynamic class mutation algorithm's field-assignment actions (paper
Fig. 4) immediately after the store.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.opcodes import Op
from repro.vm.values import (
    ArrayBoundsError,
    ClassCastError,
    NullPointerError,
    VMArray,
    VMRuntimeError,
    jx_rem,
    jx_str,
    jx_truncate_div,
)

_LOAD = Op.LOAD
_STORE = Op.STORE
_CONST = Op.CONST
_GETFIELD = Op.GETFIELD
_PUTFIELD = Op.PUTFIELD
_GETSTATIC = Op.GETSTATIC
_PUTSTATIC = Op.PUTSTATIC
_ADD = Op.ADD
_SUB = Op.SUB
_MUL = Op.MUL
_IDIV = Op.IDIV
_FDIV = Op.FDIV
_IREM = Op.IREM
_NEG = Op.NEG
_I2D = Op.I2D
_D2I = Op.D2I
_SHL = Op.SHL
_SHR = Op.SHR
_BAND = Op.BAND
_BOR = Op.BOR
_BXOR = Op.BXOR
_CMP_LT = Op.CMP_LT
_CMP_LE = Op.CMP_LE
_CMP_GT = Op.CMP_GT
_CMP_GE = Op.CMP_GE
_CMP_EQ = Op.CMP_EQ
_CMP_NE = Op.CMP_NE
_NOT = Op.NOT
_CONCAT = Op.CONCAT
_JUMP = Op.JUMP
_JUMP_IF_TRUE = Op.JUMP_IF_TRUE
_JUMP_IF_FALSE = Op.JUMP_IF_FALSE
_RETURN = Op.RETURN
_RETURN_VOID = Op.RETURN_VOID
_NEW = Op.NEW
_INVOKEVIRTUAL = Op.INVOKEVIRTUAL
_INVOKESPECIAL = Op.INVOKESPECIAL
_INVOKESTATIC = Op.INVOKESTATIC
_INVOKEINTERFACE = Op.INVOKEINTERFACE
_INSTANCEOF = Op.INSTANCEOF
_CHECKCAST = Op.CHECKCAST
_NEWARRAY = Op.NEWARRAY
_ALOAD = Op.ALOAD
_ASTORE = Op.ASTORE
_ARRAYLEN = Op.ARRAYLEN
_INTRINSIC = Op.INTRINSIC
_POP = Op.POP
_DUP = Op.DUP
_SWAP = Op.SWAP
_NOP = Op.NOP


class JxStackTrace(VMRuntimeError):
    """A VM runtime error annotated with the Jx call stack."""

    def __init__(self, cause: VMRuntimeError, frames: list[str]) -> None:
        self.cause = cause
        self.frames = frames
        trace = "\n  at ".join(frames)
        super().__init__(f"{cause}\n  at {trace}")


def interpret(vm: Any, rm: Any, args: list[Any]) -> Any:
    """Execute ``rm``'s bytecode with ``args`` as the initial locals."""
    info = rm.info
    code = info.code
    locals_: list[Any] = args + [None] * (info.max_locals - len(args))
    stack: list[Any] = []
    samples = rm.samples
    adaptive = vm.adaptive
    tel = vm.telemetry
    if tel is not None and tel.enabled:
        tel.count("interp.frames")
    pc = 0
    try:
        while True:
            instr = code[pc]
            op = instr.op
            pc += 1
            if op is _LOAD:
                stack.append(locals_[instr.arg])
            elif op is _CONST:
                stack.append(instr.arg)
            elif op is _STORE:
                locals_[instr.arg] = stack.pop()
            elif op is _GETFIELD:
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(
                        f"null receiver reading field {instr.arg[1]!r}"
                    )
                stack.append(obj.fields[instr.resolved])
            elif op is _PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(
                        f"null receiver writing field {instr.arg[1]!r}"
                    )
                obj.fields[instr.resolved] = value
                # The installed hook IS the policy: re-evaluating hooks
                # swap the TIB, deferred (coalesced) hooks only count —
                # so the interpreter honors swap coalescing without
                # branching on a flag.
                hook = instr.state_hook
                if hook is not None:
                    hook(vm, obj)
            elif op is _JUMP:
                target = instr.arg
                if target < pc:
                    samples.ticks += 1
                    if samples.ticks >= samples.threshold:
                        adaptive.on_hot(rm)
                pc = target
            elif op is _JUMP_IF_FALSE:
                if not stack.pop():
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            adaptive.on_hot(rm)
                    pc = target
            elif op is _JUMP_IF_TRUE:
                if stack.pop():
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            adaptive.on_hot(rm)
                    pc = target
            elif op is _ADD:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op is _SUB:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op is _MUL:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op is _CMP_LT:
                b = stack.pop()
                stack[-1] = stack[-1] < b
            elif op is _CMP_LE:
                b = stack.pop()
                stack[-1] = stack[-1] <= b
            elif op is _CMP_GT:
                b = stack.pop()
                stack[-1] = stack[-1] > b
            elif op is _CMP_GE:
                b = stack.pop()
                stack[-1] = stack[-1] >= b
            elif op is _CMP_EQ:
                b = stack.pop()
                a = stack[-1]
                stack[-1] = (a is b) if _is_ref(a) or _is_ref(b) else (a == b)
            elif op is _CMP_NE:
                b = stack.pop()
                a = stack[-1]
                stack[-1] = (
                    (a is not b) if _is_ref(a) or _is_ref(b) else (a != b)
                )
            elif op is _INVOKEVIRTUAL:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                offset, returns = instr.resolved
                result = receiver.tib.entries[offset].invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKESTATIC:
                argc = instr.arg[2]
                callargs = stack[-argc:] if argc else []
                if argc:
                    del stack[-argc:]
                cell, returns = instr.resolved
                result = cell.compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKESPECIAL:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                if callargs[0] is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                target_rm, returns = instr.resolved
                result = target_rm.compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKEINTERFACE:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                slot, key, returns = instr.resolved
                compiled = receiver.tib.imt.dispatch(receiver, slot, key)
                result = compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _GETSTATIC:
                stack.append(vm.jtoc.get(instr.resolved))
            elif op is _PUTSTATIC:
                vm.jtoc.set(instr.resolved, stack.pop())
                hook = instr.state_hook
                if hook is not None:
                    hook(vm, None)
            elif op is _ALOAD:
                idx = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in load")
                if not 0 <= idx < len(arr.data):
                    raise ArrayBoundsError(
                        f"index {idx} out of range [0, {len(arr.data)})"
                    )
                stack.append(arr.data[idx])
            elif op is _ASTORE:
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in store")
                if not 0 <= idx < len(arr.data):
                    raise ArrayBoundsError(
                        f"index {idx} out of range [0, {len(arr.data)})"
                    )
                arr.data[idx] = value
            elif op is _ARRAYLEN:
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in length")
                stack.append(len(arr.data))
            elif op is _NEWARRAY:
                length = stack.pop()
                arr = VMArray(instr.arg, length, instr.resolved)
                vm.heap.record_array(length)
                stack.append(arr)
            elif op is _NEW:
                stack.append(instr.resolved.allocate(vm))
            elif op is _CONCAT:
                b = stack.pop()
                stack[-1] = jx_str(stack[-1]) + jx_str(b)
            elif op is _INTRINSIC:
                intr = instr.resolved
                n = intr.nargs
                if n:
                    callargs = stack[-n:]
                    del stack[-n:]
                    result = intr.fn(vm.intrinsic_ctx, *callargs)
                else:
                    result = intr.fn(vm.intrinsic_ctx)
                if intr.returns:
                    stack.append(result)
            elif op is _IDIV:
                b = stack.pop()
                stack[-1] = jx_truncate_div(stack[-1], b)
            elif op is _FDIV:
                b = stack.pop()
                if b == 0:
                    stack[-1] = float("nan") if stack[-1] == 0 else (
                        float("inf") if stack[-1] > 0 else float("-inf")
                    )
                else:
                    stack[-1] = stack[-1] / b
            elif op is _IREM:
                b = stack.pop()
                stack[-1] = jx_rem(stack[-1], b)
            elif op is _NEG:
                stack[-1] = -stack[-1]
            elif op is _NOT:
                stack[-1] = not stack[-1]
            elif op is _I2D:
                stack[-1] = float(stack[-1])
            elif op is _D2I:
                stack[-1] = int(stack[-1])
            elif op is _SHL:
                b = stack.pop()
                stack[-1] = stack[-1] << b
            elif op is _SHR:
                b = stack.pop()
                stack[-1] = stack[-1] >> b
            elif op is _BAND:
                b = stack.pop()
                stack[-1] = stack[-1] & b
            elif op is _BOR:
                b = stack.pop()
                stack[-1] = stack[-1] | b
            elif op is _BXOR:
                b = stack.pop()
                stack[-1] = stack[-1] ^ b
            elif op is _INSTANCEOF:
                obj = stack.pop()
                stack.append(
                    obj is not None
                    and instr.resolved.name in obj.tib.type_info.all_supertypes
                )
            elif op is _CHECKCAST:
                obj = stack[-1]
                if (
                    obj is not None
                    and instr.resolved.name
                    not in obj.tib.type_info.all_supertypes
                ):
                    raise ClassCastError(
                        f"cannot cast {obj.tib.type_info.name} to "
                        f"{instr.resolved.name}"
                    )
            elif op is _RETURN:
                return stack.pop()
            elif op is _RETURN_VOID:
                return None
            elif op is _POP:
                stack.pop()
            elif op is _DUP:
                stack.append(stack[-1])
            elif op is _SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op is _NOP:
                pass
            else:  # pragma: no cover
                raise VMRuntimeError(f"unhandled opcode {op!r}")
    except JxStackTrace as trace:
        trace.frames.append(_frame_desc(rm, code, pc))
        raise
    except VMRuntimeError as exc:
        if tel is not None and tel.enabled:
            tel.count("interp.errors")
        raise JxStackTrace(exc, [_frame_desc(rm, code, pc)]) from exc


def _frame_desc(rm: Any, code: list, pc: int) -> str:
    index = max(0, min(pc - 1, len(code) - 1))
    line = code[index].line if code else 0
    return f"{rm.qualified_name} (line {line})"


def _is_ref(value: Any) -> bool:
    """True for reference values whose ``==`` must mean identity."""
    return value is not None and not isinstance(
        value, (int, float, str, bool)
    )
