"""The opt0 execution engine: a direct bytecode interpreter.

This is JxVM's analog of running a method's baseline-compiled code in
Jikes RVM: no optimization, straight-line semantics, plus the sampling
that drives the adaptive system (method-entry ticks are credited by the
compiled-method wrapper; *backedge* ticks are credited here so that
loop-dominated methods get hot without being re-invoked — the yieldpoint
analog).

State-field write hooks: PUTFIELD/PUTSTATIC instructions that the
mutation manager marked (``instr.state_hook``) invoke the distributed
dynamic class mutation algorithm's field-assignment actions (paper
Fig. 4) immediately after the store.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.opcodes import Op
from repro.vm.values import (
    ArrayBoundsError,
    ClassCastError,
    NullPointerError,
    VMArray,
    VMRuntimeError,
    jx_rem,
    jx_str,
    jx_truncate_div,
)

_LOAD = Op.LOAD
_STORE = Op.STORE
_CONST = Op.CONST
_GETFIELD = Op.GETFIELD
_PUTFIELD = Op.PUTFIELD
_GETSTATIC = Op.GETSTATIC
_PUTSTATIC = Op.PUTSTATIC
_ADD = Op.ADD
_SUB = Op.SUB
_MUL = Op.MUL
_IDIV = Op.IDIV
_FDIV = Op.FDIV
_IREM = Op.IREM
_NEG = Op.NEG
_I2D = Op.I2D
_D2I = Op.D2I
_SHL = Op.SHL
_SHR = Op.SHR
_BAND = Op.BAND
_BOR = Op.BOR
_BXOR = Op.BXOR
_CMP_LT = Op.CMP_LT
_CMP_LE = Op.CMP_LE
_CMP_GT = Op.CMP_GT
_CMP_GE = Op.CMP_GE
_CMP_EQ = Op.CMP_EQ
_CMP_NE = Op.CMP_NE
_NOT = Op.NOT
_CONCAT = Op.CONCAT
_JUMP = Op.JUMP
_JUMP_IF_TRUE = Op.JUMP_IF_TRUE
_JUMP_IF_FALSE = Op.JUMP_IF_FALSE
_RETURN = Op.RETURN
_RETURN_VOID = Op.RETURN_VOID
_NEW = Op.NEW
_INVOKEVIRTUAL = Op.INVOKEVIRTUAL
_INVOKESPECIAL = Op.INVOKESPECIAL
_INVOKESTATIC = Op.INVOKESTATIC
_INVOKEINTERFACE = Op.INVOKEINTERFACE
_INSTANCEOF = Op.INSTANCEOF
_CHECKCAST = Op.CHECKCAST
_NEWARRAY = Op.NEWARRAY
_ALOAD = Op.ALOAD
_ASTORE = Op.ASTORE
_ARRAYLEN = Op.ARRAYLEN
_INTRINSIC = Op.INTRINSIC
_POP = Op.POP
_DUP = Op.DUP
_SWAP = Op.SWAP
_NOP = Op.NOP
_GETFIELD_QUICK = Op.GETFIELD_QUICK
_INVOKEVIRTUAL_QUICK = Op.INVOKEVIRTUAL_QUICK
_INVOKEINTERFACE_QUICK = Op.INVOKEINTERFACE_QUICK
_LOAD_GETFIELD = Op.LOAD_GETFIELD
_LOAD_LOAD = Op.LOAD_LOAD
_LOAD_CONST = Op.LOAD_CONST
_CMP_LT_JF = Op.CMP_LT_JF
_CMP_EQ_JF = Op.CMP_EQ_JF
_INC = Op.INC
_ITER_LT_JF = Op.ITER_LT_JF
_ADD_STORE = Op.ADD_STORE
_ADD_PUTFIELD = Op.ADD_PUTFIELD
_ADD_RETURN = Op.ADD_RETURN
_LOAD_RETURN = Op.LOAD_RETURN
_LOAD_ADD = Op.LOAD_ADD
_LOAD_SUB = Op.LOAD_SUB
_LOAD_MUL = Op.LOAD_MUL
_GETFIELD_RETURN = Op.GETFIELD_RETURN
_FIELD_INC = Op.FIELD_INC
_GETFIELD_SHAPE = Op.GETFIELD_SHAPE

#: Ticks credited per method entry — the shared definition from the
#: adaptive system (`AdaptiveConfig.ENTRY_TICKS`); `repro.vm.compiled`
#: re-exports the same constant.
from repro.vm.adaptive import ENTRY_TICKS as _ENTRY_TICKS


class JxStackTrace(VMRuntimeError):
    """A VM runtime error annotated with the Jx call stack."""

    def __init__(self, cause: VMRuntimeError, frames: list[str]) -> None:
        self.cause = cause
        self.frames = frames
        trace = "\n  at ".join(frames)
        super().__init__(f"{cause}\n  at {trace}")


def interpret(vm: Any, rm: Any, args: list[Any], pc: int = 0) -> Any:
    """Execute ``rm``'s bytecode with ``args`` as the initial locals.

    A non-zero ``pc`` resumes mid-method — the OSR deopt path
    (:func:`repro.vm.osr.deopt_to_interpreter`) re-enters here with the
    reconstructed frame; deopt pcs always have an empty operand stack,
    so ``args`` (the full locals list there) plus ``pc`` is the whole
    frame.
    """
    info = rm.info
    code = info.code
    locals_: list[Any] = args + [None] * (info.max_locals - len(args))
    stack: list[Any] = []
    samples = rm.samples
    adaptive = vm.adaptive
    osr = vm.osr
    tel = vm.telemetry
    if tel is not None and tel.enabled:
        tel.count("interp.frames")
    try:
        while True:
            instr = code[pc]
            op = instr.op
            pc += 1
            if op is _LOAD:
                stack.append(locals_[instr.arg])
            elif op is _CONST:
                stack.append(instr.arg)
            elif op is _STORE:
                locals_[instr.arg] = stack.pop()
            elif op is _GETFIELD:
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(
                        f"null receiver reading field {instr.arg[1]!r}"
                    )
                slot = instr.resolved
                if type(slot) is int:
                    stack.append(obj.fields[slot])
                else:
                    # Shape-managed slot (repro.vm.shapes): a pinned
                    # state field reads through the TIB's shape when its
                    # storage is dropped; an unboxed field always does.
                    stack.append(slot.read(obj))
            elif op is _PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(
                        f"null receiver writing field {instr.arg[1]!r}"
                    )
                slot = instr.resolved
                if type(slot) is int:
                    obj.fields[slot] = value
                else:
                    slot.store(vm, obj, value)
                # The installed hook IS the policy: re-evaluating hooks
                # swap the TIB, deferred (coalesced) hooks only count —
                # so the interpreter honors swap coalescing without
                # branching on a flag.
                hook = instr.state_hook
                if hook is not None:
                    hook(vm, obj)
            elif op is _JUMP:
                target = instr.arg
                if target < pc:
                    samples.ticks += 1
                    if samples.ticks >= samples.threshold:
                        adaptive.on_hot(rm)
                        # The method just got promoted under this frame:
                        # transfer the live frame into the compiled code
                        # instead of interpreting the rest of the loop
                        # (cold path — the threshold is now retired or
                        # far away, so steady state never reaches here).
                        if (
                            osr is not None
                            and not stack
                            and rm.compiled.opt_level > 0
                        ):
                            entry = osr.entry_for(rm, target)
                            if entry is not None:
                                return entry(vm, locals_)
                pc = target
            elif op is _JUMP_IF_FALSE:
                if not stack.pop():
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            adaptive.on_hot(rm)
                            if (
                                osr is not None
                                and not stack
                                and rm.compiled.opt_level > 0
                            ):
                                entry = osr.entry_for(rm, target)
                                if entry is not None:
                                    return entry(vm, locals_)
                    pc = target
            elif op is _JUMP_IF_TRUE:
                if stack.pop():
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            adaptive.on_hot(rm)
                            if (
                                osr is not None
                                and not stack
                                and rm.compiled.opt_level > 0
                            ):
                                entry = osr.entry_for(rm, target)
                                if entry is not None:
                                    return entry(vm, locals_)
                    pc = target
            elif op is _ADD:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op is _SUB:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op is _MUL:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op is _CMP_LT:
                b = stack.pop()
                stack[-1] = stack[-1] < b
            elif op is _CMP_LE:
                b = stack.pop()
                stack[-1] = stack[-1] <= b
            elif op is _CMP_GT:
                b = stack.pop()
                stack[-1] = stack[-1] > b
            elif op is _CMP_GE:
                b = stack.pop()
                stack[-1] = stack[-1] >= b
            elif op is _CMP_EQ:
                b = stack.pop()
                a = stack[-1]
                stack[-1] = (a is b) if _is_ref(a) or _is_ref(b) else (a == b)
            elif op is _CMP_NE:
                b = stack.pop()
                a = stack[-1]
                stack[-1] = (
                    (a is not b) if _is_ref(a) or _is_ref(b) else (a != b)
                )
            elif op is _INVOKEVIRTUAL:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                offset, returns = instr.resolved
                result = receiver.tib.entries[offset].invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKESTATIC:
                argc = instr.arg[2]
                callargs = stack[-argc:] if argc else []
                if argc:
                    del stack[-argc:]
                cell, returns = instr.resolved
                result = cell.compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKESPECIAL:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                if callargs[0] is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                target_rm, returns = instr.resolved
                result = target_rm.compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKEINTERFACE:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                slot, key, returns = instr.resolved
                compiled = receiver.tib.imt.dispatch(receiver, slot, key)
                result = compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _GETSTATIC:
                stack.append(vm.jtoc.get(instr.resolved))
            elif op is _PUTSTATIC:
                vm.jtoc.set(instr.resolved, stack.pop())
                hook = instr.state_hook
                if hook is not None:
                    hook(vm, None)
            elif op is _ALOAD:
                idx = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in load")
                if not 0 <= idx < len(arr.data):
                    raise ArrayBoundsError(
                        f"index {idx} out of range [0, {len(arr.data)})"
                    )
                stack.append(arr.data[idx])
            elif op is _ASTORE:
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in store")
                if not 0 <= idx < len(arr.data):
                    raise ArrayBoundsError(
                        f"index {idx} out of range [0, {len(arr.data)})"
                    )
                arr.data[idx] = value
            elif op is _ARRAYLEN:
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in length")
                stack.append(len(arr.data))
            elif op is _NEWARRAY:
                length = stack.pop()
                arr = VMArray(instr.arg, length, instr.resolved)
                vm.heap.record_array(length, instr.arg)
                stack.append(arr)
            elif op is _NEW:
                stack.append(instr.resolved.allocate(vm))
            elif op is _CONCAT:
                b = stack.pop()
                stack[-1] = jx_str(stack[-1]) + jx_str(b)
            elif op is _INTRINSIC:
                intr = instr.resolved
                n = intr.nargs
                if n:
                    callargs = stack[-n:]
                    del stack[-n:]
                    result = intr.fn(vm.intrinsic_ctx, *callargs)
                else:
                    result = intr.fn(vm.intrinsic_ctx)
                if intr.returns:
                    stack.append(result)
            elif op is _IDIV:
                b = stack.pop()
                stack[-1] = jx_truncate_div(stack[-1], b)
            elif op is _FDIV:
                b = stack.pop()
                if b == 0:
                    stack[-1] = float("nan") if stack[-1] == 0 else (
                        float("inf") if stack[-1] > 0 else float("-inf")
                    )
                else:
                    stack[-1] = stack[-1] / b
            elif op is _IREM:
                b = stack.pop()
                stack[-1] = jx_rem(stack[-1], b)
            elif op is _NEG:
                stack[-1] = -stack[-1]
            elif op is _NOT:
                stack[-1] = not stack[-1]
            elif op is _I2D:
                stack[-1] = float(stack[-1])
            elif op is _D2I:
                stack[-1] = int(stack[-1])
            elif op is _SHL:
                b = stack.pop()
                stack[-1] = stack[-1] << b
            elif op is _SHR:
                b = stack.pop()
                stack[-1] = stack[-1] >> b
            elif op is _BAND:
                b = stack.pop()
                stack[-1] = stack[-1] & b
            elif op is _BOR:
                b = stack.pop()
                stack[-1] = stack[-1] | b
            elif op is _BXOR:
                b = stack.pop()
                stack[-1] = stack[-1] ^ b
            elif op is _INSTANCEOF:
                obj = stack.pop()
                stack.append(
                    obj is not None
                    and instr.resolved.name in obj.tib.type_info.all_supertypes
                )
            elif op is _CHECKCAST:
                obj = stack[-1]
                if (
                    obj is not None
                    and instr.resolved.name
                    not in obj.tib.type_info.all_supertypes
                ):
                    raise ClassCastError(
                        f"cannot cast {obj.tib.type_info.name} to "
                        f"{instr.resolved.name}"
                    )
            elif op is _RETURN:
                return stack.pop()
            elif op is _RETURN_VOID:
                return None
            elif op is _POP:
                stack.pop()
            elif op is _DUP:
                stack.append(stack[-1])
            elif op is _SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op is _NOP:
                pass
            else:  # pragma: no cover
                raise VMRuntimeError(f"unhandled opcode {op!r}")
    except JxStackTrace as trace:
        trace.frames.append(_frame_desc(rm, code, pc))
        raise
    except VMRuntimeError as exc:
        if tel is not None and tel.enabled:
            tel.count("interp.errors")
        raise JxStackTrace(exc, [_frame_desc(rm, code, pc)]) from exc


def interpret_quick(vm: Any, rm: Any, args: list[Any]) -> Any:
    """Execute ``rm.quick_code`` — the quickened dispatch loop.

    Same semantics as :func:`interpret` (identical outputs, tick
    accounting, hook firing, and stack traces) over the quickened body:

    * call/field sites run their quickened forms; virtual/interface
      calls go through TIB-identity-keyed inline caches whose hit path
      is two identity checks and a cached entry callable — a TIB swap
      changes the key, so mutation redirects sites with no guards;
    * superinstructions cover the hottest adjacent pairs plus the loop
      idioms (``i += c`` and the counted-loop head collapse from four
      dispatches to one); every fused instruction skips the slots it
      covers, and each covered slot still holds a correct standalone
      instruction, so branches landing inside a fused region work;
    * the ``if/elif`` head is ordered by the post-fusion dynamic
      frequency and the cold tail dispatches through :data:`_COLD`, a
      handler table indexed by opcode (keeping ``pc``/branch/return
      handling — and the hot ops, where a per-op Python call would cost
      more than the identity ladder — in the loop itself).

    The original :func:`interpret` is untouched so ``JX_QUICKEN=0``
    runs exactly the pre-quickening code.
    """
    code = rm.quick_code
    locals_: list[Any] = args + rm.quick_pad
    stack: list[Any] = []
    samples = rm.samples
    # Quickening is slot- and pc-preserving, so OSR transfers use the
    # same (locals, pc) coordinates as the pristine interpreter.
    osr = vm.osr
    tel = vm.telemetry
    tel_on = tel is not None and tel.enabled
    if tel_on:
        tel.count("interp.frames")
    pc = 0
    try:
        while True:
            instr = code[pc]
            op = instr.op
            pc += 1
            if op is _LOAD_GETFIELD:
                a = instr.arg
                obj = locals_[a[0]]
                if obj is None:
                    raise NullPointerError(
                        f"null receiver reading field {a[2]!r}"
                    )
                stack.append(obj.fields[a[1]])
                pc += 1
            elif op is _LOAD:
                stack.append(locals_[instr.arg])
            elif op is _LOAD_LOAD:
                a = instr.arg
                stack.append(locals_[a[0]])
                stack.append(locals_[a[1]])
                pc += 1
            elif op is _CONST:
                stack.append(instr.arg)
            elif op is _GETFIELD_QUICK:
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(
                        f"null receiver reading field {instr.arg[1]!r}"
                    )
                stack.append(obj.fields[instr.resolved])
            elif op is _INVOKEVIRTUAL_QUICK:
                ic = instr.resolved
                argc = ic.argc
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                tib = receiver.tib
                if tib is ic.k0:
                    if tel_on:
                        tel.count("ic.hit")
                    rm0 = ic.r0
                    if rm0 is None:
                        result = ic.i0(vm, callargs)
                    else:
                        s0 = rm0.samples
                        s0.invocations += 1
                        s0.ticks += _ENTRY_TICKS
                        if s0.ticks >= s0.threshold:
                            vm.adaptive.on_hot(rm0)
                        result = interpret_quick(vm, rm0, callargs)
                elif tib is ic.k1:
                    if tel_on:
                        tel.count("ic.hit")
                    rm0 = ic.r1
                    if rm0 is None:
                        result = ic.i1(vm, callargs)
                    else:
                        s0 = rm0.samples
                        s0.invocations += 1
                        s0.ticks += _ENTRY_TICKS
                        if s0.ticks >= s0.threshold:
                            vm.adaptive.on_hot(rm0)
                        result = interpret_quick(vm, rm0, callargs)
                else:
                    result = ic.miss(vm, receiver, callargs)
                if ic.returns:
                    stack.append(result)
            elif op is _CMP_LT_JF:
                b = stack.pop()
                a = stack.pop()
                pc += 1
                if not (a < b):
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            vm.adaptive.on_hot(rm)
                            if (
                                osr is not None
                                and not stack
                                and rm.compiled.opt_level > 0
                            ):
                                entry = osr.entry_for(rm, target)
                                if entry is not None:
                                    return entry(vm, locals_)
                    pc = target
            elif op is _JUMP_IF_FALSE:
                if not stack.pop():
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            vm.adaptive.on_hot(rm)
                            if (
                                osr is not None
                                and not stack
                                and rm.compiled.opt_level > 0
                            ):
                                entry = osr.entry_for(rm, target)
                                if entry is not None:
                                    return entry(vm, locals_)
                    pc = target
            elif op is _ITER_LT_JF:
                a = instr.arg
                pc += 3
                if not (locals_[a[0]] < a[1]):
                    target = a[2]
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            vm.adaptive.on_hot(rm)
                            if (
                                osr is not None
                                and not stack
                                and rm.compiled.opt_level > 0
                            ):
                                entry = osr.entry_for(rm, target)
                                if entry is not None:
                                    return entry(vm, locals_)
                    pc = target
            elif op is _INC:
                a = instr.arg
                i = a[0]
                locals_[i] = locals_[i] + a[1]
                pc += 3
            elif op is _ADD_PUTFIELD:
                second = instr.arg
                b = stack.pop()
                value = stack.pop() + b
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(
                        f"null receiver writing field {second.arg[1]!r}"
                    )
                obj.fields[second.resolved] = value
                # ``second`` IS the shared PUTFIELD Instr: its
                # ``state_hook`` is read live, so hooks installed
                # mid-run fire through the fused form too.
                hook = second.state_hook
                if hook is not None:
                    hook(vm, obj)
                pc += 1
            elif op is _FIELD_INC:
                a = instr.arg
                obj = locals_[a[0]]
                pf = a[1]
                if obj is None:
                    raise NullPointerError(
                        f"null receiver reading field {pf.arg[1]!r}"
                    )
                idx = pf.resolved
                obj.fields[idx] = obj.fields[idx] + a[2]
                # ``pf`` IS the shared PUTFIELD Instr; its state_hook is
                # read live so hooks installed mid-run fire here too.
                hook = pf.state_hook
                if hook is not None:
                    hook(vm, obj)
                pc += 5
            elif op is _ADD_STORE:
                b = stack.pop()
                locals_[instr.arg] = stack.pop() + b
                pc += 1
            elif op is _LOAD_CONST:
                a = instr.arg
                stack.append(locals_[a[0]])
                stack.append(a[1])
                pc += 1
            elif op is _STORE:
                locals_[instr.arg] = stack.pop()
            elif op is _ADD:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op is _ALOAD:
                idx = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in load")
                if not 0 <= idx < len(arr.data):
                    raise ArrayBoundsError(
                        f"index {idx} out of range [0, {len(arr.data)})"
                    )
                stack.append(arr.data[idx])
            elif op is _GETFIELD_RETURN:
                a = instr.arg
                obj = locals_[a[0]]
                if obj is None:
                    raise NullPointerError(
                        f"null receiver reading field {a[2]!r}"
                    )
                return obj.fields[a[1]]
            elif op is _LOAD_RETURN:
                return locals_[instr.arg]
            elif op is _RETURN:
                return stack.pop()
            elif op is _ADD_RETURN:
                b = stack.pop()
                return stack.pop() + b
            elif op is _RETURN_VOID:
                return None
            elif op is _JUMP:
                target = instr.arg
                if target < pc:
                    samples.ticks += 1
                    if samples.ticks >= samples.threshold:
                        vm.adaptive.on_hot(rm)
                        if (
                            osr is not None
                            and not stack
                            and rm.compiled.opt_level > 0
                        ):
                            entry = osr.entry_for(rm, target)
                            if entry is not None:
                                return entry(vm, locals_)
                pc = target
            elif op is _CMP_EQ_JF:
                b = stack.pop()
                a = stack.pop()
                eq = (a is b) if _is_ref(a) or _is_ref(b) else (a == b)
                pc += 1
                if not eq:
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            vm.adaptive.on_hot(rm)
                            if (
                                osr is not None
                                and not stack
                                and rm.compiled.opt_level > 0
                            ):
                                entry = osr.entry_for(rm, target)
                                if entry is not None:
                                    return entry(vm, locals_)
                    pc = target
            elif op is _INVOKEINTERFACE_QUICK:
                ic = instr.resolved
                argc = ic.argc
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                tib = receiver.tib
                if tib is ic.k0:
                    if tel_on:
                        tel.count("ic.hit")
                    rm0 = ic.r0
                    if rm0 is None:
                        result = ic.i0(vm, callargs)
                    else:
                        s0 = rm0.samples
                        s0.invocations += 1
                        s0.ticks += _ENTRY_TICKS
                        if s0.ticks >= s0.threshold:
                            vm.adaptive.on_hot(rm0)
                        result = interpret_quick(vm, rm0, callargs)
                elif tib is ic.k1:
                    if tel_on:
                        tel.count("ic.hit")
                    rm0 = ic.r1
                    if rm0 is None:
                        result = ic.i1(vm, callargs)
                    else:
                        s0 = rm0.samples
                        s0.invocations += 1
                        s0.ticks += _ENTRY_TICKS
                        if s0.ticks >= s0.threshold:
                            vm.adaptive.on_hot(rm0)
                        result = interpret_quick(vm, rm0, callargs)
                else:
                    result = ic.miss(vm, receiver, callargs)
                if ic.returns:
                    stack.append(result)
            elif op is _PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(
                        f"null receiver writing field {instr.arg[1]!r}"
                    )
                slot = instr.resolved
                if type(slot) is int:
                    obj.fields[slot] = value
                else:
                    slot.store(vm, obj, value)
                # Quick code shares PUTFIELD/PUTSTATIC Instr objects
                # with ``info.code``, so hooks installed mid-run (the
                # online controller) are live here too; the installed
                # hook IS the policy, exactly as in interpret().
                hook = instr.state_hook
                if hook is not None:
                    hook(vm, obj)
            elif op is _MUL:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op is _IREM:
                b = stack.pop()
                stack[-1] = jx_rem(stack[-1], b)
            elif op is _SUB:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op is _ASTORE:
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in store")
                if not 0 <= idx < len(arr.data):
                    raise ArrayBoundsError(
                        f"index {idx} out of range [0, {len(arr.data)})"
                    )
                arr.data[idx] = value
            elif op is _LOAD_ADD:
                stack[-1] = stack[-1] + locals_[instr.arg]
                pc += 1
            elif op is _LOAD_SUB:
                stack[-1] = stack[-1] - locals_[instr.arg]
                pc += 1
            elif op is _LOAD_MUL:
                stack[-1] = stack[-1] * locals_[instr.arg]
                pc += 1
            elif op is _INVOKESTATIC:
                argc = instr.arg[2]
                callargs = stack[-argc:] if argc else []
                if argc:
                    del stack[-argc:]
                cell, returns = instr.resolved
                result = cell.compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKESPECIAL:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                if callargs[0] is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                target_rm, returns = instr.resolved
                result = target_rm.compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _CMP_LT:
                b = stack.pop()
                stack[-1] = stack[-1] < b
            elif op is _CMP_EQ:
                b = stack.pop()
                a = stack[-1]
                stack[-1] = (a is b) if _is_ref(a) or _is_ref(b) else (a == b)
            elif op is _IDIV:
                b = stack.pop()
                stack[-1] = jx_truncate_div(stack[-1], b)
            elif op is _ARRAYLEN:
                arr = stack.pop()
                if arr is None:
                    raise NullPointerError("null array in length")
                stack.append(len(arr.data))
            elif op is _POP:
                stack.pop()
            elif op is _DUP:
                stack.append(stack[-1])
            elif op is _JUMP_IF_TRUE:
                if stack.pop():
                    target = instr.arg
                    if target < pc:
                        samples.ticks += 1
                        if samples.ticks >= samples.threshold:
                            vm.adaptive.on_hot(rm)
                            if (
                                osr is not None
                                and not stack
                                and rm.compiled.opt_level > 0
                            ):
                                entry = osr.entry_for(rm, target)
                                if entry is not None:
                                    return entry(vm, locals_)
                    pc = target
            elif op is _CMP_LE:
                b = stack.pop()
                stack[-1] = stack[-1] <= b
            elif op is _CMP_GT:
                b = stack.pop()
                stack[-1] = stack[-1] > b
            elif op is _CMP_GE:
                b = stack.pop()
                stack[-1] = stack[-1] >= b
            elif op is _CMP_NE:
                b = stack.pop()
                a = stack[-1]
                stack[-1] = (
                    (a is not b) if _is_ref(a) or _is_ref(b) else (a != b)
                )
            elif op is _INTRINSIC:
                intr = instr.resolved
                n = intr.nargs
                if n:
                    callargs = stack[-n:]
                    del stack[-n:]
                    result = intr.fn(vm.intrinsic_ctx, *callargs)
                else:
                    result = intr.fn(vm.intrinsic_ctx)
                if intr.returns:
                    stack.append(result)
            elif op is _CONCAT:
                b = stack.pop()
                stack[-1] = jx_str(stack[-1]) + jx_str(b)
            elif op is _GETSTATIC:
                stack.append(vm.jtoc.get(instr.resolved))
            elif op is _PUTSTATIC:
                vm.jtoc.set(instr.resolved, stack.pop())
                hook = instr.state_hook
                if hook is not None:
                    hook(vm, None)
            elif op is _INVOKEVIRTUAL:
                # A megamorphic site de-quickened back to the plain path.
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                offset, returns = instr.resolved
                result = receiver.tib.entries[offset].invoke(vm, callargs)
                if returns:
                    stack.append(result)
            elif op is _INVOKEINTERFACE:
                argc = instr.arg[2]
                callargs = stack[-argc:]
                del stack[-argc:]
                receiver = callargs[0]
                if receiver is None:
                    raise NullPointerError(
                        f"null receiver calling {instr.arg[1]!r}"
                    )
                slot, key, returns = instr.resolved
                compiled = receiver.tib.imt.dispatch(receiver, slot, key)
                result = compiled.invoke(vm, callargs)
                if returns:
                    stack.append(result)
            else:
                handler = _COLD[op]
                if handler is None:  # pragma: no cover
                    raise VMRuntimeError(f"unhandled opcode {op!r}")
                handler(vm, instr, stack)
    except JxStackTrace as trace:
        trace.frames.append(_frame_desc(rm, code, pc))
        raise
    except VMRuntimeError as exc:
        if tel_on:
            tel.count("interp.errors")
        raise JxStackTrace(exc, [_frame_desc(rm, code, pc)]) from exc


# ----------------------------------------------------------------------
# Cold-tail handler table: straight-line stack ops the quick loop's hot
# head never sees in measured workloads.  Handlers take (vm, instr,
# stack) and never touch pc — all branch/return/locals ops stay in the
# loop, so the table stays trivially composable.
# ----------------------------------------------------------------------


def _h_fdiv(vm: Any, instr: Any, stack: list) -> None:
    b = stack.pop()
    if b == 0:
        stack[-1] = float("nan") if stack[-1] == 0 else (
            float("inf") if stack[-1] > 0 else float("-inf")
        )
    else:
        stack[-1] = stack[-1] / b


def _h_neg(vm: Any, instr: Any, stack: list) -> None:
    stack[-1] = -stack[-1]


def _h_not(vm: Any, instr: Any, stack: list) -> None:
    stack[-1] = not stack[-1]


def _h_i2d(vm: Any, instr: Any, stack: list) -> None:
    stack[-1] = float(stack[-1])


def _h_d2i(vm: Any, instr: Any, stack: list) -> None:
    stack[-1] = int(stack[-1])


def _h_shl(vm: Any, instr: Any, stack: list) -> None:
    b = stack.pop()
    stack[-1] = stack[-1] << b


def _h_shr(vm: Any, instr: Any, stack: list) -> None:
    b = stack.pop()
    stack[-1] = stack[-1] >> b


def _h_band(vm: Any, instr: Any, stack: list) -> None:
    b = stack.pop()
    stack[-1] = stack[-1] & b


def _h_bor(vm: Any, instr: Any, stack: list) -> None:
    b = stack.pop()
    stack[-1] = stack[-1] | b


def _h_bxor(vm: Any, instr: Any, stack: list) -> None:
    b = stack.pop()
    stack[-1] = stack[-1] ^ b


def _h_instanceof(vm: Any, instr: Any, stack: list) -> None:
    obj = stack.pop()
    stack.append(
        obj is not None
        and instr.resolved.name in obj.tib.type_info.all_supertypes
    )


def _h_checkcast(vm: Any, instr: Any, stack: list) -> None:
    obj = stack[-1]
    if (
        obj is not None
        and instr.resolved.name not in obj.tib.type_info.all_supertypes
    ):
        raise ClassCastError(
            f"cannot cast {obj.tib.type_info.name} to "
            f"{instr.resolved.name}"
        )


def _h_new(vm: Any, instr: Any, stack: list) -> None:
    stack.append(instr.resolved.allocate(vm))


def _h_newarray(vm: Any, instr: Any, stack: list) -> None:
    length = stack.pop()
    arr = VMArray(instr.arg, length, instr.resolved)
    vm.heap.record_array(length, instr.arg)
    stack.append(arr)


def _h_getfield_shape(vm: Any, instr: Any, stack: list) -> None:
    # GETFIELD whose resolved slot is shape-managed (an unboxed constant
    # or a pinned state field): quickening routes it here instead of
    # GETFIELD_QUICK so the hot loop never branches on slot type.
    obj = stack.pop()
    if obj is None:
        raise NullPointerError(
            f"null receiver reading field {instr.arg[1]!r}"
        )
    stack.append(instr.resolved.read(obj))


def _h_swap(vm: Any, instr: Any, stack: list) -> None:
    stack[-1], stack[-2] = stack[-2], stack[-1]


def _h_nop(vm: Any, instr: Any, stack: list) -> None:
    pass


def _build_cold_table() -> list:
    table: list[Any] = [None] * (max(Op) + 1)
    table[_FDIV] = _h_fdiv
    table[_NEG] = _h_neg
    table[_NOT] = _h_not
    table[_I2D] = _h_i2d
    table[_D2I] = _h_d2i
    table[_SHL] = _h_shl
    table[_SHR] = _h_shr
    table[_BAND] = _h_band
    table[_BOR] = _h_bor
    table[_BXOR] = _h_bxor
    table[_INSTANCEOF] = _h_instanceof
    table[_CHECKCAST] = _h_checkcast
    table[_NEW] = _h_new
    table[_NEWARRAY] = _h_newarray
    table[_GETFIELD_SHAPE] = _h_getfield_shape
    table[_SWAP] = _h_swap
    table[_NOP] = _h_nop
    return table


_COLD = _build_cold_table()


def _frame_desc(rm: Any, code: list, pc: int) -> str:
    index = max(0, min(pc - 1, len(code) - 1))
    line = code[index].line if code else 0
    return f"{rm.qualified_name} (line {line})"


def _is_ref(value: Any) -> bool:
    """True for reference values whose ``==`` must mean identity."""
    return value is not None and not isinstance(
        value, (int, float, str, bool)
    )
