"""The adaptive optimization system.

JxVM's analog of Jikes RVM's AOS (paper §3.2.1): methods start at opt0
(the bytecode interpreter), accumulate *ticks* (16 per entry, 1 per loop
backedge), and are synchronously recompiled at opt1 and then opt2 when
their ticks cross the configured thresholds.

Two paper-relevant behaviors:

* **Mutation happens at opt2** — when the recompiled method is mutable,
  the mutation manager's Fig. 5 actions run right after installation
  (the manager is registered as a recompilation listener).
* **Accelerated hotness detection** (paper Fig. 14) — methods named in
  ``AdaptiveConfig.accelerated`` are promoted straight to the maximum
  opt level on their first invocation, modeling "opt1 and opt2 compiled
  code ... generated immediately after their opt0 compiled code".
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable

from repro.telemetry.core import maybe as _tel_maybe
from repro.telemetry.metrics import COUNT_BUCKETS

#: Sentinel threshold meaning "never promote again".
NEVER = 1 << 60

#: Ticks credited per method entry; backedges credit 1 each.  This is
#: the single definition — the baseline dispatch (`repro.vm.compiled`)
#: and the quickened interpreter's inline-cache fast paths
#: (`repro.vm.interpreter`) both import it from here (it used to be
#: duplicated and only pinned equal by a test).
ENTRY_TICKS = 16

#: Recorded ``tier_promote`` telemetry of one full jbb2000 run: the
#: promotion-tick defaults below are *derived* from this trace instead
#: of hand-picked, so the thresholds stay anchored to measured hotness
#: (regenerate by re-recording the trace after retuning the workload).
_TIER_TRACE = Path(__file__).with_name("tier_trace_jbb2000.json")
_HAND_PICKED_TICKS = {1: 512, 2: 4096}


def _pow2_floor(n: int) -> int:
    return 1 << (max(n, 1).bit_length() - 1)


@lru_cache(maxsize=None)
def _traced_ticks(to_level: int) -> int:
    """Promotion threshold for ``to_level`` seeded from the recorded
    jbb2000 trace: the power-of-two floor of the smallest tick count any
    non-accelerated method was promoted at (promotions fire when ticks
    cross the threshold, so the floor recovers it), clamped to the
    hand-picked value so trace noise can only lower a threshold, never
    raise one past the tuned default.  Falls back to the hand-picked
    value when the trace is missing or has no such promotions."""
    fallback = _HAND_PICKED_TICKS[to_level]
    try:
        with open(_TIER_TRACE, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError):
        return fallback
    ticks = [
        p["ticks"]
        for p in trace.get("promotions", ())
        if p.get("to_level") == to_level and not p.get("accelerated")
    ]
    if not ticks:
        return fallback
    return max(min(_pow2_floor(min(ticks)), fallback), ENTRY_TICKS)


@dataclass
class AdaptiveConfig:
    """Tunables for the adaptive system."""

    #: Ticks one method entry is worth, as a class-level constant (not a
    #: per-instance field: every sampling site reads it as a plain
    #: global for speed, so it is program-wide by construction).
    ENTRY_TICKS = ENTRY_TICKS

    enabled: bool = True
    #: Ticks before promotion opt0 -> opt1 (16 ticks per invocation);
    #: default derived from the recorded jbb2000 tier trace.
    opt1_ticks: int = field(default_factory=lambda: _traced_ticks(1))
    #: Ticks before promotion opt1 -> opt2; likewise trace-derived.
    opt2_ticks: int = field(default_factory=lambda: _traced_ticks(2))
    #: Highest optimization level to use (0 disables recompilation).
    max_opt_level: int = 2
    #: Qualified method names promoted straight to max level on first call.
    accelerated: frozenset[str] = frozenset()


@dataclass
class CompileEvent:
    """One recompilation, for the Fig. 10/11 accounting."""

    qualified_name: str
    opt_level: int
    seconds: float
    code_size_bytes: int
    num_versions: int  # 1 general + specials generated alongside


@dataclass
class CompileStats:
    """Aggregate optimizing-compiler metrics for one VM."""

    events: list[CompileEvent] = field(default_factory=list)
    total_seconds: float = 0.0
    total_code_bytes: int = 0
    special_code_bytes: int = 0
    special_seconds: float = 0.0
    #: Recompiles served by re-linking a persistent-cache artifact
    #: (their seconds still count toward the totals — link time is the
    #: real cost a warm start pays).
    cached_methods: int = 0

    def record(self, event: CompileEvent) -> None:
        self.events.append(event)
        self.total_seconds += event.seconds
        self.total_code_bytes += event.code_size_bytes

    def record_special(self, seconds: float, code_bytes: int) -> None:
        self.total_seconds += seconds
        self.special_seconds += seconds
        self.total_code_bytes += code_bytes
        self.special_code_bytes += code_bytes


class AdaptiveSystem:
    """Sampling-driven synchronous recompilation controller."""

    def __init__(self, vm: Any, config: AdaptiveConfig) -> None:
        self.vm = vm
        self.config = config
        #: Listeners called as fn(rm, opt_level) after each recompilation;
        #: the mutation manager registers its Fig. 5 actions here.
        self.recompile_listeners: list[Callable[[Any, int], None]] = []
        self._compiling = False

    # ------------------------------------------------------------------

    def prime(self, rm: Any) -> None:
        """Set a method's initial promotion threshold."""
        cfg = self.config
        if not cfg.enabled or cfg.max_opt_level < 1:
            rm.samples.threshold = NEVER
        elif rm.info.qualified_name in cfg.accelerated:
            rm.samples.threshold = 1
        else:
            rm.samples.threshold = cfg.opt1_ticks

    def prime_all(self) -> None:
        for rc in self.vm.classes.values():
            for rm in rc.own_methods.values():
                if not rm.info.is_abstract:
                    self.prime(rm)

    # ------------------------------------------------------------------

    def on_hot(self, rm: Any) -> None:
        """Promotion check, called when a method's ticks cross its
        threshold.  Synchronously recompiles and installs."""
        cfg = self.config
        if not cfg.enabled or self._compiling:
            rm.samples.threshold = NEVER
            return
        current = rm.compiled.opt_level
        if current >= cfg.max_opt_level:
            rm.samples.threshold = NEVER
            return
        accelerated = rm.info.qualified_name in cfg.accelerated
        next_level = cfg.max_opt_level if accelerated else current + 1
        next_level = min(next_level, cfg.max_opt_level)
        tel = _tel_maybe(self.vm.telemetry)
        if tel is not None:
            tel.emit(
                "tier_promote",
                method=rm.info.qualified_name,
                from_level=current,
                to_level=next_level,
                ticks=rm.samples.ticks,
                invocations=rm.samples.invocations,
                accelerated=accelerated,
            )
            tel.count(f"adaptive.promotions.opt{next_level}")
            tel.observe(
                "adaptive.ticks_at_promotion",
                rm.samples.ticks,
                bounds=COUNT_BUCKETS,
            )
        # Bump the threshold *before* compiling so nested invocations of
        # this method during compilation cannot re-enter.
        if next_level >= cfg.max_opt_level:
            rm.samples.threshold = NEVER
        else:
            rm.samples.threshold = cfg.opt2_ticks
        self.recompile(rm, next_level)

    def recompile(self, rm: Any, opt_level: int) -> None:
        """Compile ``rm`` at ``opt_level``, install, notify listeners."""
        vm = self.vm
        self._compiling = True
        tel = _tel_maybe(vm.telemetry)
        try:
            if tel is not None:
                tel.emit(
                    "compile_begin",
                    method=rm.info.qualified_name,
                    opt_level=opt_level,
                    special=False,
                )
            start = time.perf_counter()
            new_cm = vm.opt_compiler.compile(rm, opt_level)
            seconds = time.perf_counter() - start
            rm.compile_history.append((opt_level, seconds))
            if getattr(new_cm, "from_cache", False):
                vm.compile_stats.cached_methods += 1
            vm.compile_stats.record(
                CompileEvent(
                    qualified_name=rm.info.qualified_name,
                    opt_level=opt_level,
                    seconds=seconds,
                    code_size_bytes=new_cm.code_size_bytes,
                    num_versions=1,
                )
            )
            if tel is not None:
                tel.emit(
                    "compile_end",
                    dur=seconds,
                    method=rm.info.qualified_name,
                    opt_level=opt_level,
                    special=False,
                    code_size_bytes=new_cm.code_size_bytes,
                )
                tel.count(f"compile.count.opt{opt_level}")
                tel.count(
                    "compile.code_bytes", new_cm.code_size_bytes
                )
                tel.observe(f"compile.seconds.opt{opt_level}", seconds)
                tel.metrics.gauge("vm.compile_seconds").set(
                    vm.compile_stats.total_seconds
                )
            vm.installer.install_general(rm, new_cm)
            for listener in self.recompile_listeners:
                listener(rm, opt_level)
        finally:
            self._compiling = False
