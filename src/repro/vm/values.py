"""Runtime value representations for JxVM.

Jx primitives map onto Python values (``int``, ``float``, ``bool``,
``str``); references are :class:`VMObject` and :class:`VMArray`.  ``null``
is Python ``None``.

Every :class:`VMObject` carries its own ``tib`` pointer — the load-bearing
detail of the whole reproduction: dynamic class mutation works by swapping
this per-object pointer between the class TIB and special (per-hot-state)
TIBs (paper §2.1).
"""

from __future__ import annotations

from typing import Any


class VMObject:
    """A heap object: a field-slot array plus a TIB pointer."""

    __slots__ = ("tib", "fields")

    def __init__(self, tib: Any, num_fields: int) -> None:
        self.tib = tib
        self.fields: list[Any] = [None] * num_fields

    @property
    def jx_class(self):
        """The :class:`~repro.vm.linker.RuntimeClass` this object is an
        instance of — read through the TIB's type-info entry, *never*
        through TIB identity (paper §3.2.3: special TIBs share the class's
        type information)."""
        return self.tib.type_info

    def __repr__(self) -> str:
        return f"<{self.tib.type_info.name} object>"


class VMArray:
    """A Jx array: fixed length, element-type tagged."""

    __slots__ = ("elem_type", "data")

    def __init__(self, elem_type: Any, length: int, fill: Any = None) -> None:
        if length < 0:
            raise VMRuntimeError(f"negative array size {length}")
        self.elem_type = elem_type
        self.data: list[Any] = [fill] * length

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<{self.elem_type}[{len(self.data)}]>"


class VMRuntimeError(Exception):
    """Raised for Jx runtime failures (null deref, bad cast, bounds...)."""


class NullPointerError(VMRuntimeError):
    pass


class ArrayBoundsError(VMRuntimeError):
    pass


class ClassCastError(VMRuntimeError):
    pass


class DivisionByZeroError(VMRuntimeError):
    pass


def jx_truncate_div(a: int, b: int) -> int:
    """Java-semantics integer division (truncate toward zero)."""
    if b == 0:
        raise DivisionByZeroError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def jx_rem(a: int, b: int) -> int:
    """Java-semantics integer remainder (sign follows the dividend)."""
    if b == 0:
        raise DivisionByZeroError("integer remainder by zero")
    return a - jx_truncate_div(a, b) * b


def jx_str(value: Any) -> str:
    """Java-ish string coercion used by the CONCAT instruction."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        # Match Java's Double.toString for whole numbers ("1.0" not "1").
        return repr(value)
    return str(value)
