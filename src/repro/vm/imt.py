"""Interface Method Tables (IMTs).

Jikes RVM dispatches ``invokeinterface`` through a fixed-size table hung
off the TIB; each slot holds either the compiled method directly (one
interface method hashed to the slot) or a conflict stub that searches the
colliding methods (paper §3.2.3, citing Alpern et al. 2001).

The paper's modification for **mutable classes**: a slot stores the
*TIB offset* of the method instead of the compiled-code pointer, so the
dispatch takes one extra load through ``obj.tib.entries[offset]`` — and
thereby automatically reaches the specialized code selected by the
object's current (possibly special) TIB.  One IMT is then shared by the
class TIB and every special TIB.  Non-mutable classes keep the one-load
direct scheme.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.compiled import CompiledMethod
    from repro.vm.values import VMObject

#: Fixed number of IMT slots — a static compilation constant in Jikes.
IMT_SLOTS = 29


def imt_slot_for(method_key: str) -> int:
    """Deterministic hash of an interface method's key to an IMT slot."""
    h = 0
    for ch in method_key:
        h = (31 * h + ord(ch)) & 0x7FFFFFFF
    return h % IMT_SLOTS


class DirectEntry:
    """Non-mutable-class slot: points straight at the compiled method."""

    __slots__ = ("compiled",)

    def __init__(self, compiled: "CompiledMethod") -> None:
        self.compiled = compiled

    def resolve(self, obj: "VMObject", method_key: str) -> "CompiledMethod":
        return self.compiled


class OffsetEntry:
    """Mutable-class slot: stores the TIB offset; dispatch takes the extra
    load through the receiver's current TIB (paper §3.2.3)."""

    __slots__ = ("offset",)

    def __init__(self, offset: int) -> None:
        self.offset = offset

    def resolve(self, obj: "VMObject", method_key: str) -> "CompiledMethod":
        return obj.tib.entries[self.offset]


class ConflictStub:
    """Multiple interface methods hashed to one slot: the stub looks the
    requested method up by key, then resolves like the single-method
    entries do."""

    __slots__ = ("targets",)

    def __init__(self) -> None:
        #: method key -> DirectEntry | OffsetEntry
        self.targets: dict[str, Any] = {}

    def add(self, method_key: str, entry: Any) -> None:
        self.targets[method_key] = entry

    def resolve(self, obj: "VMObject", method_key: str) -> "CompiledMethod":
        return self.targets[method_key].resolve(obj, method_key)


class IMT:
    """One class's interface method table."""

    __slots__ = ("slots",)

    def __init__(self) -> None:
        self.slots: list[Any] = [None] * IMT_SLOTS

    def install(self, method_key: str, entry: Any) -> int:
        """Install ``entry`` for ``method_key``; returns the slot index."""
        idx = imt_slot_for(method_key)
        current = self.slots[idx]
        if current is None:
            self.slots[idx] = entry
        elif isinstance(current, ConflictStub):
            current.add(method_key, entry)
        else:
            # Promote to a conflict stub.  The previous single entry's key
            # is unknown here, so installation happens via install_all.
            raise RuntimeError(
                "IMT.install collision; use install_all for conflict handling"
            )
        return idx

    def install_all(self, entries: dict[str, Any]) -> dict[str, int]:
        """Install all interface methods at once, building conflict stubs
        where several keys hash to the same slot.  Returns key -> slot."""
        by_slot: dict[int, list[str]] = {}
        for key in entries:
            by_slot.setdefault(imt_slot_for(key), []).append(key)
        key_to_slot: dict[str, int] = {}
        for slot, keys in by_slot.items():
            if len(keys) == 1:
                self.slots[slot] = entries[keys[0]]
            else:
                stub = ConflictStub()
                for key in sorted(keys):
                    stub.add(key, entries[key])
                self.slots[slot] = stub
            for key in keys:
                key_to_slot[key] = slot
        return key_to_slot

    def dispatch(
        self, obj: "VMObject", slot: int, method_key: str
    ) -> "CompiledMethod":
        entry = self.slots[slot]
        if entry is None:
            raise RuntimeError(
                f"empty IMT slot {slot} for interface method {method_key!r}"
            )
        return entry.resolve(obj, method_key)

    def patch_direct(self, method_key: str, compiled: "CompiledMethod") -> None:
        """Retarget a DirectEntry after recompilation (non-mutable classes)."""
        slot = imt_slot_for(method_key)
        entry = self.slots[slot]
        if isinstance(entry, ConflictStub):
            entry = entry.targets.get(method_key)
        if isinstance(entry, DirectEntry):
            entry.compiled = compiled
