"""Shape-based packed object layout (ROADMAP: "Shape-based packed
object layout").

Following "Adaptive JIT Value Class Optimization" (Pape, Bolz &
Hirschfeld), each (class, hot-state) pair owns a :class:`Shape`: a
packed slot layout hung off the TIB.  Three things shrink an object
relative to the declared-field model:

* **Packing** — modeled bytes use declared field-type widths (``int`` 4,
  ``boolean``/``byte`` 1, ``char`` 2, ``double``/``long`` 8, references
  8) summed and rounded up to 8-byte object alignment, instead of one
  machine word per declared field.  Physical storage stays one Python
  list element per residual field; the *modeled* heap shrinks, which is
  what the Fig. 13-15 heap-population accounting measures.
* **Constant unboxing** — a field every constructor provably assigns
  the same literal (and nothing else ever writes) is removed from the
  instance entirely; its :class:`UnboxedField` slot serves reads from
  the shape side.  The proof reuses the lifetime-constant machinery
  (:mod:`repro.mutation.lifetime`) plus constructor-escape checks.
* **Hot-state pinning** — a mutable class's own state fields are laid
  out at the *tail* of its slot array; the special TIB of a hot state
  carries a pinning shape whose ``pinned`` table holds the state values,
  so instances entering the hot state drop the tail storage and
  rematerialize it on exit.  A TIB swap is thereby a layout transition
  (:func:`transition`), batched by the PR 3 coalescer and policed by
  the PR 7 deopt guards exactly like any other swap.

Slot identity is preserved by construction: :class:`ShapeField` *is*
its packed index (an ``int`` subclass), so every existing consumer —
specialization bindings, state-read sets, inline caches, cache-key
payloads — keeps working on packed slots unchanged.  Soundness of
pinning rests on the mutation manager's exact-class checks: a special
TIB of class ``C`` is only ever installed on an object whose dynamic
type is exactly ``C``, whose storage length is therefore exactly
``C``'s slot count, making ``C``'s own state fields the trailing slots.
"""

from __future__ import annotations

from typing import Any

from repro.bytecode.classfile import CONSTRUCTOR_NAME, FieldInfo, ProgramUnit
from repro.bytecode.opcodes import CALL_OPS, Op
from repro.mutation.lifetime import (
    ctor_constant_fields,
    fields_assigned_outside_ctors,
)
from repro.telemetry.core import maybe as _tel_maybe
from repro.vm.heap import OBJECT_HEADER_BYTES, WORD_BYTES

#: Modeled widths of packed primitive fields; everything else (class
#: references, strings, arrays) is one machine word.
FIELD_WIDTH_BYTES = {
    "int": 4,
    "boolean": 1,
    "byte": 1,
    "char": 2,
    "double": 8,
    "long": 8,
}


def field_width(jx_type: Any) -> int:
    """Packed width of one field of static type ``jx_type``."""
    if jx_type.is_array or not jx_type.is_primitive:
        return WORD_BYTES
    return FIELD_WIDTH_BYTES.get(jx_type.name, WORD_BYTES)


def align8(n: int) -> int:
    """Round up to the modeled 8-byte object alignment."""
    return (n + 7) & ~7


def packed_bytes(field_infos: list) -> int:
    """Modeled object size for a packed run of fields (header included).
    Field reordering is assumed to eliminate interior padding, so the
    widths sum directly and only the object end is aligned."""
    return OBJECT_HEADER_BYTES + align8(
        sum(field_width(f.type) for f in field_infos)
    )


class ShapeField(int):
    """A packed slot index for a pinnable state field.

    Subclasses ``int`` so that *being* the index keeps every slot
    consumer working (dict keys, frozensets, sorted cache payloads,
    inline-cache idiom checks); the dispatch surfaces discriminate with
    ``type(slot) is int``, which is ``False`` here, and route reads and
    writes through :meth:`read`/:meth:`store` so truncated tail storage
    is consulted on the shape (reads) or rematerialized (writes).
    (No ``__slots__``: variable-length builtins like ``int`` reject
    nonempty slot declarations.)
    """

    def __new__(cls, index: int, name: str) -> "ShapeField":
        self = super().__new__(cls, index)
        self.name = name
        return self

    def read(self, obj: Any) -> Any:
        f = obj.fields
        return f[self] if self < len(f) else obj.tib.shape.pinned[self]

    def store(self, vm: Any, obj: Any, value: Any) -> None:
        f = obj.fields
        if self >= len(f):
            # Writing a pinned slot: rematerialize the tail from the
            # current shape first, then overwrite.  The following state
            # hook re-evaluates the TIB and re-truncates if the object
            # lands in another hot state.
            shape = obj.tib.shape
            f.extend(shape.tail)
            vm.heap.pinned_bytes_restored += shape.tail_bytes
        f[self] = value


class UnboxedField:
    """A field unboxed out of the instance entirely.

    Installed as ``FieldInfo.slot`` for fields proven lifetime-constant
    across every constructor.  Reads return the proven constant; the
    constructor's own store of that same literal is dropped.
    """

    __slots__ = ("key", "name", "value")

    def __init__(self, declaring_class: str, name: str, value: Any) -> None:
        self.key = f"{declaring_class}.{name}"
        self.name = name
        self.value = value

    def read(self, obj: Any) -> Any:
        return self.value

    def store(self, vm: Any, obj: Any, value: Any) -> None:
        # Provably the same literal the shape already holds.
        pass

    def __repr__(self) -> str:
        return f"<unboxed {self.key}={self.value!r}>"


class Shape:
    """One packed layout: a (class, hot-state) pair's field geometry."""

    __slots__ = (
        "class_name",
        "n_slots",
        "size_bytes",
        "tail",
        "tail_bytes",
        "pinned",
        "state_key",
    )

    def __init__(
        self,
        class_name: str,
        n_slots: int,
        size_bytes: int,
        tail: tuple = (),
        tail_bytes: int = 0,
        pinned: dict | None = None,
        state_key: Any = None,
    ) -> None:
        self.class_name = class_name
        #: Physical slot count instances with this shape store.
        self.n_slots = n_slots
        #: Modeled bytes of one instance with this shape.
        self.size_bytes = size_bytes
        #: Pinned-slot values in slot order — what rematerialization
        #: appends when the object leaves this shape.
        self.tail = tail
        #: Modeled bytes the dropped tail is worth.
        self.tail_bytes = tail_bytes
        #: slot -> pinned value, for guarded reads of truncated slots.
        self.pinned = pinned if pinned is not None else {}
        self.state_key = state_key

    @property
    def is_pinning(self) -> bool:
        return bool(self.tail)

    def __repr__(self) -> str:
        kind = f"pin:{self.state_key}" if self.is_pinning else "base"
        return (
            f"<Shape {self.class_name} [{kind}] {self.n_slots} slots "
            f"{self.size_bytes}B>"
        )


def pinned_shape(rc: Any, state_key: Any, values_by_slot: dict) -> Any:
    """The pinning shape for one hot state of ``rc``, or the class's
    base shape when the class has no pinnable tail (or shapes are off).
    ``values_by_slot`` maps every plan state slot to its bound value."""
    base = rc.class_tib.shape
    if base is None or not rc.pin_slots:
        return base
    pinned = {s: values_by_slot[s] for s in rc.pin_slots}
    return Shape(
        class_name=rc.name,
        n_slots=base.n_slots - len(rc.pin_slots),
        size_bytes=rc.pinned_alloc_bytes,
        tail=tuple(values_by_slot[s] for s in rc.pin_slots),
        tail_bytes=base.size_bytes - rc.pinned_alloc_bytes,
        pinned=pinned,
        state_key=state_key,
    )


def transition(vm: Any, obj: Any, old_shape: Any, new_shape: Any) -> None:
    """Migrate ``obj``'s packed storage after a TIB swap changed its
    shape.  Every call site has just performed (and counted) the swap,
    so each ``shape_transition`` is paired with a ``record_swap``."""
    if old_shape is new_shape or new_shape is None or old_shape is None:
        return
    f = obj.fields
    n = new_shape.n_slots
    if len(f) > n:
        # Entering a hot state: the pinned tail drops its storage.
        del f[n:]
        vm.heap.pinned_bytes_dropped += new_shape.tail_bytes
    elif len(f) < n:
        # Leaving a hot state: rematerialize the old shape's tail.
        f.extend(old_shape.tail)
        vm.heap.pinned_bytes_restored += old_shape.tail_bytes
    else:
        # Same slot count (pin -> pin): reads consult the new pinned
        # table; nothing physical moves.
        return
    vm.heap.shape_transitions += 1
    tel = _tel_maybe(vm.telemetry)
    if tel is not None:
        tel.emit(
            "shape_transition",
            cls=new_shape.class_name,
            from_slots=old_shape.n_slots,
            to_slots=n,
        )
        tel.count("shapes.transitions")


# ---------------------------------------------------------------------------
# Unboxing proof
# ---------------------------------------------------------------------------

def _is_init_special(instr: Any) -> bool:
    return (
        instr.op is Op.INVOKESPECIAL
        and instr.arg[1].startswith(CONSTRUCTOR_NAME)
    )


def _ctor_assignment_clean(
    unit: ProgramUnit, method: Any, field_key: tuple
) -> bool:
    """True if ``method`` (a constructor) assigns ``field_key`` before
    the receiver can escape and never reads it.

    The assignment must precede every operation through which ``this``
    could become reachable to code observing the still-default field: a
    call (super-constructor chaining excepted — see
    :func:`_super_ctors_clean`), a static store, or an array store.
    """
    last_put = -1
    first_escape = len(method.code)
    for i, instr in enumerate(method.code):
        op = instr.op
        if op in (Op.GETFIELD, Op.PUTFIELD):
            finfo = unit.lookup_field(*instr.arg)
            if finfo is not None and finfo.key == field_key:
                if op is Op.GETFIELD:
                    return False  # read-before-write hazard
                last_put = i
        elif (
            (op in CALL_OPS and not _is_init_special(instr))
            or op in (Op.PUTSTATIC, Op.ASTORE)
        ) and i < first_escape:
            first_escape = i
    return 0 <= last_put < first_escape


def _super_ctors_clean(unit: ProgramUnit, class_name: str) -> bool:
    """True if no transitive super-constructor can dispatch virtually
    back down into the class under construction (which could read a
    not-yet-assigned field)."""
    cls = unit.classes.get(class_name)
    cls = unit.classes.get(cls.super_name) if cls and cls.super_name else None
    while cls is not None:
        for method in cls.constructors():
            for instr in method.code:
                if instr.op in (Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE):
                    return False
        cls = unit.classes.get(cls.super_name) if cls.super_name else None
    return True


def unboxable_fields(
    unit: ProgramUnit, class_name: str, state_keys: set
) -> dict[str, Any]:
    """Field name -> proven constant, for fields of ``class_name``
    eligible for unboxing.

    A field qualifies iff it is instance-declared in ``class_name``
    itself, ``class_name`` is a leaf class with at least one
    constructor, every constructor assigns the field the same literal
    (per :func:`ctor_constant_fields`), nothing outside the
    constructors ever writes it, it is not a mutation-plan state field,
    and the assignment provably happens before the receiver escapes
    (:func:`_ctor_assignment_clean`, :func:`_super_ctors_clean`).
    """
    cls = unit.classes.get(class_name)
    if cls is None or cls.is_interface:
        return {}
    ctors = cls.constructors()
    if not ctors or unit.subclasses_of(class_name):
        return {}
    agreed: set | None = None
    for consts in ctor_constant_fields(unit, class_name).values():
        items = set(consts.items())
        agreed = items if agreed is None else agreed & items
    if not agreed:
        return {}
    outside = fields_assigned_outside_ctors(unit, class_name)
    if not _super_ctors_clean(unit, class_name):
        return {}
    out: dict[str, Any] = {}
    for fkey, value in sorted(agreed, key=lambda kv: kv[0]):
        decl, _, fname = fkey.partition(".")
        if decl != class_name or fkey in outside:
            continue
        finfo = cls.fields.get(fname)
        if finfo is None or finfo.is_static:
            continue
        if (decl, fname) in state_keys:
            continue
        if all(
            _ctor_assignment_clean(unit, ctor, finfo.key) for ctor in ctors
        ):
            out[fname] = value
    return out


# ---------------------------------------------------------------------------
# Layout installation
# ---------------------------------------------------------------------------

def install_shapes(vm: Any, plan: Any) -> None:
    """Recompute every class's field layout as a packed shape.

    Runs after linking and *before* the mutation manager attaches, so
    the manager's slot lookups (state hooks, specialization bindings,
    lifetime-constant publication) all see packed slots.  Idempotent to
    skip: with live objects the layouts are frozen (the online
    controller attaches plans mid-run; those VMs keep declared layouts).
    """
    if vm.heap.objects_allocated:
        return
    unit: ProgramUnit = vm.unit
    tel = _tel_maybe(vm.telemetry)

    # Instance state-field identities from the mutation plan: these must
    # stay boxed (pinning handles them) and, when declared by the plan
    # class itself, sink to the layout tail so hot states can drop them.
    state_keys: set[tuple[str, str]] = set()
    planned: set[str] = set()
    if plan is not None:
        for cp in plan.classes.values():
            planned.add(cp.class_name)
            for spec in cp.instance_fields:
                state_keys.add((spec.declaring_class, spec.field_name))

    unboxed_count = 0
    # vm.classes is in linker topological order: supers precede subs, so
    # a class's packed prefix (its super's layout) is already final.
    packed: dict[str, list[FieldInfo]] = {}
    for rc in vm.classes.values():
        if rc.is_interface:
            continue
        info = rc.info
        base = packed.get(rc.super_rc.name, []) if rc.super_rc else []
        own = [f for f in info.fields.values() if not f.is_static]
        unbox = unboxable_fields(unit, rc.name, state_keys)
        ordinary: list[FieldInfo] = []
        tail: list[FieldInfo] = []
        for finfo in own:
            if finfo.name in unbox:
                continue
            if rc.name in planned and (rc.name, finfo.name) in state_keys:
                tail.append(finfo)
            else:
                ordinary.append(finfo)
        layout = base + ordinary + tail
        packed[rc.name] = layout

        for idx, finfo in enumerate(layout[len(base):], start=len(base)):
            if finfo in tail:
                finfo.slot = ShapeField(idx, finfo.name)
            else:
                finfo.slot = idx
        for finfo in own:
            if finfo.name in unbox:
                finfo.slot = UnboxedField(
                    rc.name, finfo.name, unbox[finfo.name]
                )
                unboxed_count += 1
                if tel is not None:
                    tel.emit(
                        "field_unboxed",
                        cls=rc.name,
                        field=finfo.name,
                        value=repr(unbox[finfo.name]),
                    )

        rc.field_layout = {f.name: int(f.slot) for f in layout}
        rc.field_defaults = [f.type.default_value() for f in layout]
        rc.num_fields = len(layout)
        rc.alloc_bytes = packed_bytes(layout)
        rc.declared_bytes = (
            OBJECT_HEADER_BYTES + (len(layout) + len(unbox)) * WORD_BYTES
        )
        rc.pin_slots = tuple(int(f.slot) for f in tail)
        rc.pinned_alloc_bytes = packed_bytes(layout[: len(layout) - len(tail)])
        rc.class_tib.shape = Shape(
            class_name=rc.name,
            n_slots=len(layout),
            size_bytes=rc.alloc_bytes,
        )

    if tel is not None and unboxed_count:
        tel.count("shapes.fields_unboxed", unboxed_count)

    # Field slots moved: re-resolve every field-access site against the
    # new layout (the linker's resolution is idempotent).
    for rc in vm.classes.values():
        for rm in rc.own_methods.values():
            if rm.info.is_abstract:
                continue
            for instr in rm.info.code:
                if instr.op in (Op.GETFIELD, Op.PUTFIELD):
                    finfo = unit.lookup_field(*instr.arg)
                    if finfo is not None:
                        instr.resolved = finfo.slot
