"""Quickstart: compile a Jx program, build a mutation plan offline, and
watch dynamic class hierarchy mutation specialize a hot method.

This walks the paper's SalaryDB example (Figure 2) end to end:

1. compile Jx source to bytecode;
2. run the offline pipeline — hot-method profiling, EQ1 state-field
   analysis, hot-state value profiling — to produce a MutationPlan;
3. run the program twice (mutation off / on) and compare;
4. print the specialized code the mutation framework generated.

Run:  python examples/quickstart.py
"""

from repro import VM, compile_source
from repro.mutation import build_mutation_plan

SOURCE = """
class Employee {
    double salary;
    public void raise() { }
}

class SalaryEmployee extends Employee {
    private int grade;   // can only be 0 to 3
    SalaryEmployee(int g) { grade = g; }
    public void raise() {
        if (grade < 0 || grade > 3) { Sys.print("bad grade"); }
        if (grade == 0) { salary += 1.0; }
        else if (grade == 1) { salary += 2.0; }
        else if (grade == 2) { salary *= 1.01; }
        else { salary *= 1.02; }
    }
}

class Main {
    static void main() {
        Employee[] emps = new Employee[40];
        for (int i = 0; i < 40; i++) { emps[i] = new SalaryEmployee(i % 4); }
        for (int it = 0; it < 4000; it++) {
            for (int j = 0; j < emps.length; j++) { emps[j].raise(); }
        }
        double total = 0.0;
        for (int j = 0; j < 40; j++) { total += emps[j].salary; }
        Sys.print("total=" + total);
    }
}
"""


def main() -> None:
    print("=== 1. Offline analysis (paper Fig. 3) ===")
    plan = build_mutation_plan(SOURCE)
    print(plan.describe())
    print()

    print("=== 2. Mutation OFF ===")
    vm_off = VM(compile_source(SOURCE))
    result_off = vm_off.run()
    print(result_off.output.strip(),
          f"  ({result_off.wall_seconds:.3f}s)")

    print()
    print("=== 3. Mutation ON ===")
    vm_on = VM(compile_source(SOURCE), mutation_plan=plan)
    result_on = vm_on.run()
    print(result_on.output.strip(),
          f"  ({result_on.wall_seconds:.3f}s)")
    assert result_on.output == result_off.output, "behavior must not change!"
    speedup = result_off.wall_seconds / result_on.wall_seconds - 1
    print(f"speedup: {speedup:+.1%}   "
          f"TIB swaps: {vm_on.mutation_manager.tib_swaps}")

    print()
    print("=== 4. What the mutation framework generated ===")
    print(vm_on.mutation_manager.describe())
    rm = vm_on.classes["SalaryEmployee"].own_methods["raise"]
    print()
    print("--- general raise() (paper Fig. 2c: one dispatch chain) ---")
    print(rm.compiled.source_text)
    special = rm.specials[((0,), ())]
    print("--- specialized raise() for grade=0 (paper Fig. 2b/d) ---")
    print(special.source_text)


if __name__ == "__main__":
    main()
