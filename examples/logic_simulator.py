"""Metamorphic logic simulation — the Maurer-style scenario (paper §1,
§6: SimLogic).

A gate-level netlist where each Gate's `kind` field decides its
evaluation function.  Class mutation splits Gate into per-kind implicit
subclasses (GateAND, GateNAND, ... in spirit), so the hot `eval` loop
dispatches straight to branch-free specialized code.

This example also demonstrates *runtime variant behavior* (paper §1):
mid-simulation, a block of gates is rewired from NAND to XOR — the
mutation manager swaps their TIB pointers to the XOR special TIB on the
spot, and the simulation keeps running specialized code.

Run:  python examples/logic_simulator.py
"""

from repro import VM, compile_source
from repro.mutation import build_mutation_plan

SOURCE = """
class Gate {
    private int kind;   // 0=AND 1=OR 2=NOT 3=XOR 4=NAND
    int in0;
    int in1;
    int out;
    Gate(int k, int a, int b, int o) {
        kind = k;
        in0 = a; in1 = b; out = o;
    }
    public void rewire(int k) { kind = k; }
    public void eval(boolean[] wires) {
        boolean a = wires[in0];
        boolean b = wires[in1];
        boolean r = false;
        if (kind == 0) { r = a && b; }
        else if (kind == 1) { r = a || b; }
        else if (kind == 2) { r = !a; }
        else if (kind == 3) { r = (a && !b) || (!a && b); }
        else { r = !(a && b); }
        wires[out] = r;
    }
}

class Main {
    static void main() {
        Sys.randSeed(2006);
        int inputs = 16;
        int n = 300;
        Gate[] gates = new Gate[n];
        boolean[] wires = new boolean[inputs + n];
        for (int i = 0; i < n; i++) {
            int kind = 4;                       // NAND-heavy netlist
            int roll = Sys.randInt(10);
            if (roll < 4) { kind = roll; }
            gates[i] = new Gate(kind, Sys.randInt(inputs + i),
                                Sys.randInt(inputs + i), inputs + i);
        }
        int checksum = 0;
        for (int cycle = 0; cycle < 1200; cycle++) {
            for (int w = 0; w < inputs; w++) {
                wires[w] = ((cycle * 2654435761 >> (w % 16)) & 1) == 1;
            }
            for (int g = 0; g < n; g++) { gates[g].eval(wires); }
            int high = 0;
            for (int w = 0; w < wires.length; w++) {
                if (wires[w]) { high++; }
            }
            checksum = (checksum + high) % 1000000007;
            // Metamorphosis: halfway through, rewire a block of gates.
            if (cycle == 600) {
                for (int g = 0; g < 40; g++) { gates[g].rewire(3); }
            }
        }
        Sys.print("checksum=" + checksum);
    }
}
"""


def main() -> None:
    plan = build_mutation_plan(SOURCE)
    print("mutation plan:")
    print(plan.describe())
    print()

    off = VM(compile_source(SOURCE))
    r_off = off.run()
    on = VM(compile_source(SOURCE), mutation_plan=plan)
    r_on = on.run()
    assert r_on.output == r_off.output
    print(f"mutation off: {r_off.output.strip()}  {r_off.wall_seconds:.3f}s")
    print(f"mutation on:  {r_on.output.strip()}  {r_on.wall_seconds:.3f}s")
    print(f"speedup: {r_off.wall_seconds / r_on.wall_seconds - 1:+.1%}")
    print()
    manager = on.mutation_manager
    print(f"TIB swaps (includes the cycle-600 rewiring wave): "
          f"{manager.tib_swaps}")
    rc = on.classes["Gate"]
    print(f"Gate has {len(rc.special_tibs)} special TIBs "
          f"(one per hot gate kind)")
    rm = rc.own_methods["eval"]
    for key, cm in sorted(rm.specials.items(), key=lambda kv: kv[0]):
        print(f"  specialized eval for kind={key[0][0]}: "
              f"{cm.code_size_bytes} bytes "
              f"(general: {rm.compiled.code_size_bytes})")


if __name__ == "__main__":
    main()
