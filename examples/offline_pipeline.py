"""The offline analysis pipeline, step by step (paper §3.1, Fig. 3).

Instead of the one-call `build_mutation_plan`, this example runs each
stage separately and prints its artifacts:

1. hot-method profiling (the VTune stage);
2. EQ1 state-field scoring — including why non-state fields get
   rejected;
3. value profiling and hot-state derivation;
4. object lifetime constant analysis (paper §4, Fig. 8);
5. exporting/reloading the plan as JSON.

Run:  python examples/offline_pipeline.py
"""

from repro import compile_source
from repro.mutation import MutationConfig
from repro.mutation.hot_states import derive_hot_states
from repro.mutation.lifetime import analyze_lifetime_constants
from repro.mutation.state_fields import collect_field_usage, derive_state_fields
from repro.profiling import (
    ValueProfiler,
    plan_from_json,
    plan_to_json,
    profile_methods,
)
from repro.mutation.pipeline import build_mutation_plan

SOURCE = """
class Screen {
    int rows;
    int cols;
    Screen() { rows = 24; cols = 80; }
    public int clip(int len) {
        if (len > cols) { return cols; }
        return len;
    }
}
class Renderer {
    private Screen screen;
    private int styleMode;     // 0 plain, 1 markup (dominant)
    int emitted;
    Renderer(int style) {
        screen = new Screen();
        styleMode = style;
    }
    public int emit(string text) {
        int len = screen.clip(Sys.len(text));
        if (styleMode == 1) { len += 13; }
        emitted += len;
        return len;
    }
}
class Main {
    static void main() {
        Renderer r = new Renderer(1);
        int total = 0;
        for (int i = 0; i < 3000; i++) {
            total += r.emit("line " + (i % 50));
        }
        Sys.print("total=" + total);
    }
}
"""


def main() -> None:
    config = MutationConfig()

    print("=== step 1: hot methods (profiling run #1) ===")
    unit = compile_source(SOURCE)
    profile = profile_methods(unit)
    print(profile.report(top=8))
    hotness = profile.hotness_by_method()
    hot_classes = profile.hot_classes(config.hot_method_share)
    hot_classes -= {"Sys", "Object", "StringBuilder"}
    print("hot classes:", sorted(hot_classes))
    print()

    print("=== step 2: EQ1 state-field scoring ===")
    usage = collect_field_usage(unit, hotness, config)
    for key, entry in sorted(usage.items(),
                             key=lambda kv: -kv[1].score(config))[:6]:
        print(f"  {key:30s} V = {entry.score(config):8.4f} "
              f"(branch {entry.branch_score:.4f} "
              f"- R*assign {entry.assign_score:.4f})")
    fields = derive_state_fields(unit, hot_classes, hotness, config)
    print("state fields:", {
        cls: [s.key for s in specs] for cls, specs in fields.items()
    })
    print()

    print("=== step 3: hot states (profiling run #2) ===")
    unit2 = compile_source(SOURCE)
    candidates = {
        cls: ([s for s in specs if not s.is_static],
              [s for s in specs if s.is_static])
        for cls, specs in fields.items()
    }
    profiler = ValueProfiler(unit2, candidates)
    value_profiles = profiler.run()
    print(profiler.report())
    for cls, vp in value_profiles.items():
        inst, stat, states = derive_hot_states(vp, config)
        print(f"  {cls}: hot states "
              f"{[ (h.instance_values, round(h.share, 2)) for h in states ]}")
    print()

    print("=== step 4: object lifetime constants (Fig. 8) ===")
    lifetime = analyze_lifetime_constants(unit, sorted(fields))
    for key, info in lifetime.items():
        print(f"  {key} -> {info.target_class} "
              f"{info.field_values_by_name}")
    print()

    print("=== step 5: plan serialization round-trip ===")
    plan = build_mutation_plan(SOURCE, config=config)
    text = plan_to_json(plan)
    print(text[:400] + ("..." if len(text) > 400 else ""))
    restored = plan_from_json(text)
    assert set(restored.classes) == set(plan.classes)
    print("round-trip OK:", sorted(restored.classes))


if __name__ == "__main__":
    main()
