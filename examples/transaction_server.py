"""Transaction processing under mutation — the SPECjbb scenario
(paper §6/§7, Figures 13-15).

Runs the bundled SPECjbb2000-style workload warehouse by warehouse on
two persistent VMs (mutation off/on), printing per-warehouse throughput
so you can watch the paper's dynamics: early warehouses pay for
recompilation and specialized-version generation, later warehouses reap
the specialized code.

Also shows the paper's Figure 7 object-lifetime-constant chain:
`DeliveryTransaction.deliveryScreen -> DisplayScreen{rows=24, cols=80}`
feeding specialization inlining.

Run:  python examples/transaction_server.py
"""

import time

from repro import VM, compile_source
from repro.mutation import build_mutation_plan
from repro.workloads import get_workload


def main() -> None:
    spec = get_workload("jbb2000")

    print("=== offline pipeline on the scaled-down profiling build ===")
    plan = build_mutation_plan(
        spec.profile_source(), entry_class=spec.entry_class
    )
    print(plan.describe())
    print()

    print("=== 8 warehouses, mutation off vs. on ===")
    vms = {}
    for tag, p in (("off", None), ("on", plan)):
        unit = compile_source(spec.bench_source(),
                              entry_class=spec.entry_class)
        vms[tag] = VM(unit, mutation_plan=p)

    print(f"{'wh':>3s} {'off tx/s':>10s} {'on tx/s':>10s} {'delta':>8s}")
    for wh in range(1, 9):
        row = {}
        for tag, vm in vms.items():
            start = time.perf_counter()
            done = vm.call_static("Main", "runSlice", [])
            row[tag] = done / (time.perf_counter() - start)
        delta = row["on"] / row["off"] - 1
        print(f"{wh:>3d} {row['off']:>10.0f} {row['on']:>10.0f} "
              f"{delta:>7.1%}")

    on = vms["on"]
    manager = on.mutation_manager
    print()
    print("=== mutation activity ===")
    print(manager.describe())
    print()
    print("special TIB memory: "
          f"{on.tib_space.special_tib_bytes} bytes "
          f"({on.tib_space.special_tib_count} special TIBs) — "
          "paper Fig. 12 reports ~1KB for SPECjbb2000")
    print(f"allocations: {on.heap.objects_allocated} objects, "
          f"{on.heap.bytes_allocated // 1024} KiB modeled")
    print("top allocation sites:", on.heap.top_classes(5))


if __name__ == "__main__":
    main()
