"""Semantic analysis tests: typing rules, resolution, and errors."""

import pytest

from repro.lang import compile_source
from repro.lang.errors import SemanticError


def ok(source):
    return compile_source(source)


def bad(source, fragment):
    with pytest.raises(SemanticError) as err:
        compile_source(source)
    assert fragment in str(err.value), str(err.value)


M = "class Main {{ static void main() {{ {} }} }}"


def test_unknown_identifier():
    bad(M.format("x = 1;"), "unknown identifier")


def test_unknown_type():
    bad("class Main { static void main() { Foo f = null; } }",
        "unknown type")


def test_condition_must_be_boolean():
    bad(M.format("if (1) { }"), "must be boolean")


def test_arith_type_mismatch():
    bad(M.format('int x = 1 + true;'), "numeric")


def test_string_concat_accepts_anything():
    ok(M.format('string s = "v=" + 1 + true + 2.5 + null;'))


def test_int_widens_to_double():
    ok(M.format("double d = 3;"))


def test_double_does_not_narrow_implicitly():
    bad(M.format("int x = 3.5;"), "cannot convert")


def test_lossy_compound_assign_rejected():
    bad(M.format("int x = 1; x += 2.5;"), "lossy")


def test_modulo_requires_ints():
    bad(M.format("double d = 5.0; int x = 5 % 2; d = d % 2.0;"),
        "'%'")


def test_return_type_checked():
    bad("class Main { static int f() { return true; } static void main(){} }",
        "cannot convert")


def test_void_cannot_return_value():
    bad("class Main { static void main() { return 1; } }",
        "void method")


def test_missing_return_value():
    bad("class Main { static int f() { return; } static void main(){} }",
        "missing return value")


def test_duplicate_variable():
    bad(M.format("int x = 1; int x = 2;"), "already declared")


def test_variable_scoping_allows_sibling_blocks():
    ok(M.format("{ int x = 1; } { int x = 2; }"))


def test_break_outside_loop():
    bad(M.format("break;"), "outside of loop")


def test_this_in_static_context():
    bad("class Main { int f; static void main() { int x = f; } }",
        "static context")


def test_static_field_ok_from_static():
    ok("class Main { static int f; static void main() { int x = f; } }")


def test_private_field_inaccessible():
    bad(
        """
        class A { private int secret; }
        class Main { static void main() { A a = new A(); int x = a.secret; } }
        """,
        "private",
    )


def test_default_access_field_accessible():
    ok(
        """
        class A { int open; }
        class Main { static void main() { A a = new A(); int x = a.open; } }
        """
    )


def test_call_arity_checked():
    bad(
        """
        class A { void m(int x) { } }
        class Main { static void main() { A a = new A(); a.m(); } }
        """,
        "expects 1 argument",
    )


def test_override_signature_must_match():
    bad(
        """
        class A { int m() { return 1; } }
        class B extends A { double m() { return 2.0; } }
        class Main { static void main() { } }
        """,
        "different signature",
    )


def test_interface_must_be_implemented():
    bad(
        """
        interface I { int f(); }
        class A implements I { }
        class Main { static void main() { } }
        """,
        "does not implement",
    )


def test_interface_implemented_via_superclass():
    ok(
        """
        interface I { int f(); }
        class Base { public int f() { return 1; } }
        class A extends Base implements I { }
        class Main { static void main() { } }
        """
    )


def test_inheritance_cycle_detected():
    bad(
        """
        class A extends B { }
        class B extends A { }
        class Main { static void main() { } }
        """,
        "cycle",
    )


def test_cannot_extend_interface():
    bad(
        """
        interface I { }
        class A extends I { }
        class Main { static void main() { } }
        """,
        "cannot extend interface",
    )


def test_cannot_instantiate_interface():
    bad(
        """
        interface I { }
        class Main { static void main() { I i = new I(); } }
        """,
        "cannot instantiate",
    )


def test_super_requires_matching_ctor():
    bad(
        """
        class A { A(int x) { } }
        class B extends A { }
        class Main { static void main() { } }
        """,
        "no-arg constructor",
    )


def test_explicit_super_ok():
    ok(
        """
        class A { int v; A(int x) { v = x; } }
        class B extends A { B() { super(7); } }
        class Main { static void main() { B b = new B(); } }
        """
    )


def test_ctor_overload_by_arity():
    ok(
        """
        class A { A() { } A(int x) { } }
        class Main { static void main() { A a = new A(); A b = new A(1); } }
        """
    )


def test_instanceof_on_primitive_rejected():
    bad(M.format("boolean b = 1 instanceof Object;"),
        "non-reference")


def test_cast_between_unrelated_ok_checked_at_runtime():
    ok(
        """
        class A { }
        class B { }
        class Main { static void main() { Object o = new A(); } }
        """
    )


def test_arrays_are_invariant():
    bad(
        """
        class A { }
        class B extends A { }
        class Main {
            static void main() { A[] arr = new B[3]; }
        }
        """,
        "cannot convert",
    )


def test_array_length_not_assignable():
    bad(M.format("int[] a = new int[3]; a.length = 5;"),
        "not assignable")


def test_class_name_as_value_rejected():
    bad(
        """
        class A { }
        class Main { static void main() { Object o = A; } }
        """,
        "used as a value",
    )


def test_null_assignable_to_refs_not_prims():
    ok(M.format("Object o = null; string s = null;"))
    bad(M.format("int x = null;"), "cannot convert")
