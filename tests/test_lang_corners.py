"""Language/compiler corner cases across all tiers."""

from repro.lang import compile_source
from repro.opt.cfg import (
    dominates,
    immediate_dominators,
    loop_depths,
    natural_loops,
)
from repro.opt.lowering import lower_method
from repro.vm.linker import Linker
from tests.helpers import assert_all_tiers_agree, run_source, wrap_main


def test_static_compound_ops():
    source = """
    class G {
        static int x;
        static double d;
    }
    class Main {
        static void main() {
            G.x += 5; G.x *= 3; G.x -= 1; G.x <<= 2; G.x ^= 7;
            G.d += 0.5; G.d *= 4.0;
            Sys.print(G.x + " " + G.d);
        }
    }
    """
    # 0 +5=5, *3=15, -1=14, <<2=56, ^7=63; 0.0 +0.5=0.5, *4=2.0
    assert run_source(source) == "63 2.0\n"


def test_clinit_order_follows_linking():
    source = """
    class A { static int x = 10; }
    class B { static int y = A.x + 5; }
    class Main { static void main() { Sys.print("" + B.y); } }
    """
    # A links before B (alphabetical insertion order of the source).
    assert run_source(source) == "15\n"


def test_two_dimensional_arrays():
    body = """
    int[][] m = new int[3][];
    for (int i = 0; i < 3; i++) {
        m[i] = new int[4];
        for (int j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
    }
    int total = 0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++) { total += m[i][j]; }
    }
    Sys.print("" + total);
    """
    assert run_source(wrap_main(body)) == "138\n"


def test_for_without_condition_and_update():
    body = """
    int i = 0;
    for (;;) {
        i++;
        if (i == 5) { break; }
    }
    for (int j = 0; j < 3;) { j++; i += j; }
    Sys.print("" + i);
    """
    assert run_source(wrap_main(body)) == "11\n"


def test_ternary_with_reference_branches():
    source = """
    class A { public string who() { return "A"; } }
    class B extends A { public string who() { return "B"; } }
    class Main {
        static void main() {
            for (int i = 0; i < 2; i++) {
                A x = i == 0 ? new A() : new B();
                Sys.print(x.who());
            }
        }
    }
    """
    assert run_source(source) == "A\nB\n"


def test_string_compound_concat():
    body = """
    string s = "a";
    s += "b";
    s += 1;
    s += 2.5;
    s += true;
    Sys.print(s);
    """
    assert run_source(wrap_main(body)) == "ab12.5true\n"


def test_deeply_nested_control_flow_all_tiers():
    assert_all_tiers_agree(
        wrap_main(
            """
            int acc = 0;
            for (int a = 0; a < 4; a++) {
                for (int b = 0; b < 4; b++) {
                    int c = 0;
                    while (c < 4) {
                        if ((a + b + c) % 2 == 0) {
                            if (a > b) { acc += 1; }
                            else if (b > c) { acc += 2; }
                            else { acc += 3; }
                        } else {
                            acc -= 1;
                            if (acc < 0) { acc = 100 - acc; }
                        }
                        c++;
                    }
                }
            }
            Sys.print("" + acc);
            """
        )
    )


def test_interface_array_polymorphism_all_tiers():
    assert_all_tiers_agree(
        """
        interface Fn { int call(int x); }
        class Add implements Fn {
            int k;
            Add(int k0) { k = k0; }
            public int call(int x) { return x + k; }
        }
        class Mul implements Fn {
            int k;
            Mul(int k0) { k = k0; }
            public int call(int x) { return x * k; }
        }
        class Main {
            static void main() {
                Fn[] fns = new Fn[4];
                fns[0] = new Add(1); fns[1] = new Mul(2);
                fns[2] = new Add(5); fns[3] = new Mul(3);
                int v = 1;
                for (int i = 0; i < 600; i++) {
                    v = fns[i % 4].call(v) % 10007;
                }
                Sys.print("" + v);
            }
        }
        """
    )


# -- IR CFG utilities ----------------------------------------------------------

def lowered_main(body):
    source = wrap_main(body)
    unit = compile_source(source)
    Linker(unit).link()
    return lower_method(unit.classes["Main"].methods["main"])


def test_ir_dominators_and_loops():
    fn = lowered_main(
        """
        int acc = 0;
        for (int i = 0; i < 10; i++) {
            for (int j = 0; j < 10; j++) { acc += j; }
        }
        Sys.print("" + acc);
        """
    )
    idom = immediate_dominators(fn)
    assert idom[fn.entry] is None
    for bid in fn.reachable_ids():
        assert dominates(idom, fn.entry, bid)
    loops = natural_loops(fn)
    assert len(loops) == 2
    depths = loop_depths(fn)
    assert max(depths.values()) == 2  # the inner loop body
    # The nested loop body is contained in the outer loop body.
    (h1, body1), (h2, body2) = sorted(loops, key=lambda hl: len(hl[1]))
    assert body1 < body2


def test_ir_loop_free_function_has_no_loops():
    fn = lowered_main('Sys.print("x");')
    assert natural_loops(fn) == []
    assert set(loop_depths(fn).values()) <= {0}
