"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro import VM, compile_source
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind
from repro.mutation import build_mutation_plan
from repro.opt.bytecode_cfg import BytecodeCFG
from repro.opt.fold import NoFold, fold_op
from repro.vm.values import jx_rem, jx_truncate_div
from tests.helpers import AGGRESSIVE, INTERP_ONLY, run_source, wrap_main

# ---------------------------------------------------------------------------
# Lexer round-trips
# ---------------------------------------------------------------------------

ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in {
        "class", "interface", "extends", "implements", "static", "public",
        "private", "void", "int", "double", "boolean", "string", "if",
        "else", "while", "for", "return", "new", "this", "super", "true",
        "false", "null", "instanceof", "break", "continue",
    }
)


@given(st.lists(ident, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_lexer_identifier_roundtrip(names):
    toks = tokenize(" ".join(names))
    assert [t.value for t in toks[:-1]] == names
    assert all(t.kind is TokKind.IDENT for t in toks[:-1])


@given(st.integers(min_value=0, max_value=10**12))
@settings(max_examples=50, deadline=None)
def test_lexer_int_roundtrip(n):
    toks = tokenize(str(n))
    assert toks[0].value == n


@given(st.text(
    alphabet=st.characters(
        blacklist_characters='"\\\n', min_codepoint=32, max_codepoint=126
    ),
    max_size=20,
))
@settings(max_examples=50, deadline=None)
def test_lexer_string_roundtrip(text):
    toks = tokenize('"' + text + '"')
    assert toks[0].kind is TokKind.STRING_LIT
    assert toks[0].value == text


# ---------------------------------------------------------------------------
# Java integer semantics helpers
# ---------------------------------------------------------------------------

nonzero = st.integers(min_value=-1000, max_value=1000).filter(lambda x: x)


@given(st.integers(min_value=-10**6, max_value=10**6), nonzero)
@settings(max_examples=100, deadline=None)
def test_truncating_division_identity(a, b):
    q = jx_truncate_div(a, b)
    r = jx_rem(a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
    # Remainder sign follows the dividend (Java).
    assert r == 0 or (r > 0) == (a > 0)


# ---------------------------------------------------------------------------
# Fold vs. interpreter ground truth on random expressions
# ---------------------------------------------------------------------------

_INT_OPS = ["+", "-", "*", "/", "%", "&", "|", "^"]


def _expr_strategy():
    atoms = st.integers(min_value=-40, max_value=40).map(
        lambda n: f"({n})" if n < 0 else str(n)
    )

    def combine(children):
        return st.tuples(
            children, st.sampled_from(_INT_OPS), children
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")

    return st.recursive(atoms, combine, max_leaves=8)


@given(_expr_strategy())
@settings(max_examples=60, deadline=None)
def test_random_int_expressions_agree_across_tiers(expr):
    # Evaluate in a loop so the method gets hot and recompiled.
    body = f"""
    int acc = 0;
    for (int i = 0; i < 60; i++) {{
        int v = 0;
        boolean ok = true;
        {{
            v = compute();
            if (v == 123456789) {{ ok = false; }}
        }}
        acc = (acc + v) % 1000003;
    }}
    Sys.print("" + acc);
    """
    prelude = f"""
    class E {{
        static int compute0() {{ return 0; }}
    }}
    """
    source = f"""
    class Main {{
        static int compute() {{
            return {expr};
        }}
        static void main() {{
{body}
        }}
    }}
    """
    try:
        expected = run_source(source, INTERP_ONLY)
    except Exception as exc:  # division by zero inside the expression
        assert "zero" in str(exc)
        return
    got = run_source(source, AGGRESSIVE)
    assert got == expected


# ---------------------------------------------------------------------------
# CFG invariants on random branchy programs
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                max_size=6), st.booleans())
@settings(max_examples=40, deadline=None)
def test_cfg_dominator_invariants(choices, use_loop):
    # Build a nest of ifs (optionally inside a loop) from the choices.
    body = "int x = 0;\n"
    if use_loop:
        body += "for (int i = 0; i < 3; i++) {\n"
    for k, c in enumerate(choices):
        body += f"if (x % {c + 2} == {c % 2}) {{ x += {k}; }}" \
                f" else {{ x -= 1; }}\n"
    if use_loop:
        body += "}\n"
    body += 'Sys.print("" + x);'
    source = wrap_main(body)
    unit = compile_source(source)
    method = unit.classes["Main"].methods["main"]
    cfg = BytecodeCFG(method)
    # Entry dominates every reachable block; idom is a proper ancestor.
    reachable = cfg.reverse_postorder()
    for b in reachable:
        assert cfg.dominates(0, b)
        idom = cfg.idom.get(b)
        if b != 0:
            assert idom is not None
            assert cfg.dominates(idom, b)
    # Loop bodies contain their headers.
    for header, bodyset in cfg.natural_loops():
        assert header in bodyset
        for blk in bodyset:
            assert cfg.dominates(header, blk) or blk == header


# ---------------------------------------------------------------------------
# Mutation equivalence under random state-transition schedules
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),   # object index
            st.integers(min_value=0, max_value=5),   # new state value
        ),
        min_size=0,
        max_size=12,
    )
)
@settings(max_examples=15, deadline=None)
def test_mutation_equivalence_random_transitions(transitions):
    updates = "\n".join(
        f"if (r == {37 * (i + 1) % 500}) "
        f"{{ ((Machine) ms[{obj}]).setMode({val}); }}"
        for i, (obj, val) in enumerate(transitions)
    )
    source = f"""
    class Machine {{
        private int mode;
        double acc;
        Machine(int m) {{ mode = m; }}
        public void setMode(int m) {{ mode = m; }}
        public void work() {{
            if (mode == 0) {{ acc += 1.0; }}
            else if (mode == 1) {{ acc += 2.0; }}
            else if (mode == 2) {{ acc *= 1.01; }}
            else {{ acc -= 0.5; }}
        }}
    }}
    class Main {{
        static void main() {{
            Machine[] ms = new Machine[8];
            for (int i = 0; i < 8; i++) {{ ms[i] = new Machine(i % 3); }}
            for (int r = 0; r < 500; r++) {{
                for (int j = 0; j < 8; j++) {{ ms[j].work(); }}
                {updates}
            }}
            double total = 0.0;
            for (int j = 0; j < 8; j++) {{ total += ms[j].acc; }}
            Sys.print("" + total);
        }}
    }}
    """
    plan = build_mutation_plan(source)
    off = run_source(source, AGGRESSIVE)
    on = run_source(source, AGGRESSIVE, plan=plan)
    assert on == off
