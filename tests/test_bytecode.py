"""Bytecode layer tests: builder, verifier, disassembler, types."""

import pytest

from repro.bytecode import (
    CodeBuilder,
    Instr,
    JxType,
    Op,
    VerifyError,
    disassemble_method,
    make_method,
    verify_method,
)
from repro.bytecode.classfile import INT, VOID, ClassInfo, FieldInfo, ProgramUnit


def build(body, num_params=0, returns=True):
    cb = CodeBuilder(num_params=num_params)
    body(cb)
    return make_method(
        "m", "C", [INT] * num_params, INT if returns else VOID, cb,
        is_static=True,
    )


def test_builder_labels_forward_and_backward():
    cb = CodeBuilder(num_params=1)
    top = cb.new_label("top")
    done = cb.new_label("done")
    cb.place(top)
    cb.load(0)
    cb.const(0)
    cb.emit(Op.CMP_LE)
    cb.jump_if_true(done)
    cb.load(0)
    cb.const(1)
    cb.emit(Op.SUB)
    cb.store(0)
    cb.jump(top)
    cb.place(done)
    cb.load(0)
    cb.emit(Op.RETURN)
    method = make_method("count", "C", [INT], INT, cb, is_static=True)
    depths = verify_method(method)
    assert depths[0] == 0


def test_unresolved_label_raises():
    cb = CodeBuilder()
    dangling = cb.new_label()
    cb.jump(dangling)
    with pytest.raises(ValueError):
        cb.finish()


def test_double_placed_label_raises():
    cb = CodeBuilder()
    label = cb.new_label()
    cb.place(label)
    with pytest.raises(ValueError):
        cb.place(label)


def test_verify_rejects_fall_off_end():
    method = build(lambda cb: cb.const(1), returns=True)
    with pytest.raises(VerifyError) as err:
        verify_method(method)
    assert "fall off" in str(err.value)


def test_verify_rejects_stack_underflow():
    def body(cb):
        cb.emit(Op.ADD)  # nothing on the stack
        cb.emit(Op.RETURN)

    with pytest.raises(VerifyError) as err:
        verify_method(build(body))
    assert "underflow" in str(err.value)


def test_verify_rejects_inconsistent_join_depth():
    # Path A pushes 2 values, path B pushes 1, both join.
    cb = CodeBuilder(num_params=1)
    join = cb.new_label()
    other = cb.new_label()
    cb.load(0)
    cb.jump_if_true(other)
    cb.const(1)
    cb.const(2)
    cb.jump(join)
    cb.place(other)
    cb.const(1)
    cb.place(join)
    cb.emit(Op.RETURN)
    method = make_method("m", "C", [INT], INT, cb, is_static=True)
    with pytest.raises(VerifyError) as err:
        verify_method(method)
    assert "join" in str(err.value)


def test_verify_rejects_bad_branch_target():
    method = build(lambda cb: (cb.const(1), cb.emit(Op.RETURN)))
    method.code.insert(0, Instr(Op.JUMP, 99))
    with pytest.raises(VerifyError) as err:
        verify_method(method)
    assert "branch target" in str(err.value)


def test_verify_rejects_bad_local_index():
    def body(cb):
        cb.emit(Op.LOAD, 7)
        cb.emit(Op.RETURN)

    with pytest.raises(VerifyError) as err:
        verify_method(build(body, num_params=1))
    assert "local index" in str(err.value)


def test_disassembly_marks_targets_and_args():
    def body(cb):
        top = cb.new_label()
        cb.place(top)
        cb.const(1)
        cb.emit(Op.POP)
        cb.jump(top)

    text = disassemble_method(build(body, returns=False))
    assert "-> " in text       # branch target marker
    assert "jump" in text
    assert "const 1" in text


def test_jxtype_helpers():
    arr = JxType("int", 2)
    assert arr.is_array and arr.is_reference
    assert arr.element_type() == JxType("int", 1)
    assert arr.element_type().element_type() == JxType("int")
    assert JxType("int").default_value() == 0
    assert JxType("boolean").default_value() is False
    assert JxType("Foo").default_value() is None
    assert str(arr) == "int[][]"
    with pytest.raises(ValueError):
        JxType("int").element_type()


def test_program_unit_lookup_and_subtyping():
    unit = ProgramUnit()
    a = ClassInfo(name="A")
    b = ClassInfo(name="B", super_name="A")
    a.add_field(FieldInfo(name="f", type=INT, declaring_class="A"))
    unit.add_class(a)
    unit.add_class(b)
    assert unit.lookup_field("B", "f").declaring_class == "A"
    assert unit.is_subtype("B", "A")
    assert not unit.is_subtype("A", "B")
    assert unit.subclasses_of("A") == ["B"]
    assert list(unit.supertypes("B")) == ["B", "A"]


def test_duplicate_class_rejected():
    unit = ProgramUnit()
    unit.add_class(ClassInfo(name="A"))
    with pytest.raises(ValueError):
        unit.add_class(ClassInfo(name="A"))
