"""Stack-simulation and profiler-layer unit tests."""

from repro.lang import compile_source
from repro.mutation.plan import StateFieldSpec
from repro.mutation.stacksim import StackEvent, walk_method
from repro.profiling import ValueProfiler, profile_methods
from repro.vm.intrinsics import INTRINSICS, IntrinsicContext


class Recorder(StackEvent):
    def __init__(self):
        self.branches = []
        self.putfields = []
        self.calls = []
        self.returns = []
        self.stores = []

    def on_branch(self, i, instr, cond):
        self.branches.append(cond)

    def on_putfield(self, i, instr, recv, val):
        self.putfields.append((instr.arg, recv.kind, val.kind))

    def on_call(self, i, instr, args):
        self.calls.append([a.kind for a in args])

    def on_return(self, i, instr, val):
        self.returns.append(val.kind)

    def on_local_store(self, i, instr, local, val):
        self.stores.append((local, val.kind))


def walk(source, cls, key):
    unit = compile_source(source)
    method = unit.classes[cls].methods[key]
    rec = Recorder()
    walk_method(method, rec, unit=unit)
    return rec


def test_branch_taint_from_field_loads():
    rec = walk(
        """
        class C {
            int mode;
            int other;
            public int f() {
                if (mode + other == 3) { return 1; }
                return 0;
            }
        }
        class Main { static void main() { } }
        """,
        "C", "f",
    )
    assert len(rec.branches) == 1
    assert rec.branches[0].taint == {"C.mode", "C.other"}


def test_const_putfield_in_ctor_detected():
    rec = walk(
        """
        class C {
            int rows;
            C() { rows = 24; }
        }
        class Main { static void main() { } }
        """,
        "C", "<init>/0",
    )
    assert rec.putfields == [
        (("C", "rows"), ("this",), ("const", 24))
    ]


def test_new_value_flows_to_putfield():
    rec = walk(
        """
        class S { }
        class C {
            S s;
            C() { s = new S(); }
        }
        class Main { static void main() { } }
        """,
        "C", "<init>/0",
    )
    arg, recv, val = rec.putfields[0]
    assert val == ("new", "S", "<init>/0")


def test_return_of_field_load_tracked():
    rec = walk(
        """
        class C {
            int v;
            public int get() { return v; }
        }
        class Main { static void main() { } }
        """,
        "C", "get",
    )
    assert rec.returns[0][0] == "fieldload"
    assert rec.returns[0][1] == "C.v"


def test_call_args_visible():
    rec = walk(
        """
        class C {
            int v;
            public void go() { use(v, 5); }
            public void use(int a, int b) { }
        }
        class Main { static void main() { } }
        """,
        "C", "go",
    )
    # [receiver this, fieldload, const]
    virtual_call = next(c for c in rec.calls if len(c) == 3)
    assert virtual_call[0] == ("this",)
    assert virtual_call[1][0] == "fieldload"
    assert virtual_call[2] == ("const", 5)


# -- profilers ---------------------------------------------------------------

PROG = """
class Hot {
    private int mode;
    Hot(int m) { mode = m; }
    public int work(int x) {
        int acc = 0;
        for (int i = 0; i < 30; i++) {
            if (mode == 0) { acc += x; } else { acc -= x; }
        }
        return acc;
    }
}
class Main {
    static void main() {
        Hot a = new Hot(0);
        Hot b = new Hot(1);
        int acc = 0;
        for (int i = 0; i < 50; i++) { acc += a.work(i) + b.work(i); }
        Sys.print("" + acc);
    }
}
"""


def test_method_profiler_ranks_hot_method_first():
    unit = compile_source(PROG)
    profile = profile_methods(unit)
    assert profile.methods[0].qualified_name == "Hot.work"
    assert profile.methods[0].share > 0.5
    assert abs(sum(m.share for m in profile.methods) - 1.0) < 1e-9
    assert "Hot.work" in profile.report(3)


def test_value_profiler_joint_histogram():
    unit = compile_source(PROG)
    spec = StateFieldSpec("Hot", "mode", False, 1.0)
    profiler = ValueProfiler(unit, {"Hot": ([spec], [])})
    profiles = profiler.run()
    histogram = profiles["Hot"].histogram
    assert histogram[((0,), ())] == 1
    assert histogram[((1,), ())] == 1
    assert "Hot" in profiler.report()


# -- intrinsics ---------------------------------------------------------------

def test_intrinsic_rng_matches_java_util_random():
    """The LCG must reproduce java.util.Random's first draws for seed 0
    (nextInt(100): 60, 48, 29, 47, 15...)."""
    ctx = IntrinsicContext(seed=0)
    draws = [ctx.rand_int(100) for _ in range(5)]
    assert draws == [60, 48, 29, 47, 15]


def test_intrinsic_table_shapes():
    for name, intr in INTRINSICS.items():
        assert intr.name == name
        assert intr.nargs >= 0
        assert isinstance(intr.returns, bool)
    assert INTRINSICS["print"].returns is False
    assert INTRINSICS["str_len"].returns is True
