"""Quickened dispatch: quick-op metadata, superinstruction fusion,
inline-cache state transitions, flush points, and on/off equivalence.

The quickening layer rewrites each method's resolved body into
``rm.quick_code`` (TIB-keyed inline caches + fused superinstructions)
while the pristine ``rm.info.code`` keeps serving the verifier, the IR
lowering, and the cache digests.  These tests pin the structural
invariants that keep that safe — slot preservation, live hook objects,
the fusion-priority guard — and the IC cell's
mono -> poly -> megamorphic state machine.
"""

import pytest

from repro import VM, VMConfig, compile_source
from repro.bytecode.opcodes import Op, OP_INFO, QUICK_OPS
from repro.bytecode.quicken import FUSION_PAIRS, InterfaceIC, VirtualIC
from tests.helpers import AGGRESSIVE, INTERP_ONLY

#: Original-code slots each fused opcode covers (itself included).
FUSED_SPAN = {
    Op.LOAD_GETFIELD: 2, Op.LOAD_LOAD: 2, Op.LOAD_CONST: 2,
    Op.CMP_LT_JF: 2, Op.CMP_EQ_JF: 2, Op.ADD_STORE: 2,
    Op.ADD_PUTFIELD: 2, Op.ADD_RETURN: 2, Op.LOAD_RETURN: 2,
    Op.LOAD_ADD: 2, Op.LOAD_SUB: 2, Op.LOAD_MUL: 2,
    Op.GETFIELD_RETURN: 3, Op.INC: 4, Op.ITER_LT_JF: 4,
    Op.FIELD_INC: 6,
}

POLY_SOURCE = """
interface Shape {
    int area();
}
class Sq implements Shape {
    int s;
    Sq(int v) { s = v; }
    public int area() { return s * s; }
}
class Re implements Shape {
    int w;
    Re(int v) { w = v; }
    public int area() { return w * 2; }
}
class Tr implements Shape {
    int b;
    Tr(int v) { b = v; }
    public int area() { return b * 3; }
}
class Ci implements Shape {
    int r;
    Ci(int v) { r = v; }
    public int area() { return r * 7; }
}
class Driver {
    static int poke(Shape sh) { return sh.area(); }
}
class Main {
    static void main() { Sys.print("" + Driver.poke(new Sq(2))); }
}
"""

FUSION_SOURCE = """
class Box {
    int total;
    int count;
    Box() { total = 0; count = 0; }
    public int getTotal() { return total; }
    public void bump() { count = count + 1; }
    public void add(int s) { total = total + s; }
}
class Main {
    static int mix(int a, int b) {
        int s = (a + b) * 2;
        return s;
    }
    static void main() {
        Box box = new Box();
        int s = 0;
        for (int i = 0; i < 10; i++) {
            s = s + i;
            box.add(mix(i, s));
            box.bump();
        }
        Sys.print("" + box.getTotal() + "/" + box.count + "/" + s);
    }
}
"""


def _quick_vm(source, quicken=True, adaptive=None, telemetry=None):
    return VM(
        compile_source(source),
        adaptive_config=adaptive or INTERP_ONLY,
        telemetry=telemetry,
        config=VMConfig(quicken=quicken),
    )


def _method(vm, cls, key):
    return vm.classes[cls].own_methods[key]


def _make(vm, cls, *args):
    rc = vm.classes[cls]
    obj = rc.allocate(vm)
    rc.own_methods[f"<init>/{len(args)}"].compiled.invoke(
        vm, [obj, *args]
    )
    return obj


def _site_ic(vm, qname_prefix):
    ics = [
        ic for ic in vm.quickener.caches
        if ic.site_name.startswith(qname_prefix)
    ]
    assert len(ics) == 1, f"expected one IC at {qname_prefix}: {ics}"
    return ics[0]


# ---------------------------------------------------------------------------
# Opcode metadata
# ---------------------------------------------------------------------------

def test_every_quick_op_has_op_info():
    for op in QUICK_OPS:
        assert op in OP_INFO, f"{op!r} missing OP_INFO"
        assert OP_INFO[op].mnemonic


def test_fused_ops_are_quick_ops_with_known_span():
    for fused in FUSION_PAIRS.values():
        assert fused in QUICK_OPS
        assert FUSED_SPAN[fused] == 2
    for op, span in FUSED_SPAN.items():
        assert op in QUICK_OPS
        assert span >= 2


def test_entry_ticks_pin():
    """ENTRY_TICKS has exactly one definition (repro.vm.adaptive);
    every other module's name must be that object, not a copy that
    could drift."""
    from repro.vm import adaptive
    from repro.vm.compiled import ENTRY_TICKS
    from repro.vm.interpreter import _ENTRY_TICKS

    assert ENTRY_TICKS is adaptive.ENTRY_TICKS
    assert _ENTRY_TICKS is adaptive.ENTRY_TICKS
    assert adaptive.AdaptiveConfig.ENTRY_TICKS is adaptive.ENTRY_TICKS


# ---------------------------------------------------------------------------
# Structural invariants of quicken_method
# ---------------------------------------------------------------------------

def test_quickening_preserves_slots_and_shared_instrs():
    """Fusion is slot-preserving: same length, covered slots keep an
    independently executable instruction (so branches into them work),
    and PUTFIELD/PUTSTATIC slots keep the *original* Instr object so
    state hooks installed mid-run stay live in quick code."""
    vm = _quick_vm(FUSION_SOURCE)
    checked = 0
    for rm in vm.all_runtime_methods():
        code, quick = rm.info.code, rm.quick_code
        assert quick is not None and len(quick) == len(code)
        for i, instr in enumerate(code):
            q = quick[i]
            assert q.op == instr.op or q.op in QUICK_OPS
            if instr.op in (Op.PUTFIELD, Op.PUTSTATIC):
                assert q is instr
            span = FUSED_SPAN.get(q.op, 1)
            for j in range(i + 1, min(i + span, len(code))):
                cov = quick[j]
                assert cov.op == code[j].op or cov.op in QUICK_OPS, (
                    f"{rm.qualified_name}@{j}: covered slot lost its "
                    f"standalone form ({cov.op!r} vs {code[j].op!r})"
                )
            if OP_INFO[instr.op].is_branch and isinstance(instr.arg, int):
                t = instr.arg
                assert quick[t].op == code[t].op or quick[t].op in QUICK_OPS
        checked += 1
    assert checked > 3


def test_idiom_fusions_fire():
    vm = _quick_vm(FUSION_SOURCE)
    getter = {i.op for i in _method(vm, "Box", "getTotal").quick_code}
    assert Op.GETFIELD_RETURN in getter
    bump = {i.op for i in _method(vm, "Box", "bump").quick_code}
    assert Op.FIELD_INC in bump
    main = {i.op for i in _method(vm, "Main", "main").quick_code}
    assert Op.ITER_LT_JF in main
    assert Op.INC in main
    mix = {i.op for i in _method(vm, "Main", "mix").quick_code}
    assert Op.LOAD_ADD in mix  # (a + b) * 2: ADD's successor doesn't pair


def test_fusion_priority_guard_keeps_add_for_putfield():
    """``total = total + s``: the (LOAD s, ADD) pair must NOT fuse to
    LOAD_ADD, because ADD fuses better with its PUTFIELD successor —
    greedy left-to-right pairing would leave a bare PUTFIELD dispatch
    on the hot path."""
    vm = _quick_vm(FUSION_SOURCE)
    rm = _method(vm, "Box", "add")
    code, quick = rm.info.code, rm.quick_code
    add_idx = next(
        i for i, instr in enumerate(code) if instr.op is Op.ADD
    )
    assert quick[add_idx].op is Op.ADD_PUTFIELD
    assert quick[add_idx - 1].op is Op.LOAD, (
        "the LOAD feeding ADD_PUTFIELD must stay unfused"
    )


def test_quicken_off_leaves_no_quick_code(monkeypatch):
    vm = _quick_vm(FUSION_SOURCE, quicken=False)
    assert vm.quickener is None
    assert all(rm.quick_code is None for rm in vm.all_runtime_methods())
    # The env kill switch drives the VMConfig default.
    monkeypatch.setenv("JX_QUICKEN", "0")
    assert VMConfig().quicken is False
    monkeypatch.setenv("JX_QUICKEN", "1")
    assert VMConfig().quicken is True


# ---------------------------------------------------------------------------
# Inline-cache state machine
# ---------------------------------------------------------------------------

def test_interface_ic_mono_poly_megamorphic():
    vm = _quick_vm(POLY_SOURCE, telemetry=True)
    vm.initialize()
    ic = _site_ic(vm, "Driver.poke")
    assert isinstance(ic, InterfaceIC)
    assert ic.k0 is None and ic.k1 is None

    sq, re_, tr, ci = (
        _make(vm, cls, 2) for cls in ("Sq", "Re", "Tr", "Ci")
    )
    poke = lambda obj: vm.call_static("Driver", "poke", [obj])

    assert poke(sq) == 4  # miss -> monomorphic
    assert ic.k0 is sq.tib and ic.k1 is None
    assert poke(sq) == 4  # hit on k0
    counters = vm.telemetry.summary()["counters"]
    assert counters["ic.hit"] >= 1 and counters["ic.miss"] >= 1

    assert poke(re_) == 4  # miss -> 2-entry polymorphic
    assert ic.k1 is re_.tib

    assert poke(tr) == 6  # third distinct TIB -> megamorphic
    quick = _method(vm, "Driver", "poke").quick_code
    assert quick[ic.index] is ic.original
    assert quick[ic.index].op is Op.INVOKEINTERFACE
    assert ic.k0 is None and ic.k1 is None
    counters = vm.telemetry.summary()["counters"]
    assert counters["ic.megamorphic"] == 1

    # The de-quickened site still dispatches correctly for everyone.
    assert [poke(o) for o in (sq, re_, tr, ci)] == [4, 4, 6, 14]


def test_virtual_ic_hits_after_monomorphic_call():
    vm = _quick_vm(FUSION_SOURCE, telemetry=True)
    vm.initialize()
    box = _make(vm, "Box")
    ics = [
        ic for ic in vm.quickener.caches
        if isinstance(ic, VirtualIC) and ic.site_name.startswith("Main.main")
    ]
    assert ics, "Main.main has virtual call sites"
    vm.run()
    counters = vm.telemetry.summary()["counters"]
    assert counters["ic.hit"] > counters["ic.miss"]
    assert box.fields == [0, 0]  # untouched bystander


def test_flush_resets_cache_keys():
    vm = _quick_vm(POLY_SOURCE)
    vm.initialize()
    ic = _site_ic(vm, "Driver.poke")
    sq = _make(vm, "Sq", 3)
    assert vm.call_static("Driver", "poke", [sq]) == 9
    assert ic.k0 is not None
    flushes = vm.quickener.flushes
    vm.flush_inline_caches()
    # Flush clears *keys only*: a concurrent session racing the flush
    # may still be running a just-read value, and in-place patches only
    # ever replace targets with equivalent ones (repro.server).
    assert ic.k0 is None and ic.k1 is None
    assert vm.quickener.flushes == flushes + 1
    # The next call misses, re-resolves, and works.
    assert vm.call_static("Driver", "poke", [sq]) == 9
    assert ic.k0 is sq.tib


def test_recompile_install_flushes_caches():
    """install_general patches TIB entries in place (identity
    unchanged), so every adaptive promotion must flush the ICs."""
    vm = _quick_vm(FUSION_SOURCE, adaptive=AGGRESSIVE)
    assert vm.quickener.flushes == 0
    vm.run()
    assert vm.compile_stats.events, "nothing promoted — test is vacuous"
    assert vm.quickener.flushes > 0


# ---------------------------------------------------------------------------
# Behavioral equivalence
# ---------------------------------------------------------------------------

TORTURE_SOURCE = """
interface Walker {
    int step(int x);
}
class Hare implements Walker {
    int skip;
    Hare(int s) { skip = s; }
    public int step(int x) { return x + skip; }
}
class Tortoise implements Walker {
    public int step(int x) { return x + 1; }
}
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static void main() {
        Walker[] ws = new Walker[6];
        for (int i = 0; i < 6; i++) {
            if (i % 2 == 0) { ws[i] = new Hare(i); }
            else { ws[i] = new Tortoise(); }
        }
        int acc = 0;
        for (int r = 0; r < 40; r++) {
            for (int i = 0; i < 6; i++) {
                if (r % 3 == 0) { acc = acc + 1; }
                acc = ws[i].step(acc) - 1;
            }
            acc = acc % 100000;
        }
        Sys.print("" + acc + ":" + fib(12));
    }
}
"""


@pytest.mark.parametrize("source", [FUSION_SOURCE, TORTURE_SOURCE,
                                    POLY_SOURCE])
def test_quicken_on_off_byte_identical(source):
    for adaptive in (INTERP_ONLY, AGGRESSIVE):
        on = _quick_vm(source, quicken=True, adaptive=adaptive)
        off = _quick_vm(source, quicken=False, adaptive=adaptive)
        assert on.run().output == off.run().output
