"""Cross-tier equivalence: opt0 (interpreter), opt1 (IR interpreter),
and opt2 (generated Python) must produce identical program output."""

import pytest

from tests.helpers import (
    AGGRESSIVE,
    assert_all_tiers_agree,
    run_vm,
    wrap_main,
)

LOOPY = """
class Work {
    int acc;
    public void step(int i) {
        if (i % 3 == 0) { acc += i; }
        else if (i % 3 == 1) { acc -= i; }
        else { acc ^= i; }
    }
}
class Main {
    static void main() {
        Work w = new Work();
        for (int i = 0; i < 500; i++) { w.step(i); }
        Sys.print("" + w.acc);
    }
}
"""


def test_loopy_program_all_tiers():
    assert_all_tiers_agree(LOOPY)


def test_hot_method_reaches_opt2():
    vm = run_vm(LOOPY, AGGRESSIVE)
    rm = vm.classes["Work"].own_methods["step"]
    assert rm.compiled.opt_level == 2


def test_loop_only_method_promoted_via_backedges():
    source = wrap_main(
        """
        int total = 0;
        for (int i = 0; i < 3000; i++) { total += i; }
        Sys.print("" + total);
        """
    )
    vm = run_vm(source, AGGRESSIVE)
    rm = vm.classes["Main"].own_methods["main"]
    # main is invoked once; only backedge ticks can promote it.
    assert rm.compiled.opt_level >= 1
    assert vm.output == "4498500\n"


def test_string_building_all_tiers():
    assert_all_tiers_agree(
        wrap_main(
            """
            StringBuilder sb = new StringBuilder();
            for (int i = 0; i < 120; i++) {
                sb.append("i=").appendInt(i).append(";");
            }
            Sys.print("" + Sys.len(sb.toString()));
            """
        )
    )


def test_double_math_all_tiers():
    assert_all_tiers_agree(
        wrap_main(
            """
            double total = 0.0;
            for (int i = 1; i < 300; i++) {
                total += Sys.sqrt(i + 0.0) * 1.25 - i / 7;
            }
            Sys.print("" + total);
            """
        )
    )


def test_virtual_dispatch_all_tiers():
    assert_all_tiers_agree(
        """
        class A { public int f(int x) { return x + 1; } }
        class B extends A { public int f(int x) { return x * 2; } }
        class Main {
            static void main() {
                A[] xs = new A[2];
                xs[0] = new A(); xs[1] = new B();
                int total = 0;
                for (int i = 0; i < 400; i++) {
                    total += xs[i % 2].f(i);
                }
                Sys.print("" + total);
            }
        }
        """
    )


def test_interface_dispatch_all_tiers():
    assert_all_tiers_agree(
        """
        interface Op { int apply(int x); }
        class Inc implements Op { public int apply(int x) { return x + 1; } }
        class Dbl implements Op { public int apply(int x) { return x * 2; } }
        class Main {
            static void main() {
                Op[] ops = new Op[2];
                ops[0] = new Inc(); ops[1] = new Dbl();
                int v = 1;
                for (int i = 0; i < 300; i++) { v = ops[i % 2].apply(v) % 9973; }
                Sys.print("" + v);
            }
        }
        """
    )


def test_exception_semantics_preserved_at_opt2():
    source = """
    class Main {
        static int probe(int[] a, int i) {
            return a[i];
        }
        static void main() {
            int[] a = new int[4];
            int hits = 0;
            for (int r = 0; r < 200; r++) {
                hits += probe(a, r % 4);
            }
            Sys.print("" + hits);
        }
    }
    """
    assert_all_tiers_agree(source)


def test_rng_stream_identical_across_tiers():
    assert_all_tiers_agree(
        wrap_main(
            """
            Sys.randSeed(99);
            int acc = 0;
            for (int i = 0; i < 500; i++) { acc += Sys.randInt(1000); }
            Sys.print("" + acc + " " + Sys.randDouble());
            """
        )
    )


def test_recursive_method_all_tiers():
    assert_all_tiers_agree(
        """
        class R {
            static int ack(int m, int n) {
                if (m == 0) { return n + 1; }
                if (n == 0) { return ack(m - 1, 1); }
                return ack(m - 1, ack(m, n - 1));
            }
        }
        class Main {
            static void main() { Sys.print("" + R.ack(2, 6)); }
        }
        """
    )


def test_infinite_loop_with_break_all_tiers():
    assert_all_tiers_agree(
        wrap_main(
            """
            int i = 0;
            while (true) {
                i++;
                if (i >= 1000) { break; }
            }
            Sys.print("" + i);
            """
        )
    )


def test_compile_stats_populated():
    vm = run_vm(LOOPY, AGGRESSIVE)
    stats = vm.compile_stats
    assert stats.total_seconds > 0
    assert stats.total_code_bytes > 0
    assert any(e.opt_level == 2 for e in stats.events)
